//! Hourly average grid carbon-intensity synthesis.
//!
//! Following the paper (§4.1), operational carbon is accounted with
//! *average* carbon intensity (the Electricity Maps/GHG-Protocol
//! convention), not marginal intensity.

use mgopt_units::{SimDuration, SimTime, TimeSeries, SECONDS_PER_YEAR};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Supported grid regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GridRegion {
    /// California ISO — solar-dominated duck curve, low mean intensity.
    Caiso,
    /// Electric Reliability Council of Texas — wind at night, gas peakers.
    Ercot,
}

/// Parametric carbon-intensity model for one grid region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarbonIntensityModel {
    /// Region the parameters describe.
    pub region: GridRegion,
    /// Calibration target: exact annual mean in gCO2/kWh.
    pub annual_mean_g_per_kwh: f64,
    /// 24 relative multipliers (local hour 0..23); mean ≈ 1.
    pub diurnal_shape: [f64; 24],
    /// Relative amplitude of the seasonal cycle.
    pub seasonal_amplitude: f64,
    /// Month (0-based, fractional ok) where the seasonal cycle peaks.
    pub seasonal_peak_month: f64,
    /// How much deeper the diurnal shape swings in summer than winter
    /// (1 = no modulation). Captures "more solar in summer" for CAISO.
    pub summer_shape_gain: f64,
    /// Relative standard deviation of the AR(1) noise.
    pub noise_std: f64,
    /// Noise decorrelation time in hours.
    pub noise_decorrelation_h: f64,
    /// Hard floor in gCO2/kWh (a grid is never fully carbon-free).
    pub floor_g_per_kwh: f64,
}

impl CarbonIntensityModel {
    /// Default calibrated parameters for a region.
    ///
    /// Means are chosen so the paper's no-microgrid baselines reproduce:
    /// Houston 15.54 tCO2/day and Berkeley 9.33 tCO2/day at a 1.62 MW
    /// average load (38.88 MWh/day).
    pub fn for_region(region: GridRegion) -> Self {
        match region {
            GridRegion::Caiso => Self {
                region,
                // 9.33 t / 38.88 MWh = 239.97 g/kWh
                annual_mean_g_per_kwh: 9_330.0 / 38.88,
                // Duck curve: solar crushes midday intensity, evening ramp
                // brings gas online.
                diurnal_shape: [
                    1.12, 1.10, 1.08, 1.07, 1.08, 1.12, 1.15, 1.02, 0.82, 0.62, 0.52, 0.47, 0.45,
                    0.45, 0.48, 0.55, 0.72, 0.98, 1.22, 1.32, 1.32, 1.27, 1.21, 1.16,
                ],
                seasonal_amplitude: 0.10,
                seasonal_peak_month: 8.0, // late-summer evening gas peaks
                summer_shape_gain: 1.35,  // deeper duck in summer
                noise_std: 0.10,
                noise_decorrelation_h: 6.0,
                floor_g_per_kwh: 40.0,
            },
            GridRegion::Ercot => Self {
                region,
                // 15.54 t / 38.88 MWh = 399.69 g/kWh
                annual_mean_g_per_kwh: 15_540.0 / 38.88,
                // Wind blows at night; afternoon A/C load brings gas/coal.
                diurnal_shape: [
                    0.86, 0.83, 0.81, 0.80, 0.82, 0.87, 0.94, 1.02, 1.08, 1.11, 1.14, 1.17, 1.19,
                    1.21, 1.22, 1.21, 1.19, 1.16, 1.12, 1.07, 1.01, 0.96, 0.91, 0.88,
                ],
                seasonal_amplitude: 0.08,
                seasonal_peak_month: 7.0, // summer A/C
                summer_shape_gain: 1.15,
                noise_std: 0.12,
                noise_decorrelation_h: 8.0,
                floor_g_per_kwh: 120.0,
            },
        }
    }

    /// Deterministic (noise-free) relative shape at an instant.
    pub fn relative_shape(&self, t: SimTime) -> f64 {
        let cal = t.calendar();
        let month_frac = cal.fraction_of_year() * 12.0;
        let seasonal = 1.0
            + self.seasonal_amplitude
                * ((month_frac - self.seasonal_peak_month) / 12.0 * std::f64::consts::TAU).cos();
        // Interpolate the 24-point diurnal template.
        let h = cal.hour_of_day();
        let i = h.floor() as usize % 24;
        let j = (i + 1) % 24;
        let frac = h - h.floor();
        let base = self.diurnal_shape[i] * (1.0 - frac) + self.diurnal_shape[j] * frac;
        // Summer deepens the diurnal swing around its mean of ~1:
        // the weight is 1 in mid-July and 0 in mid-January.
        let summer = 0.5 * (1.0 + ((month_frac - 6.5) / 12.0 * std::f64::consts::TAU).cos());
        let gain = 1.0 + (self.summer_shape_gain - 1.0) * summer;
        let diurnal = 1.0 + (base - 1.0) * gain;
        (seasonal * diurnal).max(0.05)
    }

    /// Generate one year of carbon intensity (gCO2/kWh) at the given step,
    /// exactly mean-calibrated to `annual_mean_g_per_kwh`.
    pub fn generate(&self, step: SimDuration, seed: u64) -> TimeSeries {
        let step_s = step.secs();
        assert!(
            step_s > 0 && SECONDS_PER_YEAR % step_s == 0,
            "step must divide the year"
        );
        let n = (SECONDS_PER_YEAR / step_s) as usize;

        let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0xc0_2e_11_55);
        let steps_per_hour = 3_600.0 / step_s as f64;
        let rho = (-1.0 / (self.noise_decorrelation_h * steps_per_hour).max(1e-9)).exp();
        let innovation = (1.0 - rho * rho).sqrt();
        let mut g = 0.0f64;

        let mut values = Vec::with_capacity(n);
        for i in 0..n {
            let t = SimTime::from_secs(i as i64 * step_s);
            let eps: f64 = {
                // Box-Muller on two uniforms.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            };
            g = rho * g + innovation * eps;
            let noise = 1.0 + self.noise_std * g;
            let raw = self.relative_shape(t) * noise.max(0.1);
            values.push(raw);
        }

        // Exact mean calibration, then floor.
        let mean: f64 = values.iter().sum::<f64>() / n as f64;
        let scale = self.annual_mean_g_per_kwh / mean;
        for v in values.iter_mut() {
            *v = (*v * scale).max(self.floor_g_per_kwh);
        }
        TimeSeries::new(step, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::stats;

    fn hourly(region: GridRegion, seed: u64) -> TimeSeries {
        CarbonIntensityModel::for_region(region).generate(SimDuration::from_hours(1.0), seed)
    }

    #[test]
    fn annual_means_match_paper_baselines() {
        let caiso = hourly(GridRegion::Caiso, 1);
        let ercot = hourly(GridRegion::Ercot, 1);
        // Baselines: mean CI * 38.88 MWh/day = t/day (floor clipping adds
        // <0.5% bias, tolerated here).
        let caiso_daily_t = caiso.mean() * 38_880.0 / 1e6;
        let ercot_daily_t = ercot.mean() * 38_880.0 / 1e6;
        assert!((caiso_daily_t - 9.33).abs() < 0.05, "caiso {caiso_daily_t}");
        assert!(
            (ercot_daily_t - 15.54).abs() < 0.05,
            "ercot {ercot_daily_t}"
        );
    }

    #[test]
    fn caiso_duck_curve_shape() {
        let m = CarbonIntensityModel::for_region(GridRegion::Caiso);
        // Midday (hour 12) far below evening (hour 20), July day 190.
        let noon = m.relative_shape(SimTime::from_secs(190 * 86_400 + 12 * 3_600));
        let evening = m.relative_shape(SimTime::from_secs(190 * 86_400 + 20 * 3_600));
        assert!(noon < 0.55 * evening, "noon {noon} evening {evening}");
    }

    #[test]
    fn ercot_nights_cleaner_than_afternoons() {
        let ercot = hourly(GridRegion::Ercot, 2);
        let mut night = Vec::new();
        let mut afternoon = Vec::new();
        for d in 0..365 {
            night.push(ercot.values()[d * 24 + 3]);
            afternoon.push(ercot.values()[d * 24 + 14]);
        }
        assert!(stats::mean(&night) < 0.85 * stats::mean(&afternoon));
    }

    #[test]
    fn caiso_cleaner_than_ercot() {
        assert!(hourly(GridRegion::Caiso, 3).mean() < 0.7 * hourly(GridRegion::Ercot, 3).mean());
    }

    #[test]
    fn values_respect_floor_and_are_positive() {
        for region in [GridRegion::Caiso, GridRegion::Ercot] {
            let model = CarbonIntensityModel::for_region(region);
            let ts = model.generate(SimDuration::from_hours(1.0), 4);
            for &v in ts.values() {
                assert!(v >= model.floor_g_per_kwh - 1e-9);
                assert!(v < 4.0 * model.annual_mean_g_per_kwh);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(hourly(GridRegion::Caiso, 7), hourly(GridRegion::Caiso, 7));
        assert_ne!(hourly(GridRegion::Caiso, 7), hourly(GridRegion::Caiso, 8));
    }

    #[test]
    fn subhourly_generation() {
        let ts = CarbonIntensityModel::for_region(GridRegion::Ercot)
            .generate(SimDuration::from_minutes(15.0), 5);
        assert_eq!(ts.len(), 4 * 8_760);
    }

    #[test]
    #[should_panic(expected = "step must divide the year")]
    fn bad_step_panics() {
        CarbonIntensityModel::for_region(GridRegion::Caiso)
            .generate(SimDuration::from_secs(7_001), 1);
    }

    #[test]
    fn summer_duck_deeper_than_winter() {
        let m = CarbonIntensityModel::for_region(GridRegion::Caiso);
        let jan_noon = m.relative_shape(SimTime::from_secs(15 * 86_400 + 12 * 3_600));
        let jul_noon = m.relative_shape(SimTime::from_secs(196 * 86_400 + 12 * 3_600));
        assert!(
            jul_noon < jan_noon,
            "summer noon {jul_noon} vs winter {jan_noon}"
        );
    }

    #[test]
    fn autocorrelated_noise() {
        let ts = hourly(GridRegion::Ercot, 11);
        // Remove the diurnal template by differencing across days, then
        // check the residual retains persistence.
        let r1 = stats::autocorrelation(ts.values(), 1);
        assert!(r1 > 0.5, "lag-1 autocorrelation {r1}");
    }
}

//! Workspace-local JSON front end for the `serde` stand-in.
//!
//! Provides the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — over the shared
//! [`serde::Value`] tree. Output follows serde_json conventions: structs as
//! objects, unit enum variants as strings, data-carrying variants
//! externally tagged, `f64` printed with Rust's shortest-round-trip
//! formatting so values survive a serialize → parse cycle bit-exactly.

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON error (serialization or parsing).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize a value to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parse a JSON string into a value of type `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // Rust's `{}` is shortest-round-trip; suffix integral values
            // with `.0` like upstream serde_json.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi").unwrap(), "\"hi\"");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let v: f64 = from_str("1.5").unwrap();
        assert_eq!(v, 1.5);
        let v: Vec<f64> = from_str("[1, 2.5, -3e2]").unwrap();
        assert_eq!(v, vec![1.0, 2.5, -300.0]);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &f in &[0.1, 1.0 / 3.0, 1e-300, 123456.789e10, f64::MAX] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{s}");
        }
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pretty_nests() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("[\n"));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5x").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("{").is_err());
    }
}

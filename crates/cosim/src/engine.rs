//! The mosaik-style event-driven engine.
//!
//! In mosaik (and therefore Vessim), each connected simulator advances at
//! its own step size; the orchestrator holds each simulator's last output
//! between steps and synchronizes exchanges at event times. This engine
//! reproduces that: every actor re-evaluates at its own cadence, and the
//! bus integrates *exactly* over the piecewise-constant intervals between
//! events.
//!
//! With all cadences equal to the bus step, the result is bit-identical to
//! [`Microgrid::run`] — property-tested in this module.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mgopt_units::{Power, SimDuration, SimTime};

use crate::microgrid::{Microgrid, SimResult};
use crate::record::Monitor;

/// Event-driven co-simulation engine.
#[derive(Debug, Clone)]
pub struct EventEngine {
    /// Cadence for actors that do not declare their own step size.
    pub default_step: SimDuration,
}

impl EventEngine {
    /// Create an engine with a default actor cadence.
    pub fn new(default_step: SimDuration) -> Self {
        assert!(default_step.secs() > 0, "default step must be positive");
        Self { default_step }
    }

    /// Run `mg` from `start` for `duration`.
    ///
    /// Monitors receive one record per inter-event interval (irregular
    /// `dt`s when cadences differ).
    pub fn run(
        &self,
        mg: &mut Microgrid,
        start: SimTime,
        duration: SimDuration,
        monitors: &mut [&mut dyn Monitor],
    ) -> SimResult {
        let end = start + duration;
        let n = mg.actors.len();

        // Cached power per actor, refreshed at that actor's events.
        let mut cached: Vec<Power> = vec![Power::ZERO; n];
        let mut cadence: Vec<SimDuration> = Vec::with_capacity(n);
        for a in &mg.actors {
            cadence.push(a.step_size().unwrap_or(self.default_step));
        }

        // Event queue: (time, actor index). BinaryHeap is a max-heap, so
        // wrap in Reverse for earliest-first ordering; ties break by actor
        // index for determinism. Index `n` is the bus tick: it fires at the
        // default cadence so monitors always see bus-resolution records
        // even when every actor is coarser.
        let mut queue: BinaryHeap<Reverse<(SimTime, usize)>> = BinaryHeap::with_capacity(n + 1);
        for i in 0..n {
            queue.push(Reverse((start, i)));
        }
        queue.push(Reverse((start, n)));

        let mut steps = 0usize;
        let mut t = start;
        while t < end {
            // Fire all events scheduled at t.
            while let Some(&Reverse((et, idx))) = queue.peek() {
                if et > t {
                    break;
                }
                queue.pop();
                if idx < n {
                    cached[idx] = mg.actors[idx].power(t);
                    queue.push(Reverse((et + cadence[idx], idx)));
                } else {
                    queue.push(Reverse((et + self.default_step, idx)));
                }
            }

            // Advance to the next event (or the end of the run).
            let next_t = queue
                .peek()
                .map(|&Reverse((et, _))| et.min(end))
                .unwrap_or(end);
            debug_assert!(next_t > t, "event engine must make progress");
            let dt = next_t - t;

            let mut production = Power::ZERO;
            let mut consumption = Power::ZERO;
            for &p in &cached {
                if p.kw() >= 0.0 {
                    production += p;
                } else {
                    consumption += p;
                }
            }
            let rec = mg.resolve(t, dt, production, consumption);
            for m in monitors.iter_mut() {
                m.record(&rec);
            }
            steps += 1;
            t = next_t;
        }

        SimResult {
            steps,
            final_soc: mg.storage.soc(),
            storage_charged_kwh: mg.storage.charged_total().kwh(),
            storage_discharged_kwh: mg.storage.discharged_total().kwh(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::SignalActor;
    use crate::dispatch::SelfConsumption;
    use crate::record::MemoryMonitor;
    use crate::signal::FnSignal;
    use mgopt_storage::{NullStorage, SimpleBattery};
    use mgopt_units::{Energy, TimeSeries};

    fn ramp_producer(step: Option<SimDuration>) -> SignalActor {
        let a = SignalActor::producer("ramp", FnSignal::new(|t: SimTime| t.hours() * 10.0));
        match step {
            Some(s) => a.with_step_size(s),
            None => a,
        }
    }

    fn make_mg(actors: Vec<Box<dyn crate::Actor>>) -> Microgrid {
        Microgrid::new(
            actors,
            Box::new(NullStorage::new()),
            Box::new(SelfConsumption::default()),
        )
    }

    #[test]
    fn equal_cadence_matches_fixed_step_engine() {
        let dt = SimDuration::from_minutes(30.0);
        let load = TimeSeries::new(
            SimDuration::from_hours(1.0),
            (0..48).map(|i| 100.0 + (i % 7) as f64 * 13.0).collect(),
        );
        let build = || -> Microgrid {
            make_mg(vec![
                Box::new(ramp_producer(None)),
                Box::new(SignalActor::consumer("load", load.clone())),
            ])
        };

        let mut fixed = build();
        let mut mon_fixed = MemoryMonitor::new();
        fixed.run(
            SimTime::START,
            SimDuration::from_hours(48.0),
            dt,
            &mut [&mut mon_fixed],
        );

        let mut eventful = build();
        let mut mon_event = MemoryMonitor::new();
        EventEngine::new(dt).run(
            &mut eventful,
            SimTime::START,
            SimDuration::from_hours(48.0),
            &mut [&mut mon_event],
        );

        assert_eq!(mon_fixed.records(), mon_event.records());
    }

    #[test]
    fn equal_cadence_matches_with_battery() {
        let dt = SimDuration::from_minutes(15.0);
        let build = || -> Microgrid {
            Microgrid::new(
                vec![
                    Box::new(ramp_producer(None)),
                    Box::new(SignalActor::consumer(
                        "load",
                        crate::signal::ConstantSignal::new(120.0),
                    )),
                ],
                Box::new(SimpleBattery::new(
                    Energy::from_kwh(500.0),
                    0.5,
                    0.1,
                    mgopt_units::Power::from_kw(100.0),
                    mgopt_units::Power::from_kw(100.0),
                    0.9,
                )),
                Box::new(SelfConsumption::default()),
            )
        };

        let mut fixed = build();
        let mut a = MemoryMonitor::new();
        fixed.run(
            SimTime::START,
            SimDuration::from_hours(24.0),
            dt,
            &mut [&mut a],
        );

        let mut eventful = build();
        let mut b = MemoryMonitor::new();
        EventEngine::new(dt).run(
            &mut eventful,
            SimTime::START,
            SimDuration::from_hours(24.0),
            &mut [&mut b],
        );
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn coarse_actor_holds_value_between_events() {
        // Producer evaluated every 2 h, bus default 1 h: its power must be
        // held constant within each 2 h window.
        let mut mg = make_mg(vec![Box::new(ramp_producer(Some(
            SimDuration::from_hours(2.0),
        )))]);
        let mut mon = MemoryMonitor::new();
        EventEngine::new(SimDuration::from_hours(1.0)).run(
            &mut mg,
            SimTime::START,
            SimDuration::from_hours(6.0),
            &mut [&mut mon],
        );
        let recs = mon.records();
        // Events at 0,2,4 (producer) and hourly bus records.
        assert_eq!(recs.len(), 6);
        assert_eq!(recs[0].p_production.kw(), 0.0);
        assert_eq!(recs[1].p_production.kw(), 0.0, "held from t=0 eval");
        assert_eq!(recs[2].p_production.kw(), 20.0, "re-evaluated at t=2h");
        assert_eq!(recs[3].p_production.kw(), 20.0);
        assert_eq!(recs[4].p_production.kw(), 40.0);
    }

    #[test]
    fn energy_integration_is_exact_over_intervals() {
        // A single coarse actor: total energy = sum over hold intervals.
        let mut mg = make_mg(vec![Box::new(ramp_producer(Some(
            SimDuration::from_hours(3.0),
        )))]);
        let mut mon = MemoryMonitor::new();
        EventEngine::new(SimDuration::from_hours(3.0)).run(
            &mut mg,
            SimTime::START,
            SimDuration::from_hours(9.0),
            &mut [&mut mon],
        );
        let total_kwh: f64 = mon
            .records()
            .iter()
            .map(|r| r.p_production.kw() * r.dt.hours())
            .sum();
        // Holds: [0,3)h at 0 kW, [3,6) at 30, [6,9) at 60 => 270 kWh.
        assert_eq!(total_kwh, 270.0);
    }

    #[test]
    fn mixed_cadences_produce_irregular_records() {
        let mut mg = make_mg(vec![
            Box::new(ramp_producer(Some(SimDuration::from_hours(2.0)))),
            Box::new(
                SignalActor::consumer("load", crate::signal::ConstantSignal::new(10.0))
                    .with_step_size(SimDuration::from_minutes(90.0)),
            ),
        ]);
        let mut mon = MemoryMonitor::new();
        EventEngine::new(SimDuration::from_hours(1.0)).run(
            &mut mg,
            SimTime::START,
            SimDuration::from_hours(6.0),
            &mut [&mut mon],
        );
        // Events: hourly bus ticks + actor events at 1.5h, 4.5h — records
        // are the intervals between consecutive distinct event times.
        let dts: Vec<i64> = mon.records().iter().map(|r| r.dt.secs()).collect();
        assert_eq!(dts.iter().sum::<i64>(), 6 * 3_600);
        assert!(dts.contains(&1_800), "expected a 0.5h interval: {dts:?}");
        assert!(
            dts.iter().all(|&d| d <= 3_600),
            "bus tick caps intervals: {dts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_default_step_panics() {
        EventEngine::new(SimDuration::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::actor::SignalActor;
    use crate::dispatch::SelfConsumption;
    use crate::record::MemoryMonitor;
    use crate::signal::FnSignal;
    use mgopt_storage::SimpleBattery;
    use mgopt_units::Energy;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn event_engine_agrees_with_fixed_step(
            step_minutes in prop::sample::select(vec![5i64, 15, 30, 60]),
            load_kw in 10.0f64..500.0,
            phase in 0.1f64..4.0,
        ) {
            let dt = SimDuration::from_secs(step_minutes * 60);
            let build = || -> Microgrid {
                Microgrid::new(
                    vec![
                        Box::new(SignalActor::producer(
                            "gen",
                            FnSignal::new(move |t: SimTime| {
                                200.0 * (t.hours() / phase).sin().max(0.0)
                            }),
                        )),
                        Box::new(SignalActor::consumer(
                            "load",
                            crate::signal::ConstantSignal::new(load_kw),
                        )),
                    ],
                    Box::new(SimpleBattery::new(
                        Energy::from_kwh(200.0),
                        0.5,
                        0.1,
                        mgopt_units::Power::from_kw(80.0),
                        mgopt_units::Power::from_kw(80.0),
                        0.92,
                    )),
                    Box::new(SelfConsumption::default()),
                )
            };
            let mut m1 = MemoryMonitor::new();
            build().run(SimTime::START, SimDuration::from_hours(12.0), dt, &mut [&mut m1]);
            let mut m2 = MemoryMonitor::new();
            EventEngine::new(dt).run(&mut build(), SimTime::START, SimDuration::from_hours(12.0), &mut [&mut m2]);
            prop_assert_eq!(m1.records(), m2.records());
        }
    }
}

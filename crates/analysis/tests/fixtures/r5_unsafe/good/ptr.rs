pub fn read_first(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: the assert above guarantees `bytes` has at least one byte,
    // so the pointer read is in bounds.
    unsafe { *bytes.as_ptr() }
}

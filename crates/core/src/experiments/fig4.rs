//! Figure 4: on-site renewable coverage over (solar, wind) capacity with
//! **no battery** — isolating the generation mix. The paper shows Houston:
//! coverage improves with capacity but with clearly diminishing returns.

use mgopt_microgrid::{simulate_year, Composition};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::scenario::PreparedScenario;

/// Figure-4 output: a coverage surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Output {
    /// Site name.
    pub site: String,
    /// Solar capacities swept, kW (columns).
    pub solar_kw: Vec<f64>,
    /// Wind capacities swept, kW (rows; turbines × 3,000).
    pub wind_kw: Vec<f64>,
    /// `coverage_pct[w][s]` — direct on-site coverage in percent for wind
    /// row `w`, solar column `s`.
    pub coverage_pct: Vec<Vec<f64>>,
}

/// Run the coverage-surface experiment (battery fixed at zero).
pub fn run(scenario: &PreparedScenario) -> Fig4Output {
    let space = &scenario.config.space;
    let winds: Vec<u32> = space.wind_choices.clone();
    let solars: Vec<f64> = space.solar_choices_kw.clone();

    let coverage_pct: Vec<Vec<f64>> = winds
        .par_iter()
        .map(|&w| {
            solars
                .iter()
                .map(|&s| {
                    let comp = Composition::new(w, s, 0.0);
                    let r =
                        simulate_year(&scenario.data, &scenario.load, &comp, &scenario.config.sim);
                    // "This specific analysis excludes battery storage to
                    // isolate the impact of generation capacity": direct
                    // coverage, not battery-assisted coverage.
                    r.metrics.direct_coverage * 100.0
                })
                .collect()
        })
        .collect();

    Fig4Output {
        site: scenario.site_name().to_string(),
        solar_kw: solars,
        wind_kw: winds.iter().map(|&w| w as f64 * 3_000.0).collect(),
        coverage_pct,
    }
}

impl Fig4Output {
    /// Coverage at a grid cell.
    pub fn at(&self, wind_idx: usize, solar_idx: usize) -> f64 {
        self.coverage_pct[wind_idx][solar_idx]
    }

    /// Marginal coverage gain of the last solar step at a wind row —
    /// used to demonstrate diminishing returns.
    pub fn last_solar_marginal_gain(&self, wind_idx: usize) -> f64 {
        let row = &self.coverage_pct[wind_idx];
        if row.len() < 2 {
            return 0.0;
        }
        row[row.len() - 1] - row[row.len() - 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioConfig, SitePreset};
    use mgopt_microgrid::CompositionSpace;

    fn surface() -> Fig4Output {
        let scenario = ScenarioConfig {
            site: SitePreset::Houston,
            space: CompositionSpace {
                wind_choices: vec![0, 2, 4, 8],
                solar_choices_kw: vec![0.0, 8_000.0, 16_000.0, 32_000.0],
                battery_choices_kwh: vec![0.0],
            },
            ..ScenarioConfig::paper_houston()
        }
        .prepare();
        run(&scenario)
    }

    #[test]
    fn surface_shape_matches_space() {
        let s = surface();
        assert_eq!(s.coverage_pct.len(), 4);
        assert_eq!(s.coverage_pct[0].len(), 4);
        assert_eq!(s.wind_kw, vec![0.0, 6_000.0, 12_000.0, 24_000.0]);
    }

    #[test]
    fn zero_capacity_zero_coverage() {
        let s = surface();
        assert_eq!(s.at(0, 0), 0.0);
    }

    #[test]
    fn coverage_monotone_in_each_axis() {
        let s = surface();
        for w in 0..4 {
            for c in 1..4 {
                assert!(
                    s.at(w, c) >= s.at(w, c - 1) - 1e-9,
                    "solar axis not monotone at ({w},{c})"
                );
            }
        }
        for c in 0..4 {
            for w in 1..4 {
                assert!(
                    s.at(w, c) >= s.at(w - 1, c) - 1e-9,
                    "wind axis not monotone at ({w},{c})"
                );
            }
        }
    }

    #[test]
    fn diminishing_returns_along_solar() {
        let s = surface();
        // First solar step (from zero) gains far more than the last step.
        let first_gain = s.at(0, 1) - s.at(0, 0);
        let last_gain = s.at(0, 3) - s.at(0, 2);
        assert!(
            first_gain > 1.5 * last_gain,
            "no diminishing returns: first {first_gain}, last {last_gain}"
        );
    }

    #[test]
    fn coverage_bounded_without_storage() {
        // Without a battery, a solar-only system cannot exceed the daylight
        // share of demand.
        let s = surface();
        assert!(s.at(0, 3) < 60.0, "solar-only coverage {}", s.at(0, 3));
        for row in &s.coverage_pct {
            for &v in row {
                assert!((0.0..=100.0).contains(&v));
            }
        }
    }
}

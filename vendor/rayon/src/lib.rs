//! Workspace-local stand-in for the `rayon` crate.
//!
//! Implements the surface this workspace uses — `par_iter()` /
//! `into_par_iter()` followed by `map(...).collect()`, plus `for_each` and
//! `sum` — with real parallelism: workers pull item indices from a shared
//! atomic counter (dynamic load balancing, which matters because
//! composition evaluation cost varies with battery size). Results are
//! reassembled in input order, so `collect()` is deterministic exactly
//! like upstream rayon's indexed parallel iterators.
//!
//! Like upstream rayon, worker threads live in a **persistent global
//! pool**, spawned once on the first multi-worker call and reused across
//! calls (an always-on daemon runs thousands of parallel batches; paying
//! thread spawn/join per batch is measurable overhead). The submitting
//! thread always participates in its own job, so nested parallel calls
//! and a saturated pool cannot deadlock, and a 1-effective-worker call
//! never touches the pool at all (it runs inline, exactly the sequential
//! path). [`set_num_threads`] still takes effect per call: it caps how
//! many pool workers may *join* a job, not how many threads exist.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Process-wide worker-count override set by [`set_num_threads`];
/// `0` means "no override" (use every available core).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads: one per available core (or the
/// [`set_num_threads`] override, clamped to available cores), capped to
/// the item count by the driver loop.
fn thread_count() -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => avail,
        n => n.min(avail),
    }
}

/// The pool size parallel calls will use for large batches — upstream
/// rayon's `current_num_threads`. Benchmark artifacts record this instead
/// of re-deriving core counts (whose detection failure would mislabel the
/// entry), since this is by construction the worker count actually used.
pub fn current_num_threads() -> usize {
    thread_count()
}

/// Cap the worker pool at `n` threads for subsequent parallel calls;
/// `0` removes the cap (back to one worker per available core). Requests
/// beyond the machine's available parallelism are clamped, so callers can
/// ask for a 4-thread scaling point on a 1-core runner and
/// [`current_num_threads`] reports what will actually run. Used by the
/// benchmark bins' `MGOPT_THREADS` scaling sweeps; unlike upstream rayon
/// this takes effect for the very next call (the cap bounds how many
/// persistent pool workers may join each job, so no pool rebuild is
/// needed).
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// One type-erased job on the shared pool. Participants (the submitting
/// thread plus at most `cap` pool workers) pull item indices from `next`
/// and run `exec(data, i)`; `done == n` releases the submitter.
struct Job {
    /// Borrow of the submitting call's typed task closure. Only ever
    /// dereferenced by `exec` for indices `< n`, all of which complete
    /// before the submitter returns, so the pointee outlives every use.
    data: *const (),
    /// Monomorphized trampoline that casts `data` back to the task type.
    exec: fn(*const (), usize),
    /// Item count.
    n: usize,
    /// Next unclaimed item index (may run past `n`; that just means the
    /// dispenser is dry).
    next: AtomicUsize,
    /// Completed items (panicked ones included, so the latch always
    /// trips). `AcqRel` on the counter orders every participant's item
    /// writes before the final completion.
    done: AtomicUsize,
    /// How many pool workers may join (the per-call thread cap minus the
    /// submitting thread). Enforced under the pool queue lock.
    cap: usize,
    /// Pool workers that have joined this job so far.
    joined: AtomicUsize,
    /// Completion latch plus the first caught panic payload.
    state: Mutex<JobState>,
    /// Signals the submitter when `state.finished` flips.
    cv: Condvar,
}

struct JobState {
    finished: bool,
    panic: Option<Box<dyn Any + Send>>,
}

// SAFETY: `data` is only dereferenced through `exec`, whose pointee the
// submitter keeps borrowed until `done == n` — i.e. until every
// dereference has completed. `exec` is instantiated only for `Sync` task
// types, and every other field is a thread-safe primitive.
unsafe impl Send for Job {}
// SAFETY: same argument as the `Send` impl above.
unsafe impl Sync for Job {}

impl Job {
    /// Pull and run items until the dispenser runs dry. Panicking items
    /// still count toward `done` (the payload is stashed for the
    /// submitter to resume), so the completion latch always trips.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            let result = catch_unwind(AssertUnwindSafe(|| (self.exec)(self.data, i)));
            if let Err(payload) = result {
                let mut st = self.state.lock().unwrap();
                st.panic.get_or_insert(payload);
            }
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                let mut st = self.state.lock().unwrap();
                st.finished = true;
                self.cv.notify_all();
            }
        }
    }

    /// Can a pool worker still usefully join this job?
    fn joinable(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.n && self.joined.load(Ordering::Relaxed) < self.cap
    }
}

/// The persistent worker pool: a queue of in-flight jobs and the condvar
/// idle workers park on.
struct Pool {
    queue: Mutex<Vec<Arc<Job>>>,
    work_available: Condvar,
}

/// The process-wide pool, spawning its worker threads exactly once (one
/// per available core beyond the submitting thread — submitters always
/// work their own jobs, so `available_parallelism` threads participate in
/// a saturating call, same as the per-call spawning this replaces).
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .saturating_sub(1)
            .max(1);
        for k in 0..workers {
            std::thread::Builder::new()
                .name(format!("mgopt-rayon-{k}"))
                .spawn(worker_loop)
                .expect("spawn pool worker");
        }
        Pool {
            queue: Mutex::new(Vec::new()),
            work_available: Condvar::new(),
        }
    })
}

/// Body of one persistent pool worker: join the first joinable queued
/// job, work it dry, repeat; park when the queue has nothing to offer.
fn worker_loop() {
    let pool = pool();
    let mut queue = pool.queue.lock().unwrap();
    loop {
        // `joined` is bumped under the queue lock so a job never admits
        // more than `cap` workers.
        let job = queue.iter().find(|j| j.joinable()).cloned();
        match job {
            Some(job) => {
                job.joined.fetch_add(1, Ordering::Relaxed);
                drop(queue);
                job.work();
                queue = pool.queue.lock().unwrap();
            }
            None => queue = pool.work_available.wait(queue).unwrap(),
        }
    }
}

/// Run `task(i)` for every `i in 0..n` with the submitting thread plus up
/// to `extra` pool workers, blocking until all items complete. Re-raises
/// the first panic any item produced.
fn run_on_pool<F: Fn(usize) + Sync>(n: usize, extra: usize, task: &F) {
    fn trampoline<F: Fn(usize) + Sync>(data: *const (), i: usize) {
        // SAFETY: `data` was cast from `&F` by `run_on_pool`, which keeps
        // that borrow alive until the job's completion latch trips.
        let f = unsafe { &*data.cast::<F>() };
        f(i);
    }
    let job = Arc::new(Job {
        data: (task as *const F).cast(),
        exec: trampoline::<F>,
        n,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        cap: extra,
        joined: AtomicUsize::new(0),
        state: Mutex::new(JobState {
            finished: false,
            panic: None,
        }),
        cv: Condvar::new(),
    });
    let pool = pool();
    pool.queue.lock().unwrap().push(Arc::clone(&job));
    pool.work_available.notify_all();
    job.work();
    let mut st = job.state.lock().unwrap();
    while !st.finished {
        st = job.cv.wait(st).unwrap();
    }
    let panic = st.panic.take();
    drop(st);
    pool.queue.lock().unwrap().retain(|j| !Arc::ptr_eq(j, &job));
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
}

/// Run `f(i)` for every index in `0..n` on the shared worker pool,
/// collecting results in index order. Calls whose effective worker count
/// is 1 (single core, `set_num_threads(1)`, or a single item) run inline
/// without touching the pool.
fn parallel_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = thread_count().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let task = |i: usize| {
        let r = f(i);
        *slots[i].lock().unwrap() = Some(r);
    };
    run_on_pool(n, workers - 1, &task);
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("pool completed every item")
        })
        .collect()
}

/// A materialized parallel iterator: items are known up front.
pub struct ParVec<T> {
    items: Vec<T>,
}

/// The `map` adapter over a [`ParVec`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParVec<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel (no results).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
        T: Sync,
    {
        self.map(f).collect::<Vec<()>>();
    }

    /// Collect the items themselves.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Evaluate in parallel, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let items: Vec<Option<T>> = self.items.into_iter().map(Some).collect();
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(Mutex::new).collect();
        let f = &self.f;
        parallel_indexed(slots.len(), |i| {
            let item = slots[i].lock().unwrap().take().expect("item taken twice");
            f(item)
        })
        .into_iter()
        .collect()
    }

    /// Chain another map.
    pub fn map<R2, F2>(self, f2: F2) -> ParMap<T, impl Fn(T) -> R2 + Sync>
    where
        R2: Send,
        F2: Fn(R) -> R2 + Sync,
    {
        let f1 = self.f;
        ParMap {
            items: self.items,
            f: move |t| f2(f1(t)),
        }
    }

    /// Parallel sum of the mapped values.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.collect::<Vec<R>>().into_iter().sum()
    }

    /// Run for side effects.
    pub fn for_each_unit(self)
    where
        R: Send,
    {
        let _ = self.collect::<Vec<R>>();
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParVec<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParVec<usize> {
        ParVec {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;

    fn into_par_iter(self) -> ParVec<u64> {
        ParVec {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;

    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParVec<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParVec<&'a T> {
        ParVec {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParVec<&'a T> {
        ParVec {
            items: self.iter().collect(),
        }
    }
}

/// The rayon prelude: the traits needed for `par_iter` syntax.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Serializes tests that observe or mutate the global thread override
    /// (cargo runs tests concurrently by default).
    static THREADING: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn set_num_threads_caps_clamps_and_restores() {
        let _guard = THREADING.lock().unwrap();
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        crate::set_num_threads(1);
        assert_eq!(crate::current_num_threads(), 1);
        // A capped pool still computes correct, ordered results.
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
        // Requests beyond the machine are clamped, not granted.
        crate::set_num_threads(avail + 16);
        assert_eq!(crate::current_num_threads(), avail);
        // Zero removes the override.
        crate::set_num_threads(0);
        assert_eq!(crate::current_num_threads(), avail);
    }

    #[test]
    fn par_iter_over_refs() {
        let data = vec![1u64, 2, 3, 4, 5];
        let squares: Vec<u64> = data.par_iter().map(|&x| x * x).collect();
        assert_eq!(squares, vec![1, 4, 9, 16, 25]);
        assert_eq!(data.len(), 5, "borrowed, not consumed");
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        let _guard = THREADING.lock().unwrap();
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
        {
            return; // single-core runner: nothing to assert
        }
        let ids: std::collections::HashSet<std::thread::ThreadId> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                std::thread::current().id()
            })
            .collect();
        assert!(ids.len() > 1, "expected multiple worker threads");
    }

    #[test]
    fn current_num_threads_is_positive_and_stable() {
        let _guard = THREADING.lock().unwrap();
        let n = crate::current_num_threads();
        assert!(n >= 1);
        assert_eq!(n, crate::current_num_threads());
    }

    #[test]
    fn pool_threads_persist_across_calls() {
        let _guard = THREADING.lock().unwrap();
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
        {
            return; // single-core runner: parallel calls run inline
        }
        let main = std::thread::current().id();
        let batch = || -> std::collections::HashSet<std::thread::ThreadId> {
            (0..64usize)
                .into_par_iter()
                .map(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    std::thread::current().id()
                })
                .collect::<Vec<_>>()
                .into_iter()
                .filter(|&id| id != main)
                .collect()
        };
        let first = batch();
        let second = batch();
        assert!(!first.is_empty(), "no pool worker joined the first batch");
        assert!(
            first.intersection(&second).next().is_some(),
            "pool workers were not reused across calls: {first:?} vs {second:?}"
        );
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let results: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|k| {
                    s.spawn(move || {
                        (0..200usize)
                            .into_par_iter()
                            .map(move |i| i * 3 + k)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (k, got) in results.into_iter().enumerate() {
            let want: Vec<usize> = (0..200).map(|i| i * 3 + k).collect();
            assert_eq!(got, want, "submitter {k} saw corrupted results");
        }
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            (0..32usize)
                .into_par_iter()
                .map(|i| {
                    if i == 17 {
                        panic!("boom at {i}");
                    }
                    i
                })
                .collect::<Vec<_>>()
        }));
        assert!(caught.is_err(), "worker panic must reach the caller");
        // The pool survives a panicked job: later calls still work.
        let ok: Vec<usize> = (0..16usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(ok, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![7u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}

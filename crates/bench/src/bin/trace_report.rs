//! Summarize an `MGOPT_TRACE` JSONL trace: per-stage engine time
//! breakdown, search-convergence table (NSGA-II generations), pruning
//! rungs and sampler cohorts.
//!
//! ```text
//! MGOPT_TRACE=trace.jsonl cargo run --release --example fleet_search
//! cargo run --release -p mgopt-bench --bin trace_report -- trace.jsonl
//! cargo run --release -p mgopt-bench --bin trace_report -- trace.jsonl --check
//! ```
//!
//! `--check` validates the trace instead of summarizing it: every line
//! must parse as a flat trace event, and every *known* event kind must
//! carry its required fields (unknown kinds pass — the schema is
//! forward-compatible). Exit status 1 on any violation, with line
//! numbers. CI runs a traced example through `--check` so the event
//! schema cannot silently rot.

use std::process::ExitCode;

use mgopt_telemetry::parse::{parse_line, TraceEvent};

/// Required numeric fields per known event kind. `sampler` additionally
/// requires a string `kind`; unknown event kinds are accepted as-is.
fn required_fields(kind: &str) -> &'static [&'static str] {
    match kind {
        "trace_start" => &[],
        "batch_eval" => &[
            "candidates",
            "steps",
            "chunks",
            "rows",
            "prepare_ms",
            "kernel_ms",
            "wall_ms",
        ],
        "fleet_eval" => &[
            "plans",
            "sites",
            "steps",
            "chunks",
            "rows",
            "prepare_ms",
            "kernel_ms",
            "wall_ms",
        ],
        "generation" => &[
            "gen",
            "cohort",
            "cache_hits",
            "cache_misses",
            "feasible",
            "front",
        ],
        "rung" => &["rung", "fidelity", "cohort", "kept"],
        "sampler" => &["evals"],
        // Daemon audit events (`mgopt-server`): one start per accepted
        // study, exactly one of done/cancelled to close it, a queued event
        // when the process-wide cap defers it, one request_error per error
        // frame.
        "study_start" => &["sites", "plan_space", "prep_hits", "prep_misses"],
        "study_done" => &["generations", "sampled", "unique", "front", "wall_ms"],
        "study_queued" => &["ahead"],
        "study_cancelled" => &["generations", "sampled", "wall_ms"],
        "request_error" => &[],
        _ => &[],
    }
}

fn check_event(ev: &TraceEvent) -> Result<(), String> {
    for &field in required_fields(&ev.kind) {
        if ev.num(field).is_none() {
            return Err(format!(
                "event `{}` missing numeric field `{field}`",
                ev.kind
            ));
        }
    }
    if ev.kind == "sampler" && ev.str("kind").is_none() {
        return Err("event `sampler` missing string field `kind`".into());
    }
    // Daemon audit events correlate by request id; an error event without
    // its code is unactionable.
    if matches!(
        ev.kind.as_str(),
        "study_start" | "study_done" | "study_queued" | "study_cancelled" | "request_error"
    ) && ev.str("id").is_none()
    {
        return Err(format!("event `{}` missing string field `id`", ev.kind));
    }
    if ev.kind == "request_error" && ev.str("code").is_none() {
        return Err("event `request_error` missing string field `code`".into());
    }
    Ok(())
}

/// Aggregated engine-pass stats for one event kind.
#[derive(Default)]
struct EngineAgg {
    calls: u64,
    rows: u64,
    chunks: u64,
    simd_rows: u64,
    simd_remainder_rows: u64,
    prepare_ms: f64,
    kernel_ms: f64,
    wall_ms: f64,
}

impl EngineAgg {
    fn absorb(&mut self, ev: &TraceEvent) {
        self.calls += 1;
        self.rows += ev.uint("rows").unwrap_or(0);
        self.chunks += ev.uint("chunks").unwrap_or(0);
        // Optional (added with the SIMD kernel) — older traces summarize
        // without a lane-utilization line.
        self.simd_rows += ev.uint("simd_rows").unwrap_or(0);
        self.simd_remainder_rows += ev.uint("simd_remainder_rows").unwrap_or(0);
        self.prepare_ms += ev.num("prepare_ms").unwrap_or(0.0);
        self.kernel_ms += ev.num("kernel_ms").unwrap_or(0.0);
        self.wall_ms += ev.num("wall_ms").unwrap_or(0.0);
    }

    fn print(&self, label: &str) {
        if self.calls == 0 {
            return;
        }
        let throughput = if self.kernel_ms > 0.0 {
            self.rows as f64 / (self.kernel_ms / 1e3)
        } else {
            0.0
        };
        println!(
            "  {label:<12} {:>6} passes {:>10} chunks {:>14} rows   \
             prepare {:>9.1} ms   kernel {:>9.1} ms   wall {:>9.1} ms   {:>10.2e} rows/s",
            self.calls,
            self.chunks,
            self.rows,
            self.prepare_ms,
            self.kernel_ms,
            self.wall_ms,
            throughput
        );
        let vectorized = self.simd_rows + self.simd_remainder_rows;
        if vectorized > 0 {
            println!(
                "  {:<12} {:>6.1}% of rows in full lanes ({} lane rows, {} scalar-remainder rows)",
                "  lane util", // indented sublabel under the engine row
                self.simd_rows as f64 / vectorized as f64 * 1e2,
                self.simd_rows,
                self.simd_remainder_rows
            );
        }
    }
}

fn summarize(events: &[TraceEvent]) {
    let span_ms = events
        .last()
        .map(|e| e.t_ms)
        .unwrap_or(0.0)
        .max(events.first().map(|e| e.t_ms).unwrap_or(0.0));
    println!(
        "trace: {} events over {:.1} ms",
        events.len(),
        span_ms - events.first().map(|e| e.t_ms).unwrap_or(0.0)
    );

    // Engine passes.
    let mut batch = EngineAgg::default();
    let mut fleet = EngineAgg::default();
    for ev in events {
        match ev.kind.as_str() {
            "batch_eval" => batch.absorb(ev),
            "fleet_eval" => fleet.absorb(ev),
            _ => {}
        }
    }
    if batch.calls + fleet.calls > 0 {
        println!("\nengine passes (stage times sum worker-thread CPU time):");
        batch.print("batch");
        fleet.print("fleet");
    }

    // Search convergence.
    let generations: Vec<&TraceEvent> = events.iter().filter(|e| e.kind == "generation").collect();
    if !generations.is_empty() {
        let has_hv = generations.iter().any(|e| e.num("hv").is_some());
        println!("\nsearch convergence ({} generations):", generations.len());
        print!(
            "  {:>5} {:>7} {:>6} {:>7} {:>9} {:>6}",
            "gen", "cohort", "hits", "misses", "feasible", "front"
        );
        if has_hv {
            print!(" {:>12}", "hv");
        }
        println!(" {:>14} {:>14}", "best_obj0", "best_obj1");
        for ev in &generations {
            print!(
                "  {:>5} {:>7} {:>6} {:>7} {:>9} {:>6}",
                ev.uint("gen").unwrap_or(0),
                ev.uint("cohort").unwrap_or(0),
                ev.uint("cache_hits").unwrap_or(0),
                ev.uint("cache_misses").unwrap_or(0),
                ev.uint("feasible").unwrap_or(0),
                ev.uint("front").unwrap_or(0),
            );
            if has_hv {
                match ev.num("hv") {
                    Some(hv) => print!(" {hv:>12.4}"),
                    None => print!(" {:>12}", "-"),
                }
            }
            let best = |k: &str| {
                ev.num(k)
                    .map(|v| format!("{v:>14.4}"))
                    .unwrap_or_else(|| format!("{:>14}", "-"))
            };
            println!("{}{}", best("best_obj0"), best("best_obj1"));
        }
    }

    // Pruning rungs.
    let rungs: Vec<&TraceEvent> = events.iter().filter(|e| e.kind == "rung").collect();
    if !rungs.is_empty() {
        println!("\nsuccessive-halving rungs:");
        println!(
            "  {:>5} {:>10} {:>8} {:>6}",
            "rung", "fidelity", "cohort", "kept"
        );
        for ev in &rungs {
            println!(
                "  {:>5} {:>10.4} {:>8} {:>6}",
                ev.uint("rung").unwrap_or(0),
                ev.num("fidelity").unwrap_or(0.0),
                ev.uint("cohort").unwrap_or(0),
                ev.uint("kept").unwrap_or(0),
            );
        }
    }

    // Daemon audit log: one row per completed study, correlated by id.
    let studies: Vec<&TraceEvent> = events.iter().filter(|e| e.kind == "study_done").collect();
    if !studies.is_empty() {
        println!("\ndaemon studies ({}):", studies.len());
        println!(
            "  {:<18} {:>4} {:>8} {:>7} {:>6} {:>10}",
            "id", "gens", "sampled", "unique", "front", "wall_ms"
        );
        for ev in &studies {
            println!(
                "  {:<18} {:>4} {:>8} {:>7} {:>6} {:>10.1}",
                ev.str("id").unwrap_or("?"),
                ev.uint("generations").unwrap_or(0),
                ev.uint("sampled").unwrap_or(0),
                ev.uint("unique").unwrap_or(0),
                ev.uint("front").unwrap_or(0),
                ev.num("wall_ms").unwrap_or(0.0),
            );
        }
        let errors = events.iter().filter(|e| e.kind == "request_error").count();
        if errors > 0 {
            println!("  plus {errors} request_error frame(s)");
        }
    }
    let queued = events.iter().filter(|e| e.kind == "study_queued").count();
    let cancelled = events
        .iter()
        .filter(|e| e.kind == "study_cancelled")
        .count();
    if queued + cancelled > 0 {
        println!("\ndaemon queueing: {queued} queued, {cancelled} cancelled");
    }

    // Plain samplers.
    for ev in events.iter().filter(|e| e.kind == "sampler") {
        println!(
            "\nsampler `{}`: {} evaluations",
            ev.str("kind").unwrap_or("?"),
            ev.uint("evals").unwrap_or(0)
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [path] = paths[..] else {
        eprintln!("usage: trace_report <trace.jsonl> [--check]");
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut events: Vec<TraceEvent> = Vec::new();
    let mut violations = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line).and_then(|ev| check_event(&ev).map(|()| ev)) {
            Ok(ev) => events.push(ev),
            Err(e) => {
                eprintln!("trace_report: line {}: {e}", i + 1);
                violations += 1;
            }
        }
    }

    if check {
        if violations == 0 && !events.is_empty() {
            println!("trace_report: {} events, schema OK", events.len());
            return ExitCode::SUCCESS;
        }
        if events.is_empty() {
            eprintln!("trace_report: no events in {path}");
        }
        return ExitCode::FAILURE;
    }

    if events.is_empty() {
        eprintln!("trace_report: no parseable events in {path}");
        return ExitCode::FAILURE;
    }
    summarize(&events);
    if violations > 0 {
        eprintln!("trace_report: {violations} malformed line(s) skipped");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

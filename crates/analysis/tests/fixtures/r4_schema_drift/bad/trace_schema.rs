// mgopt-lint-fixture: role=trace-schema
pub fn required_fields(kind: &str) -> &'static [&'static str] {
    match kind {
        "study_start" => &["sites", "plan_space"],
        "ghost_event" => &[],
        _ => &[],
    }
}

//! Workspace-local stand-in for the `criterion` crate.
//!
//! Implements the harness surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `black_box`,
//! `BenchmarkId`) with straightforward wall-clock timing: a short warm-up,
//! then `sample_size` timed samples, reporting the median per-iteration
//! time. No statistics beyond that — the numbers are for relative
//! comparisons on one machine, which is all the workspace needs.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Option<Duration>,
}

impl Bencher {
    /// Time `f`, recording the median of `samples` single-call samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up.
        black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        self.last_median = Some(times[times.len() / 2]);
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_median: None,
    };
    f(&mut b);
    match b.last_median {
        Some(t) => println!("bench: {name:<50} {:>12}/iter", human(t)),
        None => println!("bench: {name:<50} (no timing recorded)"),
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Cap measurement time (accepted for API compatibility; unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, |b| f(b));
        self
    }

    /// Run a benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (prints nothing; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { samples: 10 }
    }
}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _criterion: self,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.samples, |b| f(b));
        self
    }

    /// Set the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }
}

/// Define a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("busy", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..1000u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        group.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", "60min").to_string(), "f/60min");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}

//! Workspace-local stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: [`Rng::gen`] (standard uniform
//! `f64` in `[0, 1)` from 53 bits, sign-bit `bool`), [`Rng::gen_range`]
//! over integer and float ranges (integers via Lemire's unbiased
//! widening-multiply rejection, matching upstream's uniform sampler
//! family), and [`seq::SliceRandom::shuffle`] (Fisher–Yates from the end).

pub use rand_core::{RngCore, SeedableRng};

use std::ops::{Range, RangeInclusive};

/// Standard-distribution sampling for a handful of primitive types.
pub trait StandardSample: Sized {
    /// Draw one value from the "standard" distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 effective mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A range type samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// A scalar with uniform sampling over intervals (a single generic
/// `SampleRange` impl keeps integer-literal type inference working exactly
/// like upstream rand's `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_closed(rng, lo, hi)
    }
}

/// Unbiased uniform integer in `[0, bound)` via Lemire's method.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }

            #[inline]
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_uniform!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f64::standard_sample(rng);
        lo + u * (hi - lo)
    }

    #[inline]
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw from the standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draw uniformly from a range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used imports.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = Lcg(9);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_bounds_and_coverage() {
        let mut rng = Lcg(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.gen_range(0..10usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1_000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(3u32..=3);
            assert_eq!(y, 3);
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Lcg(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements left in order");
    }

    #[test]
    fn bool_standard_is_balanced() {
        let mut rng = Lcg(13);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((3_000..7_000).contains(&trues), "{trues}");
    }
}

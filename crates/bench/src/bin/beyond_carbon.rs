//! Regenerates the **§4.3 "optimization beyond carbon"** studies: dispatch
//! policy comparison (emissions / cost / battery wear), carbon-aware load
//! shifting, and a three-objective NSGA-II search.
//!
//! ```bash
//! cargo run --release -p mgopt-bench --bin beyond_carbon
//! ```

use mgopt_core::experiments::beyond;
use mgopt_microgrid::Composition;

fn main() {
    let scenario = mgopt_bench::houston();
    let comp = Composition::new(4, 8_000.0, 22_500.0);
    let out = beyond::run(&scenario, comp, 42);

    println!("§4.3 studies on {} with {comp}\n", out.site);
    println!("policy comparison:");
    println!(
        "  {:<26} {:>10} {:>12} {:>9} {:>10} {:>8}",
        "policy", "tCO2/day", "cost $/yr", "cycles", "life(yrs)", "cov %"
    );
    for p in &out.policies {
        println!(
            "  {:<26} {:>10.2} {:>12.0} {:>9.0} {:>10.1} {:>8.2}",
            p.policy,
            p.operational_t_per_day,
            p.energy_cost_usd,
            p.battery_cycles,
            p.battery_lifetime_years,
            p.coverage_pct
        );
    }

    println!("\ncarbon-aware load shifting:");
    for s in &out.shifting {
        println!(
            "  flexibility {:>3.0}%  ->  {:>7.3} tCO2/day  ({:>5.1}% reduction)",
            s.flexible_fraction * 100.0,
            s.operational_t_per_day,
            s.reduction_pct
        );
    }

    println!("\nthree-objective search (operational, embodied, cost):");
    println!(
        "  front size {} from {} trials",
        out.tri_objective.front_size, out.tri_objective.sampled
    );
    mgopt_bench::write_artifact("beyond_carbon_houston", &out);
}

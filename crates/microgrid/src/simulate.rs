//! The year simulator.
//!
//! Two equivalent paths:
//!
//! * [`simulate_year`] — a tight fixed-step loop over precomputed unit
//!   profiles; this is what the optimizer sweeps (1,089 year-simulations
//!   for the exhaustive baseline).
//! * [`simulate_year_cosim`] — the same physics expressed through the
//!   `mgopt-cosim` actor/bus machinery, used by examples and as a
//!   cross-check; the two agree to numerical precision (tested).

use mgopt_cosim::{
    Actor, BusState, DispatchStrategy, Microgrid, Monitor, SelfConsumption, SignalActor, StepRecord,
};
use mgopt_storage::{ClcBattery, ClcParams, NullStorage, Storage};
use mgopt_units::{Power, SimDuration, SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::batch::StorageKernel;
use crate::composition::Composition;
use crate::embodied::EmbodiedDb;
use crate::metrics::{AnnualMetrics, AnnualResult};
use crate::policy::DispatchPolicy;
use crate::site::SiteData;

/// Simulation configuration shared across trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Battery model parameters (C/L/C).
    pub battery: ClcParams,
    /// Dispatch policy.
    pub policy: DispatchPolicy,
    /// Embodied-carbon factors.
    pub embodied: EmbodiedDb,
    /// Export remuneration as a fraction of the import price (0 = spill).
    pub export_price_factor: f64,
    /// Record an hourly SoC trace for rainflow/degradation analysis.
    pub record_soc: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            battery: ClcParams::default(),
            policy: DispatchPolicy::SelfConsumption,
            embodied: EmbodiedDb::paper(),
            export_price_factor: 0.3,
            record_soc: false,
        }
    }
}

/// Simulate one composition for one year (fast path).
///
/// # Panics
/// Panics when `load_kw` does not match the site data's step/length.
pub fn simulate_year(
    data: &SiteData,
    load_kw: &TimeSeries,
    comp: &Composition,
    cfg: &SimConfig,
) -> AnnualResult {
    simulate_period(data, load_kw, comp, cfg, data.len())
}

/// Simulate only the first `n_steps` of the year — the low-fidelity
/// evaluation used by pruning/early-stopping searches (§4.4 future work).
/// Rates (tCO2/day, coverage) are normalized to the simulated period.
///
/// # Panics
/// Panics when `load_kw` does not match the site data's step/length or
/// `n_steps` is zero.
pub fn simulate_period(
    data: &SiteData,
    load_kw: &TimeSeries,
    comp: &Composition,
    cfg: &SimConfig,
    n_steps: usize,
) -> AnnualResult {
    assert_eq!(load_kw.step(), data.step(), "load step mismatch");
    assert_eq!(load_kw.len(), data.len(), "load length mismatch");
    assert!(n_steps > 0, "n_steps must be positive");

    let n = n_steps.min(data.len());
    let dt_h = data.step().hours();
    let dt = data.step();
    let steps_per_hour = (3_600 / data.step().secs()).max(1) as usize;

    // Enum dispatch (same kernel as the batch engine): no allocation, no
    // virtual call per step.
    let mut battery = StorageKernel::for_composition(comp, &cfg.battery);

    let pv = data.pv_unit_kw.values();
    let wind = data.wind_unit_kw.values();
    let load = load_kw.values();
    let ci = data.ci_g_per_kwh.values();
    let price = data.price_usd_per_mwh.values();

    let mut acc = Accumulators::default();
    let mut soc_trace = Vec::new();
    if cfg.record_soc {
        soc_trace.reserve(n / steps_per_hour + 1);
    }

    let islanded = cfg.policy.is_islanded();
    for i in 0..n {
        let gen = comp.solar_kw * pv[i] + comp.wind_turbines as f64 * wind[i];
        let demand = load[i];
        let p_delta = gen - demand;

        let request = cfg
            .policy
            .storage_request(Power::from_kw(p_delta), battery.soc(), ci[i]);
        let p_storage = battery.update_kw(request, dt);

        let residual = p_delta - p_storage;
        let (import, export, unmet) = if islanded && residual < 0.0 {
            (0.0, 0.0, -residual)
        } else if residual < 0.0 {
            (-residual, 0.0, 0.0)
        } else {
            (0.0, residual, 0.0)
        };

        acc.record(
            gen,
            demand,
            import,
            export,
            p_storage,
            unmet,
            ci[i],
            price[i],
            dt_h,
            cfg.export_price_factor,
        );
        if cfg.record_soc && i % steps_per_hour == 0 {
            soc_trace.push(battery.soc());
        }
    }

    let cycles = battery.equivalent_full_cycles();
    let days = n as f64 * dt_h / 24.0;
    AnnualResult {
        composition: *comp,
        metrics: acc.finish(comp, cfg, cycles, n, days),
        soc_trace_hourly: soc_trace,
    }
}

/// Running totals of the fast path.
#[derive(Debug, Default)]
struct Accumulators {
    demand_kwh: f64,
    production_kwh: f64,
    import_kwh: f64,
    export_kwh: f64,
    direct_kwh: f64,
    charge_kwh: f64,
    discharge_kwh: f64,
    unmet_kwh: f64,
    op_kg: f64,
    cost_usd: f64,
    self_sufficient_steps: usize,
}

impl Accumulators {
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn record(
        &mut self,
        gen: f64,
        demand: f64,
        import: f64,
        export: f64,
        p_storage: f64,
        unmet: f64,
        ci: f64,
        price: f64,
        dt_h: f64,
        export_factor: f64,
    ) {
        self.demand_kwh += demand * dt_h;
        self.production_kwh += gen * dt_h;
        self.import_kwh += import * dt_h;
        self.export_kwh += export * dt_h;
        self.direct_kwh += gen.min(demand).max(0.0) * dt_h;
        if p_storage > 0.0 {
            self.charge_kwh += p_storage * dt_h;
        } else {
            self.discharge_kwh += -p_storage * dt_h;
        }
        self.unmet_kwh += unmet * dt_h;
        self.op_kg += import * dt_h * ci / 1e3;
        // price is $/MWh; energy in kWh -> /1000.
        self.cost_usd += import * dt_h * price / 1e3;
        self.cost_usd -= export * dt_h * price * export_factor / 1e3;
        if import <= 1e-9 {
            self.self_sufficient_steps += 1;
        }
    }

    fn finish(
        &self,
        comp: &Composition,
        cfg: &SimConfig,
        battery_cycles: f64,
        steps: usize,
        days: f64,
    ) -> AnnualMetrics {
        let op_t_total = self.op_kg / 1e3;
        // Scale to a per-year figure so partial-period (multi-fidelity)
        // simulations report comparable numbers.
        let op_t_year = op_t_total * 365.0 / days.max(1e-9);
        let demand = self.demand_kwh.max(1e-12);
        AnnualMetrics {
            demand_mwh: self.demand_kwh / 1e3,
            production_mwh: self.production_kwh / 1e3,
            grid_import_mwh: self.import_kwh / 1e3,
            grid_export_mwh: self.export_kwh / 1e3,
            direct_use_mwh: self.direct_kwh / 1e3,
            battery_charge_mwh: self.charge_kwh / 1e3,
            battery_discharge_mwh: self.discharge_kwh / 1e3,
            unmet_mwh: self.unmet_kwh / 1e3,
            operational_t_per_day: op_t_total / days.max(1e-9),
            operational_t_per_year: op_t_year,
            embodied_t: cfg.embodied.total_t(comp),
            coverage: (1.0 - self.import_kwh / demand).clamp(0.0, 1.0),
            direct_coverage: (self.direct_kwh / demand).clamp(0.0, 1.0),
            battery_cycles,
            self_sufficient_fraction: self.self_sufficient_steps as f64 / steps.max(1) as f64,
            energy_cost_usd: self.cost_usd,
        }
    }
}

/// A cosim dispatch strategy that adapts [`DispatchPolicy`] with a CI
/// signal for carbon-aware variants.
struct PolicyAdapter {
    policy: DispatchPolicy,
    ci: TimeSeries,
}

impl DispatchStrategy for PolicyAdapter {
    fn storage_request(&mut self, state: &BusState) -> Power {
        let ci = self.ci.at(state.t);
        self.policy.storage_request(state.p_delta, state.soc, ci)
    }

    fn grid_import_limit(&mut self, _state: &BusState) -> Option<Power> {
        if self.policy.is_islanded() {
            Some(Power::ZERO)
        } else {
            None
        }
    }

    fn name(&self) -> &str {
        self.policy.name()
    }
}

/// Build the cosim [`Microgrid`] equivalent of a fast-path trial.
pub fn build_cosim_microgrid(
    data: &SiteData,
    load_kw: &TimeSeries,
    comp: &Composition,
    cfg: &SimConfig,
) -> Microgrid {
    let actors: Vec<Box<dyn Actor>> = vec![
        Box::new(SignalActor::producer(
            "solar-farm",
            data.pv_unit_kw.scaled(comp.solar_kw),
        )),
        Box::new(SignalActor::producer(
            "wind-farm",
            data.wind_unit_kw.scaled(comp.wind_turbines as f64),
        )),
        Box::new(SignalActor::consumer("data-center", load_kw.clone())),
    ];

    let storage: Box<dyn Storage + Send> = if comp.battery_kwh > 0.0 {
        Box::new(ClcBattery::new(
            mgopt_units::Energy::from_kwh(comp.battery_kwh),
            cfg.battery.clone(),
        ))
    } else {
        Box::new(NullStorage::new())
    };

    let strategy: Box<dyn DispatchStrategy> = match cfg.policy {
        DispatchPolicy::SelfConsumption => Box::new(SelfConsumption::default()),
        _ => Box::new(PolicyAdapter {
            policy: cfg.policy,
            ci: data.ci_g_per_kwh.clone(),
        }),
    };
    Microgrid::new(actors, storage, strategy)
}

/// Monitor that reproduces the fast-path accumulators from cosim records.
struct MetricsMonitor<'a> {
    acc: Accumulators,
    ci: &'a TimeSeries,
    price: &'a TimeSeries,
    export_factor: f64,
}

impl Monitor for MetricsMonitor<'_> {
    fn record(&mut self, rec: &StepRecord) {
        let dt_h = rec.dt.hours();
        self.acc.record(
            rec.p_production.kw(),
            -rec.p_consumption.kw(),
            rec.grid_import().kw(),
            rec.grid_export().kw(),
            rec.p_storage.kw(),
            rec.p_unmet.kw(),
            self.ci.at(rec.t),
            self.price.at(rec.t),
            dt_h,
            self.export_factor,
        );
    }
}

/// Simulate one composition for one year through the cosim engine.
pub fn simulate_year_cosim(
    data: &SiteData,
    load_kw: &TimeSeries,
    comp: &Composition,
    cfg: &SimConfig,
) -> AnnualResult {
    let mut mg = build_cosim_microgrid(data, load_kw, comp, cfg);
    let mut monitor = MetricsMonitor {
        acc: Accumulators::default(),
        ci: &data.ci_g_per_kwh,
        price: &data.price_usd_per_mwh,
        export_factor: cfg.export_price_factor,
    };
    let result = mg.run(
        SimTime::START,
        SimDuration::from_secs(data.step().secs() * data.len() as i64),
        data.step(),
        &mut [&mut monitor],
    );
    let cycles = mg.storage().equivalent_full_cycles();
    let days = result.steps as f64 * data.step().hours() / 24.0;
    AnnualResult {
        composition: *comp,
        metrics: monitor.acc.finish(comp, cfg, cycles, result.steps, days),
        soc_trace_hourly: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::Site;
    use mgopt_workload::HpcWorkload;

    fn setup() -> (SiteData, TimeSeries) {
        let data = Site::houston().prepare(SimDuration::from_hours(1.0), 42);
        let load = HpcWorkload::perlmutter_like(42).generate(SimDuration::from_hours(1.0));
        (data, load)
    }

    #[test]
    fn baseline_matches_ci_mean() {
        let (data, load) = setup();
        let r = simulate_year(&data, &load, &Composition::BASELINE, &SimConfig::default());
        // Pure grid power at 1.62 MW mean: the paper's Houston baseline.
        assert!(
            (r.metrics.operational_t_per_day - 15.54).abs() < 0.25,
            "houston baseline {} t/day",
            r.metrics.operational_t_per_day
        );
        assert_eq!(r.metrics.embodied_t, 0.0);
        assert_eq!(r.metrics.coverage, 0.0);
        assert_eq!(r.metrics.battery_cycles, 0.0);
    }

    #[test]
    fn renewables_cut_emissions_monotonically() {
        let (data, load) = setup();
        let cfg = SimConfig::default();
        let none = simulate_year(&data, &load, &Composition::BASELINE, &cfg);
        let some = simulate_year(&data, &load, &Composition::new(4, 0.0, 0.0), &cfg);
        let more = simulate_year(&data, &load, &Composition::new(8, 8_000.0, 0.0), &cfg);
        assert!(some.metrics.operational_t_per_day < none.metrics.operational_t_per_day);
        assert!(more.metrics.operational_t_per_day < some.metrics.operational_t_per_day);
        assert!(more.metrics.coverage > some.metrics.coverage);
    }

    #[test]
    fn battery_raises_coverage() {
        let (data, load) = setup();
        let cfg = SimConfig::default();
        let no_bat = simulate_year(&data, &load, &Composition::new(4, 8_000.0, 0.0), &cfg);
        let bat = simulate_year(&data, &load, &Composition::new(4, 8_000.0, 30_000.0), &cfg);
        assert!(bat.metrics.coverage > no_bat.metrics.coverage);
        assert!(bat.metrics.battery_cycles > 10.0);
        assert!(bat.metrics.grid_export_mwh < no_bat.metrics.grid_export_mwh);
    }

    #[test]
    fn energy_balance_closes() {
        let (data, load) = setup();
        let cfg = SimConfig::default();
        let r = simulate_year(&data, &load, &Composition::new(4, 12_000.0, 30_000.0), &cfg);
        let m = &r.metrics;
        // production + import + discharge = demand + export + charge (± battery SoC drift)
        let lhs = m.production_mwh + m.grid_import_mwh + m.battery_discharge_mwh;
        let rhs = m.demand_mwh + m.grid_export_mwh + m.battery_charge_mwh;
        let drift_allowance = 30.0 + 0.13 * m.battery_charge_mwh; // losses + SoC drift
        assert!(
            (lhs - rhs).abs() < drift_allowance,
            "balance violated: lhs {lhs} rhs {rhs}"
        );
    }

    #[test]
    fn fast_path_agrees_with_cosim() {
        let (data, load) = setup();
        let cfg = SimConfig::default();
        for comp in [
            Composition::BASELINE,
            Composition::new(4, 0.0, 7_500.0),
            Composition::new(3, 8_000.0, 22_500.0),
        ] {
            let fast = simulate_year(&data, &load, &comp, &cfg);
            let cosim = simulate_year_cosim(&data, &load, &comp, &cfg);
            let a = &fast.metrics;
            let b = &cosim.metrics;
            assert!(
                (a.operational_t_per_day - b.operational_t_per_day).abs() < 1e-9,
                "{comp}"
            );
            assert!(
                (a.grid_import_mwh - b.grid_import_mwh).abs() < 1e-6,
                "{comp}"
            );
            assert!((a.coverage - b.coverage).abs() < 1e-9, "{comp}");
            assert!((a.battery_cycles - b.battery_cycles).abs() < 1e-9, "{comp}");
            assert!(
                (a.energy_cost_usd - b.energy_cost_usd).abs() < 1e-3,
                "{comp}"
            );
        }
    }

    #[test]
    fn islanded_policy_tracks_unmet_load() {
        let (data, load) = setup();
        let cfg = SimConfig {
            policy: DispatchPolicy::Islanded,
            ..SimConfig::default()
        };
        let r = simulate_year(&data, &load, &Composition::new(4, 8_000.0, 30_000.0), &cfg);
        assert_eq!(r.metrics.grid_import_mwh, 0.0);
        assert!(
            r.metrics.unmet_mwh > 0.0,
            "a 4-turbine island cannot cover everything"
        );
        assert!(
            r.metrics.coverage == 1.0,
            "no imports implies full (served) coverage"
        );
    }

    #[test]
    fn carbon_aware_charging_uses_clean_grid_power() {
        let (data, load) = setup();
        let base = simulate_year(
            &data,
            &load,
            &Composition::new(0, 0.0, 30_000.0),
            &SimConfig::default(),
        );
        let aware = simulate_year(
            &data,
            &load,
            &Composition::new(0, 0.0, 30_000.0),
            &SimConfig {
                policy: DispatchPolicy::CarbonAwareGridCharge {
                    ci_threshold_g_per_kwh: 330.0,
                    target_soc: 0.9,
                },
                ..SimConfig::default()
            },
        );
        // The aware policy cycles the battery (grid arbitrage on carbon)...
        assert!(aware.metrics.battery_cycles > base.metrics.battery_cycles + 5.0);
        // ...and reduces emissions per unit of demand served from the grid
        // even though total imports grow (charging losses).
        let base_ci = base.metrics.operational_t_per_year / base.metrics.grid_import_mwh;
        let aware_ci = aware.metrics.operational_t_per_year / aware.metrics.grid_import_mwh;
        assert!(
            aware_ci < base_ci,
            "effective CI should drop: {aware_ci} vs {base_ci}"
        );
    }

    #[test]
    fn soc_trace_recorded_when_requested() {
        let (data, load) = setup();
        let cfg = SimConfig {
            record_soc: true,
            ..SimConfig::default()
        };
        let r = simulate_year(&data, &load, &Composition::new(2, 4_000.0, 15_000.0), &cfg);
        assert_eq!(r.soc_trace_hourly.len(), 8_760);
        for &s in &r.soc_trace_hourly {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "load length mismatch")]
    fn mismatched_load_panics() {
        let (data, _) = setup();
        let short = TimeSeries::new(SimDuration::from_hours(1.0), vec![1.0; 100]);
        simulate_year(&data, &short, &Composition::BASELINE, &SimConfig::default());
    }

    #[test]
    #[should_panic(expected = "n_steps must be positive")]
    fn zero_step_period_panics_instead_of_reporting_garbage_rates() {
        // Regression: a zero-step window used to fall through to the
        // `days.max(1e-9)` guard in `Accumulators::finish` and report
        // near-zero-day rates; the API boundary now rejects it (matching
        // the `steps_for_fidelity` clamp upstream).
        let (data, load) = setup();
        simulate_period(
            &data,
            &load,
            &Composition::BASELINE,
            &SimConfig::default(),
            0,
        );
    }

    #[test]
    fn one_step_period_reports_finite_rates() {
        // The smallest legal window: every rate must be finite and the
        // per-day normalization must use the true (tiny) day count.
        let (data, load) = setup();
        let r = simulate_period(
            &data,
            &load,
            &Composition::BASELINE,
            &SimConfig::default(),
            1,
        );
        assert!(r.metrics.operational_t_per_day.is_finite());
        assert!(r.metrics.operational_t_per_year.is_finite());
        // One baseline hour of grid import: the per-day rate is 24x the
        // hour's emissions, not an absurd near-zero-day blow-up.
        let hour_t = r.metrics.grid_import_mwh * 1e3 * data.ci_g_per_kwh.values()[0] / 1e6;
        assert!((r.metrics.operational_t_per_day - hour_t * 24.0).abs() < 1e-9);
        assert!(
            (r.metrics.operational_t_per_year - r.metrics.operational_t_per_day * 365.0).abs()
                < 1e-9
        );
    }
}

//! Figure 2: the Pareto front of (embodied tCO2, operational tCO2/day)
//! per site, with the five candidate compositions highlighted.

use mgopt_microgrid::AnnualResult;
use mgopt_optimizer::pareto::non_dominated_indices;
use serde::{Deserialize, Serialize};

use super::tables::{extract_candidates, CandidateTable};
use super::CandidateRow;
use crate::scenario::PreparedScenario;
use crate::sweep::sweep_all;

/// One point of the Figure-2 scatter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Point {
    /// Embodied emissions, tCO2 (x-axis).
    pub embodied_t: f64,
    /// Operational emissions, tCO2/day (y-axis).
    pub operational_t_per_day: f64,
    /// The composition label `(wind MW, solar MW, battery MWh)`.
    pub label: String,
}

/// Figure-2 output for one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Output {
    /// Site name.
    pub site: String,
    /// Pareto-front points, sorted by embodied emissions (red dots).
    pub front: Vec<Fig2Point>,
    /// Candidate compositions (red triangles) — the table rows.
    pub candidates: Vec<CandidateRow>,
    /// Total compositions evaluated.
    pub evaluated: usize,
}

/// Compute the Pareto front of a sweep.
pub fn pareto_front_of(results: &[AnnualResult]) -> Vec<&AnnualResult> {
    let points: Vec<Vec<f64>> = results
        .iter()
        .map(|r| vec![r.metrics.operational_t_per_day, r.metrics.embodied_t])
        .collect();
    let mut front: Vec<&AnnualResult> = non_dominated_indices(&points)
        .into_iter()
        .map(|i| &results[i])
        .collect();
    front.sort_by(|a, b| {
        a.metrics
            .embodied_t
            .partial_cmp(&b.metrics.embodied_t)
            .expect("NaN embodied")
    });
    front
}

/// Run the Figure-2 experiment for one site.
pub fn run(scenario: &PreparedScenario) -> Fig2Output {
    let results = sweep_all(scenario);
    let front = pareto_front_of(&results)
        .into_iter()
        .map(|r| Fig2Point {
            embodied_t: r.metrics.embodied_t,
            operational_t_per_day: r.metrics.operational_t_per_day,
            label: r.composition.label(),
        })
        .collect();
    Fig2Output {
        site: scenario.site_name().to_string(),
        front,
        candidates: extract_candidates(&results),
        evaluated: results.len(),
    }
}

/// Convenience: run Figure 2 and the candidate table in one sweep.
pub fn run_with_table(scenario: &PreparedScenario) -> (Fig2Output, CandidateTable) {
    let results = sweep_all(scenario);
    let front = pareto_front_of(&results)
        .into_iter()
        .map(|r| Fig2Point {
            embodied_t: r.metrics.embodied_t,
            operational_t_per_day: r.metrics.operational_t_per_day,
            label: r.composition.label(),
        })
        .collect();
    let candidates = extract_candidates(&results);
    (
        Fig2Output {
            site: scenario.site_name().to_string(),
            front,
            candidates: candidates.clone(),
            evaluated: results.len(),
        },
        CandidateTable {
            site: scenario.site_name().to_string(),
            rows: candidates,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioConfig, SitePreset};
    use mgopt_microgrid::CompositionSpace;

    fn output() -> Fig2Output {
        let scenario = ScenarioConfig {
            site: SitePreset::Houston,
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_houston()
        }
        .prepare();
        run(&scenario)
    }

    #[test]
    fn front_is_sorted_and_monotone() {
        let out = output();
        assert!(!out.front.is_empty());
        for w in out.front.windows(2) {
            assert!(w[0].embodied_t <= w[1].embodied_t, "sorted by embodied");
            assert!(
                w[0].operational_t_per_day >= w[1].operational_t_per_day - 1e-9,
                "operational must fall along the front"
            );
        }
    }

    #[test]
    fn front_contains_baseline_and_is_subset() {
        let out = output();
        assert_eq!(out.evaluated, 27);
        assert!(out.front.len() <= 27);
        // The zero-investment baseline is always on the front (it has the
        // minimal embodied emissions).
        assert_eq!(out.front[0].embodied_t, 0.0);
    }

    #[test]
    fn candidates_present() {
        let out = output();
        assert_eq!(out.candidates.len(), 5);
    }
}

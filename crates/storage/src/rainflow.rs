//! Rainflow cycle counting on state-of-charge traces.
//!
//! The paper reports "battery cycles" per candidate composition; equivalent
//! full cycles from throughput is the headline number, but degradation-aware
//! objectives (§4.3) need the *depth distribution* of cycles, which is what
//! rainflow extracts. Implementation follows the ASTM E1049-85 four-point
//! method on the turning-point sequence.

/// One counted cycle (or half cycle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cycle {
    /// Depth of the excursion (SoC fraction, 0..1).
    pub range: f64,
    /// Mean SoC of the excursion.
    pub mean: f64,
    /// 1.0 for a full cycle, 0.5 for a residual half cycle.
    pub count: f64,
}

/// Reduce a trace to its turning points (local extrema), dropping
/// plateaus. First and last samples are always kept.
pub fn turning_points(trace: &[f64]) -> Vec<f64> {
    let mut pts = Vec::new();
    for &x in trace {
        // Drop repeats of the last point (plateau).
        if pts.last() == Some(&x) {
            continue;
        }
        // While the last three points are monotone, the middle one is not a
        // turning point — replace it.
        while pts.len() >= 2 {
            let a = pts[pts.len() - 2];
            let b = pts[pts.len() - 1];
            if (b - a) * (x - b) >= 0.0 {
                pts.pop();
            } else {
                break;
            }
        }
        pts.push(x);
    }
    pts
}

/// Rainflow-count a trace into cycles.
pub fn count_cycles(trace: &[f64]) -> Vec<Cycle> {
    let pts = turning_points(trace);
    let mut cycles = Vec::new();
    let mut stack: Vec<f64> = Vec::new();

    for &p in &pts {
        stack.push(p);
        // Four-point rule: with points [.., a, b, c, d], the excursion b-c
        // is a full cycle when |b - c| <= |a - b| and |b - c| <= |c - d|.
        while stack.len() >= 4 {
            let n = stack.len();
            let (a, b, c, d) = (stack[n - 4], stack[n - 3], stack[n - 2], stack[n - 1]);
            let x = (b - c).abs();
            if x <= (a - b).abs() && x <= (c - d).abs() {
                cycles.push(Cycle {
                    range: x,
                    mean: (b + c) / 2.0,
                    count: 1.0,
                });
                // Remove b and c; a and d remain adjacent.
                stack.remove(n - 3);
                stack.remove(n - 3);
            } else {
                break;
            }
        }
    }

    // Residual: every adjacent pair is a half cycle.
    for w in stack.windows(2) {
        cycles.push(Cycle {
            range: (w[1] - w[0]).abs(),
            mean: (w[1] + w[0]) / 2.0,
            count: 0.5,
        });
    }
    cycles.retain(|c| c.range > 0.0);
    cycles
}

/// Equivalent full cycles: sum of `range × count` over all rainflow cycles.
///
/// A cycle of depth 1.0 counts once; two half-depth cycles count once.
pub fn equivalent_full_cycles(trace: &[f64]) -> f64 {
    count_cycles(trace).iter().map(|c| c.range * c.count).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turning_points_strip_monotone_runs() {
        let trace = [0.0, 0.2, 0.4, 0.8, 0.6, 0.4, 0.5, 0.5, 0.5, 0.9];
        assert_eq!(turning_points(&trace), vec![0.0, 0.8, 0.4, 0.9]);
    }

    #[test]
    fn turning_points_of_constant_trace() {
        assert_eq!(turning_points(&[0.5, 0.5, 0.5]), vec![0.5]);
        assert!(count_cycles(&[0.5, 0.5]).is_empty());
    }

    #[test]
    fn single_full_excursion_is_two_halves() {
        // 0 -> 1 -> 0: rainflow yields two half cycles of range 1.
        let cycles = count_cycles(&[0.0, 1.0, 0.0]);
        let total: f64 = cycles.iter().map(|c| c.count).sum();
        assert_eq!(total, 1.0);
        for c in &cycles {
            assert_eq!(c.range, 1.0);
            assert_eq!(c.count, 0.5);
        }
        assert!((equivalent_full_cycles(&[0.0, 1.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nested_small_cycle_extracted() {
        // Classic rainflow fixture: a small inner cycle riding a large one.
        let trace = [0.0, 1.0, 0.4, 0.6, 0.0];
        let cycles = count_cycles(&trace);
        // Inner 0.4->0.6 is one full cycle of range 0.2.
        let full: Vec<_> = cycles.iter().filter(|c| c.count == 1.0).collect();
        assert_eq!(full.len(), 1);
        assert!((full[0].range - 0.2).abs() < 1e-12);
        assert!((full[0].mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn astm_standard_example() {
        // ASTM E1049 fixture (scaled): peaks/valleys -2,1,-3,5,-1,3,-4,4,-2.
        let trace = [-2.0, 1.0, -3.0, 5.0, -1.0, 3.0, -4.0, 4.0, -2.0];
        let cycles = count_cycles(&trace);
        let total_count: f64 = cycles.iter().map(|c| c.count).sum();
        // The standard counts 4 full-equivalents: ranges 3,4,4,6,8,8,9 with
        // counts .5,1,.5,.5,.5,.5,.5 => total count 4.0
        assert!((total_count - 4.0).abs() < 1e-12, "total {total_count}");
        let full: Vec<_> = cycles.iter().filter(|c| c.count == 1.0).collect();
        assert_eq!(full.len(), 1);
        assert!((full[0].range - 4.0).abs() < 1e-12); // the -1..3 cycle
    }

    #[test]
    fn daily_cycling_counts_one_cycle_per_day() {
        // 10 days of full charge/discharge.
        let mut trace = Vec::new();
        for _ in 0..10 {
            trace.extend_from_slice(&[1.0, 0.1]);
        }
        trace.push(1.0);
        let efc = equivalent_full_cycles(&trace);
        assert!((efc - 10.0 * 0.9).abs() < 0.5, "efc {efc}");
    }

    #[test]
    fn shallow_cycling_produces_fewer_equivalent_cycles() {
        let mut deep = Vec::new();
        let mut shallow = Vec::new();
        for _ in 0..50 {
            deep.extend_from_slice(&[1.0, 0.1]);
            shallow.extend_from_slice(&[0.6, 0.4]);
        }
        assert!(equivalent_full_cycles(&deep) > 4.0 * equivalent_full_cycles(&shallow));
    }

    #[test]
    fn empty_and_trivial_traces() {
        assert!(count_cycles(&[]).is_empty());
        assert!(count_cycles(&[0.3]).is_empty());
        assert_eq!(equivalent_full_cycles(&[]), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn count_conservation(trace in prop::collection::vec(0.0f64..1.0, 0..200)) {
            // Total half-cycle count equals turning-point intervals.
            let pts = turning_points(&trace);
            let cycles = count_cycles(&trace);
            let halves: f64 = cycles.iter().map(|c| c.count * 2.0).sum();
            // Each interval between adjacent turning points contributes
            // exactly one half cycle (full cycles consume two intervals),
            // except zero-range ones that are filtered.
            prop_assert!(halves <= (pts.len().saturating_sub(1)) as f64 + 1e-9);
        }

        #[test]
        fn ranges_bounded_by_trace_span(trace in prop::collection::vec(0.0f64..1.0, 2..200)) {
            let lo = trace.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = trace.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for c in count_cycles(&trace) {
                prop_assert!(c.range <= hi - lo + 1e-12);
                prop_assert!(c.mean >= lo - 1e-12 && c.mean <= hi + 1e-12);
            }
        }

        #[test]
        fn efc_nonnegative_and_finite(trace in prop::collection::vec(0.0f64..1.0, 0..300)) {
            let efc = equivalent_full_cycles(&trace);
            prop_assert!(efc >= 0.0);
            prop_assert!(efc.is_finite());
        }
    }
}

//! Dispatch policies beyond plain self-consumption.
//!
//! The paper's framework "can also accommodate different operational
//! strategies such as demand response or carbon-aware scheduling" (§3.3);
//! §4.3 lists battery-degradation, cost and reliability objectives. The
//! policies here feed those studies.

use mgopt_units::{Power, TimeSeries};
use serde::{Deserialize, Serialize};

/// Dispatch policy used by the fast-path year simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Charge on surplus, discharge on deficit, never touch the grid for
    /// charging (Vessim's default microgrid behaviour).
    SelfConsumption,
    /// Like `SelfConsumption` but grid imports are forbidden; deficits
    /// beyond the battery become unmet load (resilience studies).
    Islanded,
    /// Carbon-aware grid charging: when grid carbon intensity drops below
    /// `ci_threshold_g_per_kwh` and the battery is below `target_soc`,
    /// charge from the grid in addition to any surplus.
    CarbonAwareGridCharge {
        /// Charge from the grid when CI is below this, gCO2/kWh.
        ci_threshold_g_per_kwh: f64,
        /// Stop grid-charging at this state of charge.
        target_soc: f64,
    },
    /// Battery-sparing operation: only discharge when the deficit exceeds
    /// `deficit_threshold_kw`, reducing shallow cycling (degradation
    /// objective).
    BatterySparing {
        /// Deficits smaller than this are served from the grid, kW.
        deficit_threshold_kw: f64,
    },
}

impl DispatchPolicy {
    /// Storage power request for one step of the fast-path simulation.
    ///
    /// * `p_delta` — net bus power (production − load), kW;
    /// * `soc` — battery state of charge;
    /// * `ci` — grid carbon intensity this step, g/kWh.
    #[inline]
    pub fn storage_request(&self, p_delta: Power, soc: f64, ci: f64) -> Power {
        match *self {
            DispatchPolicy::SelfConsumption | DispatchPolicy::Islanded => p_delta,
            DispatchPolicy::CarbonAwareGridCharge {
                ci_threshold_g_per_kwh,
                target_soc,
            } => {
                if ci < ci_threshold_g_per_kwh && soc < target_soc {
                    // Request "as much charge as the battery will take";
                    // the C/L/C envelope clamps it. Surplus still counts.
                    Power::from_kw(f64::MAX / 4.0).max(p_delta)
                } else {
                    p_delta
                }
            }
            DispatchPolicy::BatterySparing {
                deficit_threshold_kw,
            } => {
                if p_delta.kw() < 0.0 && -p_delta.kw() < deficit_threshold_kw {
                    Power::ZERO
                } else {
                    p_delta
                }
            }
        }
    }

    /// `true` when grid imports are forbidden.
    #[inline]
    pub fn is_islanded(&self) -> bool {
        matches!(self, DispatchPolicy::Islanded)
    }

    /// Policy name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::SelfConsumption => "self-consumption",
            DispatchPolicy::Islanded => "islanded",
            DispatchPolicy::CarbonAwareGridCharge { .. } => "carbon-aware-grid-charge",
            DispatchPolicy::BatterySparing { .. } => "battery-sparing",
        }
    }
}

/// Carbon-aware load shifting (paper §4.3, "load shifting potential").
///
/// Moves up to `flexible_fraction` of each day's energy from that day's
/// highest-CI hours to its lowest-CI hours, bounded by `headroom_factor`
/// times the day's peak power. Total daily energy is preserved — this
/// models deferrable batch work rescheduled within the day, the policy
/// Vessim implements via its carbon-aware scheduling controllers.
///
/// # Panics
/// Panics when the series disagree in shape or the fractions are invalid.
pub fn shift_load_carbon_aware(
    load_kw: &TimeSeries,
    ci_g_per_kwh: &TimeSeries,
    flexible_fraction: f64,
    headroom_factor: f64,
) -> TimeSeries {
    assert!(
        (0.0..=1.0).contains(&flexible_fraction),
        "flexible_fraction in [0,1]"
    );
    assert!(
        headroom_factor >= 1.0,
        "headroom must allow at least the peak"
    );
    assert_eq!(load_kw.step(), ci_g_per_kwh.step(), "step mismatch");
    assert_eq!(load_kw.len(), ci_g_per_kwh.len(), "length mismatch");

    let steps_per_day = (mgopt_units::SECONDS_PER_DAY / load_kw.step().secs()) as usize;
    assert!(
        steps_per_day > 0 && load_kw.len().is_multiple_of(steps_per_day),
        "series must cover whole days"
    );

    let mut out = load_kw.values().to_vec();
    let days = load_kw.len() / steps_per_day;
    for d in 0..days {
        let lo = d * steps_per_day;
        let hi = lo + steps_per_day;
        let day_load = &mut out[lo..hi];
        let day_ci = &ci_g_per_kwh.values()[lo..hi];

        let peak = day_load.iter().copied().fold(0.0f64, f64::max);
        let cap = peak * headroom_factor;

        // Order hours by CI: move energy from dirtiest to cleanest.
        let mut order: Vec<usize> = (0..steps_per_day).collect();
        order.sort_by(|&a, &b| day_ci[a].partial_cmp(&day_ci[b]).expect("NaN CI"));

        let mut movable: f64 = day_load.iter().sum::<f64>() * flexible_fraction;
        let (mut take_idx, mut give_idx) = (steps_per_day, 0usize);
        while movable > 1e-9 && give_idx < steps_per_day && take_idx > 0 {
            let clean = order[give_idx];
            let room = cap - day_load[clean];
            if room <= 1e-9 {
                give_idx += 1;
                continue;
            }
            let dirty = order[take_idx - 1];
            if dirty == clean || day_ci[dirty] <= day_ci[clean] {
                break;
            }
            let available = day_load[dirty];
            if available <= 1e-9 {
                take_idx -= 1;
                continue;
            }
            let moved = room.min(available).min(movable);
            day_load[dirty] -= moved;
            day_load[clean] += moved;
            movable -= moved;
            if (cap - day_load[clean]) <= 1e-9 {
                give_idx += 1;
            }
            if day_load[dirty] <= 1e-9 {
                take_idx -= 1;
            }
        }
    }
    TimeSeries::new(load_kw.step(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::SimDuration;

    #[test]
    fn self_consumption_passes_through() {
        let p = DispatchPolicy::SelfConsumption;
        assert_eq!(p.storage_request(Power::from_kw(5.0), 0.5, 300.0).kw(), 5.0);
        assert_eq!(
            p.storage_request(Power::from_kw(-5.0), 0.5, 300.0).kw(),
            -5.0
        );
        assert!(!p.is_islanded());
    }

    #[test]
    fn islanded_flag() {
        assert!(DispatchPolicy::Islanded.is_islanded());
        assert_eq!(DispatchPolicy::Islanded.name(), "islanded");
    }

    #[test]
    fn carbon_aware_charges_on_clean_grid() {
        let p = DispatchPolicy::CarbonAwareGridCharge {
            ci_threshold_g_per_kwh: 100.0,
            target_soc: 0.9,
        };
        // Clean grid, battery not full: huge charge request.
        let req = p.storage_request(Power::from_kw(-50.0), 0.5, 80.0);
        assert!(req.kw() > 1e9);
        // Dirty grid: plain self-consumption.
        assert_eq!(
            p.storage_request(Power::from_kw(-50.0), 0.5, 300.0).kw(),
            -50.0
        );
        // Battery above target: plain self-consumption even when clean.
        assert_eq!(
            p.storage_request(Power::from_kw(-50.0), 0.95, 80.0).kw(),
            -50.0
        );
    }

    #[test]
    fn battery_sparing_ignores_small_deficits() {
        let p = DispatchPolicy::BatterySparing {
            deficit_threshold_kw: 100.0,
        };
        assert_eq!(
            p.storage_request(Power::from_kw(-50.0), 0.5, 0.0),
            Power::ZERO
        );
        assert_eq!(
            p.storage_request(Power::from_kw(-150.0), 0.5, 0.0).kw(),
            -150.0
        );
        // Surplus charging unaffected.
        assert_eq!(p.storage_request(Power::from_kw(30.0), 0.5, 0.0).kw(), 30.0);
    }

    fn two_day_series(vals_day: Vec<f64>) -> TimeSeries {
        let mut v = vals_day.clone();
        v.extend_from_slice(&vals_day);
        // pad to 24h days at hourly step
        TimeSeries::new(SimDuration::from_hours(1.0), v)
    }

    #[test]
    fn shifting_preserves_daily_energy() {
        let load = two_day_series((0..24).map(|_| 100.0).collect());
        let ci = two_day_series((0..24).map(|h| 200.0 + 10.0 * h as f64).collect());
        let shifted = shift_load_carbon_aware(&load, &ci, 0.2, 1.5);
        for d in 0..2 {
            let before: f64 = load.day_slice(d).iter().sum();
            let after: f64 = shifted.day_slice(d).iter().sum();
            assert!(
                (before - after).abs() < 1e-6,
                "day {d}: {before} vs {after}"
            );
        }
    }

    #[test]
    fn shifting_moves_energy_to_clean_hours() {
        let load = two_day_series(vec![100.0; 24]);
        // Hours 0-5 clean, 18-23 dirty.
        let ci = two_day_series(
            (0..24)
                .map(|h| {
                    if h < 6 {
                        50.0
                    } else if h >= 18 {
                        500.0
                    } else {
                        250.0
                    }
                })
                .collect(),
        );
        let shifted = shift_load_carbon_aware(&load, &ci, 0.25, 1.5);
        let day = shifted.day_slice(0);
        let clean: f64 = day[0..6].iter().sum();
        let dirty: f64 = day[18..24].iter().sum();
        assert!(clean > 600.0, "clean hours grew: {clean}");
        assert!(dirty < 600.0, "dirty hours shrank: {dirty}");
        // Headroom respected.
        for &v in day {
            assert!(v <= 150.0 + 1e-9);
        }
    }

    #[test]
    fn zero_flexibility_is_identity() {
        let load = two_day_series((0..24).map(|h| 80.0 + h as f64).collect());
        let ci = two_day_series((0..24).map(|h| 400.0 - h as f64).collect());
        let shifted = shift_load_carbon_aware(&load, &ci, 0.0, 2.0);
        assert_eq!(shifted, load);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn bad_headroom_panics() {
        let load = two_day_series(vec![1.0; 24]);
        shift_load_carbon_aware(&load, &load, 0.1, 0.5);
    }

    #[test]
    fn shifted_emissions_never_higher() {
        // Emissions under the same CI must not increase after shifting.
        let load = two_day_series((0..24).map(|h| 100.0 + 5.0 * h as f64).collect());
        let ci = two_day_series(
            (0..24)
                .map(|h| 150.0 + 15.0 * ((h + 6) % 24) as f64)
                .collect(),
        );
        let shifted = shift_load_carbon_aware(&load, &ci, 0.3, 2.0);
        let emis = |l: &TimeSeries| -> f64 {
            l.values()
                .iter()
                .zip(ci.values())
                .map(|(&p, &c)| p * c)
                .sum()
        };
        assert!(emis(&shifted) <= emis(&load) + 1e-6);
    }
}

//! Diagnostics: rule identities, findings, the unsafe inventory, and the
//! human / `--json` renderers (hand-rolled JSON — this crate has no
//! dependencies).

use std::fmt;

/// The rule registry. Every diagnostic carries exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: no wall-clock, ambient RNG, or hash-order nondeterminism in
    /// engine crates.
    Determinism,
    /// R2: no `unwrap`/`expect`/`panic!`-class macros or direct
    /// indexing/slicing in wire parsing and server connection handling.
    PanicFree,
    /// R3: every `MGOPT_*` env var read anywhere is documented in the
    /// bench env-var table, and vice versa.
    EnvRegistry,
    /// R4: wire error codes appear in the golden rejection fixtures and
    /// the wire spec; emitted telemetry events match the
    /// `trace_report --check` schema.
    SchemaDrift,
    /// R5: every `unsafe` needs a `// SAFETY:` comment.
    UnsafeSafety,
    /// Meta-rule: a `mgopt-lint: allow(...)` without a justification, or
    /// naming an unknown rule. Not itself suppressible.
    Suppression,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 6] = [
        Rule::Determinism,
        Rule::PanicFree,
        Rule::EnvRegistry,
        Rule::SchemaDrift,
        Rule::UnsafeSafety,
        Rule::Suppression,
    ];

    /// The stable id used in diagnostics and `allow(...)` comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicFree => "panic_free",
            Rule::EnvRegistry => "env_registry",
            Rule::SchemaDrift => "schema_drift",
            Rule::UnsafeSafety => "unsafe_safety",
            Rule::Suppression => "suppression",
        }
    }

    /// Parse an `allow(...)` rule id.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic: rule, location, message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (`/`-separated).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable detail.
    pub message: String,
}

/// One `unsafe` occurrence, for the machine-readable inventory.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Whether a `SAFETY:` comment covers it (same line or just above).
    pub has_safety_comment: bool,
}

/// A complete lint run: findings (suppressed ones removed) plus the
/// unsafe inventory and scan stats.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every `unsafe` keyword in scanned code, suppressed or not.
    pub unsafe_inventory: Vec<UnsafeSite>,
    /// Findings silenced by a justified `allow(...)`.
    pub suppressed: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when the run found no violations.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings for one rule.
    pub fn by_rule(&self, rule: Rule) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.rule == rule)
    }

    /// Human-readable rendering, one `file:line: rule: message` per
    /// finding, plus inventory and summary lines.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: {}: {}\n",
                f.file,
                f.line,
                f.rule.id(),
                f.message
            ));
        }
        if !self.unsafe_inventory.is_empty() {
            out.push_str("unsafe inventory:\n");
            for u in &self.unsafe_inventory {
                out.push_str(&format!(
                    "  {}:{} (SAFETY comment: {})\n",
                    u.file,
                    u.line,
                    if u.has_safety_comment {
                        "yes"
                    } else {
                        "MISSING"
                    }
                ));
            }
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} violation(s), {} suppressed, {} unsafe site(s)\n",
            self.files_scanned,
            self.findings.len(),
            self.suppressed,
            self.unsafe_inventory.len()
        ));
        out
    }

    /// Machine-readable rendering (one JSON object; stable field order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"violations\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
                json_str(f.rule.id()),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
        }
        out.push_str("],\"unsafe_inventory\":[");
        for (i, u) in self.unsafe_inventory.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":{},\"line\":{},\"has_safety_comment\":{}}}",
                json_str(&u.file),
                u.line,
                u.has_safety_comment
            ));
        }
        out.push_str(&format!(
            "],\"files_scanned\":{},\"suppressed\":{},\"clean\":{}}}",
            self.files_scanned,
            self.suppressed,
            self.is_clean()
        ));
        out
    }
}

/// Escape a string as a JSON literal (quotes included).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
        }
        assert_eq!(Rule::from_id("bogus"), None);
    }

    #[test]
    fn json_rendering_escapes_and_reports() {
        let report = Report {
            findings: vec![Finding {
                file: "a.rs".into(),
                line: 3,
                rule: Rule::PanicFree,
                message: "`.unwrap()` with \"quotes\"".into(),
            }],
            unsafe_inventory: vec![UnsafeSite {
                file: "b.rs".into(),
                line: 9,
                has_safety_comment: false,
            }],
            suppressed: 1,
            files_scanned: 2,
        };
        let json = report.render_json();
        assert!(json.contains(r#""rule":"panic_free""#));
        assert!(json.contains(r#"\"quotes\""#));
        assert!(json.contains(r#""has_safety_comment":false"#));
        assert!(json.contains(r#""clean":false"#));
        let human = report.render_human();
        assert!(human.contains("a.rs:3: panic_free:"));
        assert!(human.contains("SAFETY comment: MISSING"));
    }
}

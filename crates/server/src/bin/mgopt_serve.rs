//! The optimization daemon binary.
//!
//! Serves the newline-delimited JSON study protocol (see the
//! `mgopt_server` crate docs) over stdin/stdout by default, or over TCP
//! when `MGOPT_SERVER_ADDR` is set (e.g. `127.0.0.1:7878`; port `0` picks
//! a free port, printed on stderr as `listening on <addr>`). TCP
//! connections are served concurrently, up to `MGOPT_ACCEPTORS` at once.
//! Tuning knobs: `MGOPT_ACCEPTORS`, `MGOPT_SERVER_CONCURRENCY` (the
//! process-wide in-flight study cap), `MGOPT_SERVER_CACHE`,
//! `MGOPT_SERVER_MAX_FRAME`; set `MGOPT_TRACE=<path>` for the per-study
//! JSONL audit log.
//!
//! Exits 0 after a clean `Shutdown` (or client EOF in stdio mode).

use std::net::TcpListener;
use std::process::exit;

use mgopt_server::{Server, ServerConfig};

fn usage_exit(msg: &str) -> ! {
    eprintln!("mgopt_serve: {msg}");
    eprintln!(
        "usage: mgopt_serve  (env: MGOPT_SERVER_ADDR=<host:port> for TCP, \
         MGOPT_ACCEPTORS=<n>, MGOPT_SERVER_CONCURRENCY=<n>, \
         MGOPT_SERVER_CACHE=<n>, MGOPT_SERVER_MAX_FRAME=<bytes>, \
         MGOPT_TRACE=<path>)"
    );
    exit(2)
}

fn main() {
    let config = match ServerConfig::from_env() {
        Ok(c) => c,
        Err(msg) => usage_exit(&msg),
    };
    let server = Server::new(config);
    match std::env::var("MGOPT_SERVER_ADDR") {
        Ok(addr) if !addr.is_empty() => {
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => usage_exit(&format!("MGOPT_SERVER_ADDR={addr}: {e}")),
            };
            match listener.local_addr() {
                Ok(local) => eprintln!("mgopt_serve: listening on {local}"),
                Err(e) => usage_exit(&format!("MGOPT_SERVER_ADDR={addr}: {e}")),
            }
            if let Err(e) = server.serve_tcp(listener) {
                eprintln!("mgopt_serve: accept loop failed: {e}");
                exit(1);
            }
        }
        _ => {
            if let Err(e) = server.serve_connection(std::io::stdin(), std::io::stdout()) {
                eprintln!("mgopt_serve: connection failed: {e}");
                exit(1);
            }
        }
    }
}

//! Multi-objective optimization: explore the composition space with
//! NSGA-II (the paper's Optuna setup) and extract decision-ready
//! candidates from the Pareto front.
//!
//! Uses a reduced 6x6x4 space so the example finishes in seconds; switch
//! to `CompositionSpace::paper()` for the full 1,089-point study.
//!
//! ```bash
//! cargo run --release --example optimize_composition
//! ```

use microgrid_opt::optimizer::extract::{
    best_under_budgets, greedy_diversity, kmeans_representatives,
};
use microgrid_opt::prelude::*;

fn main() {
    let scenario = ScenarioConfig {
        space: CompositionSpace {
            wind_choices: (0..=5).collect(),
            solar_choices_kw: (0..=5).map(|i| i as f64 * 8_000.0).collect(),
            battery_choices_kwh: (0..=3).map(|i| i as f64 * 15_000.0).collect(),
        },
        ..ScenarioConfig::paper_berkeley()
    }
    .prepare();

    let problem = CompositionProblem::new(&scenario, ObjectiveSet::paper());
    println!(
        "searching {} compositions at {} with NSGA-II (pop 24, 120 trials)…",
        problem.space().len(),
        scenario.site_name()
    );

    let study = Study::new(Sampler::Nsga2(Nsga2Config {
        population_size: 24,
        max_trials: 120,
        seed: 42,
        ..Nsga2Config::default()
    }));
    let result = study.optimize(&problem);
    let mut front = result.pareto_front();
    front.sort_by(|a, b| a.objectives[1].partial_cmp(&b.objectives[1]).unwrap());

    println!(
        "sampled {} trials ({} unique simulations, {:.2}s wall)",
        result.sampled_trials, result.unique_evaluations, result.wall_seconds
    );
    println!("\nPareto front (operational tCO2/day vs embodied tCO2):");
    for t in &front {
        let comp = problem.composition(&t.genome);
        println!(
            "  {:<32} operational {:>6.2}  embodied {:>7.0}",
            format!("{comp}"),
            t.objectives[0],
            t.objectives[1]
        );
    }

    // Candidate extraction, all three strategies from the paper (§3.3).
    println!("\nbest under embodied budgets (threshold extraction):");
    for (budget, pick) in [5_000.0, 10_000.0, 15_000.0].iter().zip(best_under_budgets(
        &front,
        &[5_000.0, 10_000.0, 15_000.0],
        1,
        0,
    )) {
        match pick {
            Some(t) => println!(
                "  <= {:>6.0} t: {} at {:.2} tCO2/day",
                budget,
                problem.composition(&t.genome),
                t.objectives[0]
            ),
            None => println!("  <= {budget:>6.0} t: no feasible composition"),
        }
    }

    println!("\nk-means representatives (k = 4):");
    for t in kmeans_representatives(&front, 4, 7) {
        println!(
            "  {} -> ({:.2} t/day, {:.0} t)",
            problem.composition(&t.genome),
            t.objectives[0],
            t.objectives[1]
        );
    }

    println!("\ngreedy max-min diversity picks (k = 4):");
    for t in greedy_diversity(&front, 4) {
        println!(
            "  {} -> ({:.2} t/day, {:.0} t)",
            problem.composition(&t.genome),
            t.objectives[0],
            t.objectives[1]
        );
    }
}

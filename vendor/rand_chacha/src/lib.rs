//! Workspace-local stand-in for the `rand_chacha` crate.
//!
//! Implements the ChaCha stream cipher core (Bernstein 2008) as a
//! deterministic random generator. The state layout, round structure and
//! word emission order match upstream `rand_chacha`: 16-word state of
//! [constants, key×8, counter×2, stream×2], blocks emitted word-by-word in
//! order, 64-bit little-endian block counter, zero stream id by default.

pub use rand_core;
use rand_core::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

macro_rules! chacha_rng {
    ($(#[$meta:meta])* $name:ident, $rounds:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            stream: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CONSTANTS);
                state[4..12].copy_from_slice(&self.key);
                state[12] = self.counter as u32;
                state[13] = (self.counter >> 32) as u32;
                state[14] = self.stream as u32;
                state[15] = (self.stream >> 32) as u32;
                let mut working = state;
                for _ in 0..($rounds / 2) {
                    quarter_round(&mut working, 0, 4, 8, 12);
                    quarter_round(&mut working, 1, 5, 9, 13);
                    quarter_round(&mut working, 2, 6, 10, 14);
                    quarter_round(&mut working, 3, 7, 11, 15);
                    quarter_round(&mut working, 0, 5, 10, 15);
                    quarter_round(&mut working, 1, 6, 11, 12);
                    quarter_round(&mut working, 2, 7, 8, 13);
                    quarter_round(&mut working, 3, 4, 9, 14);
                }
                for i in 0..16 {
                    self.buffer[i] = working[i].wrapping_add(state[i]);
                }
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut key = [0u32; 8];
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                Self {
                    key,
                    counter: 0,
                    stream: 0,
                    buffer: [0u32; 16],
                    index: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let w = self.buffer[self.index];
                self.index += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds.
    ChaCha8Rng,
    8
);
chacha_rng!(
    /// ChaCha with 12 rounds (the workspace's default generator).
    ChaCha12Rng,
    12
);
chacha_rng!(
    /// ChaCha with 20 rounds.
    ChaCha20Rng,
    20
);

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_matches_rfc7539_first_block() {
        // RFC 7539 §2.3.2 test vector: key 00..1f, but with nonce/counter 0
        // we cannot reuse the RFC block directly; instead check the core
        // permutation is non-degenerate and deterministic.
        let mut a = ChaCha20Rng::from_seed([7u8; 32]);
        let mut b = ChaCha20Rng::from_seed([7u8; 32]);
        let xs: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() > 60, "stream looks degenerate");
    }

    #[test]
    fn zero_key_chacha20_known_answer() {
        // ChaCha20, all-zero key, zero counter/nonce: first output word of
        // the keystream is 0xade0b876 (djb reference / RFC 8439 appendix).
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0xade0_b876);
    }

    #[test]
    fn seeded_streams_differ_across_seeds_and_rounds() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(43);
        let mut c = ChaCha8Rng::seed_from_u64(42);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}

//! Multi-site fleet scenarios and sweeps — the geo-distributed analogue of
//! [`sweep_all`](crate::sweep_all).
//!
//! A [`FleetScenario`] names several [`ScenarioConfig`]s and prepares them
//! into one [`PreparedFleet`] whose member sites share a simulation clock.
//! [`fleet_sweep`] then scores a cohort of **fleet plans** (one composition
//! per site) through the interleaved
//! [`FleetEvaluator`], producing per-site
//! results bit-identical to single-site sweeps plus fleet aggregates
//! (fleet tCO2/day, peak concurrent grid import) that only a synchronized
//! walk can report.
//!
//! ## Search layers
//!
//! [`fleet_sweep`] is the *exhaustive* layer (ground truth; exponential in
//! the number of sites under [`FleetAssignment::CrossProduct`]). For
//! searching the cross-product plan space directly, wrap the prepared
//! fleet in a [`FleetProblem`](crate::problem::FleetProblem): one genome
//! dimension per member, NSGA-II / random / exhaustive samplers all route
//! their cohorts through the same interleaved engine, and a peak
//! concurrent-import cap becomes a first-class constraint
//! (`examples/fleet_search.rs` walks the whole stack).

use std::sync::Arc;

use mgopt_microgrid::{Composition, FleetEvaluator, FleetResult, FleetSite};
use serde::{Deserialize, Serialize};

use crate::cache::PreparedCache;
use crate::scenario::{PreparedScenario, ScenarioConfig};

/// One named member of a fleet scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMember {
    /// Display name ("houston").
    pub name: String,
    /// The member's full scenario configuration.
    pub scenario: ScenarioConfig,
}

/// A serializable multi-site scenario: several sites, one fleet account.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScenario {
    /// Member sites in evaluation order.
    pub members: Vec<FleetMember>,
}

impl FleetScenario {
    /// The paper's two case-study sites as one fleet (Houston + Berkeley,
    /// identical workload statistics, shared seed).
    pub fn paper() -> Self {
        Self {
            members: vec![
                FleetMember {
                    name: "houston".into(),
                    scenario: ScenarioConfig::paper_houston(),
                },
                FleetMember {
                    name: "berkeley".into(),
                    scenario: ScenarioConfig::paper_berkeley(),
                },
            ],
        }
    }

    /// Synthesize every member's inputs (expensive; do once).
    ///
    /// # Panics
    /// Panics when members disagree on the simulation step — the fleet
    /// advances on a single clock.
    pub fn prepare(&self) -> PreparedFleet {
        self.check_shared_clock();
        PreparedFleet {
            names: self.members.iter().map(|m| m.name.clone()).collect(),
            members: self
                .members
                .iter()
                .map(|m| Arc::new(m.scenario.prepare()))
                .collect(),
        }
    }

    /// Like [`prepare`](Self::prepare), but member scenarios come from (and
    /// land in) a shared [`PreparedCache`] — repeated studies over the same
    /// sites skip synthesis entirely. Returns the fleet plus the per-member
    /// cache [`PrepStats`] for this call.
    ///
    /// # Panics
    /// Panics exactly when [`prepare`](Self::prepare) would (empty fleet,
    /// step mismatch).
    pub fn prepare_shared(&self, cache: &PreparedCache) -> (PreparedFleet, PrepStats) {
        self.check_shared_clock();
        let mut stats = PrepStats::default();
        let members = self
            .members
            .iter()
            .map(|m| {
                let (prepared, hit) = cache.get_or_prepare(&m.scenario);
                if hit {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                }
                prepared
            })
            .collect();
        (
            PreparedFleet {
                names: self.members.iter().map(|m| m.name.clone()).collect(),
                members,
            },
            stats,
        )
    }

    fn check_shared_clock(&self) {
        assert!(!self.members.is_empty(), "fleet scenario has no members");
        let step = self.members[0].scenario.step_minutes;
        for m in &self.members {
            assert_eq!(
                m.scenario.step_minutes, step,
                "member {}: step mismatch",
                m.name
            );
        }
    }
}

/// Prepared-cache outcome of one [`FleetScenario::prepare_shared`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrepStats {
    /// Members served from the cache.
    pub hits: u32,
    /// Members synthesized from scratch.
    pub misses: u32,
}

/// A fleet scenario with all member inputs synthesized.
///
/// Members are [`Arc`]-shared: cloning a `PreparedFleet` (or building
/// several fleets from one [`PreparedCache`]) shares the heavyweight site
/// arrays instead of copying them, and evaluation only ever takes `&self`,
/// so any number of concurrent studies can run over one prepared fleet.
#[derive(Debug, Clone)]
pub struct PreparedFleet {
    /// Member names, in evaluation order.
    pub names: Vec<String>,
    /// Prepared member scenarios, in evaluation order (shared, read-only).
    pub members: Vec<Arc<PreparedScenario>>,
}

impl PreparedFleet {
    /// Number of member sites.
    pub fn n_sites(&self) -> usize {
        self.members.len()
    }

    /// The interleaved multi-site engine over this fleet's inputs.
    pub fn evaluator(&self) -> FleetEvaluator<'_> {
        FleetEvaluator::new(
            self.names
                .iter()
                .zip(&self.members)
                .map(|(name, m)| FleetSite {
                    name,
                    data: &m.data,
                    load: &m.load,
                    cfg: &m.config.sim,
                })
                .collect(),
        )
    }
}

/// How fleet plans are drawn from the members' composition spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetAssignment {
    /// Every site gets the *same* composition, iterating one shared space
    /// (all members must agree on it): `space.len()` plans. The fleet
    /// analogue of the paper's single-site sweep.
    Uniform,
    /// Every combination of per-site compositions (cross product of member
    /// spaces): `∏ space.len()` plans. Exhaustive but exponential in the
    /// number of sites — use reduced or
    /// [`dense`](mgopt_microgrid::CompositionSpace::dense)-stepped spaces.
    CrossProduct,
}

/// Materialize the plan cohort for an assignment mode.
///
/// # Panics
/// Panics for [`FleetAssignment::Uniform`] when members disagree on the
/// composition space.
pub fn fleet_plans(fleet: &PreparedFleet, assignment: FleetAssignment) -> Vec<Vec<Composition>> {
    let n_sites = fleet.n_sites();
    match assignment {
        FleetAssignment::Uniform => {
            let space = &fleet.members[0].config.space;
            for (name, m) in fleet.names.iter().zip(&fleet.members) {
                assert_eq!(
                    &m.config.space, space,
                    "member {name}: uniform assignment needs one shared space"
                );
            }
            space.iter().map(|c| vec![c; n_sites]).collect()
        }
        FleetAssignment::CrossProduct => {
            let mut plans: Vec<Vec<Composition>> = vec![Vec::new()];
            for m in &fleet.members {
                let mut next = Vec::with_capacity(plans.len() * m.config.space.len());
                for plan in &plans {
                    for c in m.config.space.iter() {
                        let mut p = plan.clone();
                        p.push(c);
                        next.push(p);
                    }
                }
                plans = next;
            }
            plans
        }
    }
}

/// Evaluate every plan of the assignment through the interleaved fleet
/// engine. Results are returned in plan order (for
/// [`FleetAssignment::Uniform`], the shared space's index order).
pub fn fleet_sweep(fleet: &PreparedFleet, assignment: FleetAssignment) -> Vec<FleetResult> {
    let plans = fleet_plans(fleet, assignment);
    fleet.evaluator().evaluate_plans(&plans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep_all;
    use mgopt_microgrid::CompositionSpace;

    fn tiny_fleet() -> FleetScenario {
        let mut f = FleetScenario::paper();
        for m in &mut f.members {
            m.scenario.space = CompositionSpace::tiny();
        }
        f
    }

    /// Compile-time pin of the daemon's re-entrancy contract: prepared
    /// sites and fleets must be shareable across study worker threads.
    #[test]
    fn prepared_types_are_send_and_sync() {
        fn sharable<T: Send + Sync>() {}
        sharable::<PreparedScenario>();
        sharable::<Arc<PreparedScenario>>();
        sharable::<PreparedFleet>();
        sharable::<crate::cache::PreparedCache>();
    }

    #[test]
    fn uniform_sweep_matches_single_site_sweeps() {
        let fleet = tiny_fleet().prepare();
        let results = fleet_sweep(&fleet, FleetAssignment::Uniform);
        assert_eq!(results.len(), 27);
        for (s, member) in fleet.members.iter().enumerate() {
            let single = sweep_all(member);
            for (r, x) in results.iter().zip(&single) {
                assert_eq!(
                    r.per_site[s].metrics, x.metrics,
                    "site {} diverges from sweep_all",
                    fleet.names[s]
                );
            }
        }
    }

    #[test]
    fn cross_product_covers_all_combinations() {
        let mut f = tiny_fleet();
        // Shrink further: 2 points per site -> 4 plans.
        for m in &mut f.members {
            m.scenario.space = CompositionSpace {
                wind_choices: vec![0, 4],
                solar_choices_kw: vec![0.0],
                battery_choices_kwh: vec![0.0],
            };
        }
        let fleet = f.prepare();
        let plans = fleet_plans(&fleet, FleetAssignment::CrossProduct);
        assert_eq!(plans.len(), 4);
        // Member 0 is the outer dimension.
        assert_eq!(plans[0][0].wind_turbines, 0);
        assert_eq!(plans[0][1].wind_turbines, 0);
        assert_eq!(plans[1][1].wind_turbines, 4);
        assert_eq!(plans[2][0].wind_turbines, 4);
        let results = fleet_sweep(&fleet, FleetAssignment::CrossProduct);
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn paper_fleet_prepares_with_shared_clock() {
        let fleet = tiny_fleet().prepare();
        assert_eq!(fleet.n_sites(), 2);
        assert_eq!(fleet.names, vec!["houston", "berkeley"]);
        let ev = fleet.evaluator();
        assert_eq!(ev.n_sites(), 2);
        assert_eq!(ev.len(), 8_760);
    }

    #[test]
    fn serde_round_trip() {
        let f = FleetScenario::paper();
        let json = serde_json::to_string(&f).unwrap();
        let back: FleetScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
        assert!(json.contains("houston"));
    }

    #[test]
    #[should_panic(expected = "no members")]
    fn empty_fleet_scenario_panics() {
        FleetScenario { members: vec![] }.prepare();
    }
}

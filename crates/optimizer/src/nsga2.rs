//! NSGA-II (Deb, Pratap, Agarwal, Meyarivan 2002) over discrete spaces —
//! the sampler Optuna uses for the paper's multi-objective study (350
//! trials, population 50).
//!
//! Implementation notes:
//! * **Memoization.** The composition space is small (1,089 points) while a
//!   genetic run samples 350+ genomes with repeats; duplicate genomes are
//!   evaluated once and both *sampled* and *unique* counts are reported —
//!   speedups in §4.4 are computed from unique evaluations.
//! * **Parallelism.** Each generation's unseen genomes are evaluated with
//!   rayon (`par_iter`), mirroring the paper's Hydra/Optuna
//!   parallelization across cores.
//! * **Determinism.** All stochastic choices flow from a seeded ChaCha12
//!   stream; parallel evaluation only computes pure functions, so results
//!   are reproducible regardless of thread scheduling.
//! * **Constraints.** Problems with [`Problem::n_constraints`] > 0 are
//!   handled by Deb's constraint-dominance: ranking, tournament and
//!   environmental selection all use
//!   [`constrained_non_dominated_sort`], so any feasible point outranks
//!   every infeasible one and infeasible points are layered by total
//!   violation. Unconstrained problems see the exact original behavior.

// mgopt-lint: allow(determinism) — memo cache is keyed get/insert/extend only, never iterated
use std::collections::HashMap;

use mgopt_telemetry::{self as telemetry, Counter};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::pareto::{constrained_non_dominated_sort, crowding_distance, hypervolume_2d};
use crate::problem::{Evaluation, Genome, Problem, Trial};
use crate::study::OptimizationResult;

/// NSGA-II configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nsga2Config {
    /// Population size (the paper uses 50).
    pub population_size: usize,
    /// Total sampled trials budget, duplicates included (the paper: 350).
    pub max_trials: usize,
    /// Per-genome uniform-crossover probability.
    pub crossover_prob: f64,
    /// Per-gene mutation probability; `None` = `1/n_dims`.
    pub mutation_prob: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Self {
            population_size: 50,
            max_trials: 350,
            crossover_prob: 0.9,
            mutation_prob: None,
            seed: 0,
        }
    }
}

/// One generation's snapshot, handed to a [`Nsga2Optimizer::run_observed`]
/// observer after environmental selection (and once for the evaluated
/// initial population, `generation == 0`).
///
/// `front` is the population's current first front under
/// constraint-dominance, deduplicated by genome, in population order —
/// what a streaming client would want to render incrementally.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationView {
    /// Generation index (0 = initial population).
    pub generation: u64,
    /// Trials sampled so far (duplicates included).
    pub sampled: usize,
    /// The current first front: `(genome, evaluation)` pairs.
    pub front: Vec<(Genome, Evaluation)>,
}

/// Verdict returned by a [`Nsga2Optimizer::run_controlled`] observer
/// after each generation: keep searching, or stop cooperatively at this
/// generation boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchControl {
    /// Keep running.
    Continue,
    /// Stop after this generation; the result covers the completed
    /// generations only (its history is a prefix of the uncancelled
    /// run's history).
    Stop,
}

/// The NSGA-II optimizer.
#[derive(Debug, Clone)]
pub struct Nsga2Optimizer {
    config: Nsga2Config,
}

impl Nsga2Optimizer {
    /// Create an optimizer.
    ///
    /// # Panics
    /// Panics on a zero population or a budget smaller than one population.
    pub fn new(config: Nsga2Config) -> Self {
        assert!(
            config.population_size >= 2,
            "population must hold at least 2"
        );
        assert!(
            config.max_trials >= config.population_size,
            "budget must cover the initial population"
        );
        assert!((0.0..=1.0).contains(&config.crossover_prob));
        Self { config }
    }

    /// Run the optimization.
    pub fn run(&self, problem: &dyn Problem) -> OptimizationResult {
        self.run_inner(problem, None)
    }

    /// Run the optimization, calling `observer` once per generation with
    /// the current first front — the hook streaming clients (the
    /// optimization daemon) use for incremental front updates.
    ///
    /// The observer is outside the search's decision path: `run_observed`
    /// with any observer and [`run`](Self::run) produce bit-identical
    /// results for the same problem and seed.
    pub fn run_observed(
        &self,
        problem: &dyn Problem,
        observer: &mut dyn FnMut(GenerationView),
    ) -> OptimizationResult {
        self.run_inner(
            problem,
            Some(&mut |view| {
                observer(view);
                SearchControl::Continue
            }),
        )
    }

    /// Like [`run_observed`](Self::run_observed), but the observer's
    /// return value can stop the search cooperatively at the current
    /// generation boundary ([`SearchControl::Stop`]) — the hook the
    /// optimization daemon uses for study cancellation.
    ///
    /// Completed generations are unaffected by the control channel: up to
    /// the stopping point, the sampled history is bit-identical to the
    /// same seed's uncancelled run.
    pub fn run_controlled(
        &self,
        problem: &dyn Problem,
        observer: &mut dyn FnMut(GenerationView) -> SearchControl,
    ) -> OptimizationResult {
        self.run_inner(problem, Some(observer))
    }

    fn run_inner(
        &self,
        problem: &dyn Problem,
        mut observer: Option<&mut dyn FnMut(GenerationView) -> SearchControl>,
    ) -> OptimizationResult {
        let cfg = &self.config;
        let dims = problem.dims().to_vec();
        let mutation_prob = cfg
            .mutation_prob
            .unwrap_or(1.0 / dims.len() as f64)
            .clamp(0.0, 1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed ^ 0x4e59_a211);

        // mgopt-lint: allow(determinism) — memo cache is keyed get/insert/extend only, never iterated
        let mut cache: HashMap<Genome, Evaluation> = HashMap::new();
        let mut history: Vec<Trial> = Vec::new();
        let mut sampled = 0usize;
        let mut cache_hits = 0usize;
        let mut cache_misses = 0usize;

        // Initial population: unique random genomes where possible.
        let mut population: Vec<Genome> = Vec::with_capacity(cfg.population_size);
        let mut guard = 0;
        while population.len() < cfg.population_size {
            let g = random_genome(&dims, &mut rng);
            guard += 1;
            if guard < 20 * cfg.population_size && population.contains(&g) {
                continue;
            }
            population.push(g);
        }
        sampled += population.len();
        let (hits, misses) = evaluate_batch(problem, &population, &mut cache, &mut history);
        cache_hits += hits;
        cache_misses += misses;

        // Fix the hypervolume reference point from the initial population
        // (worst per objective, padded) so per-generation `hv` values in
        // the trace are comparable across the whole run. 2-objective only
        // (the workspace's `hypervolume_2d` metric); computed only when a
        // trace is being collected.
        let hv_ref: Option<[f64; 2]> =
            (telemetry::enabled() && problem.n_objectives() == 2).then(|| {
                let mut r = [f64::NEG_INFINITY; 2];
                for g in &population {
                    let o = &cache[g].objectives;
                    r[0] = r[0].max(o[0]);
                    r[1] = r[1].max(o[1]);
                }
                [pad_reference(r[0]), pad_reference(r[1])]
            });
        let mut generation = 0u64;
        emit_generation_event(generation, &population, &cache, hits, misses, hv_ref);
        let mut stopped = false;
        if let Some(obs) = observer.as_deref_mut() {
            stopped = obs(generation_view(generation, sampled, &population, &cache))
                == SearchControl::Stop;
        }

        while !stopped && sampled < cfg.max_trials {
            let obj: Vec<Vec<f64>> = population
                .iter()
                .map(|g| cache[g].objectives.clone())
                .collect();
            let viol: Vec<f64> = population
                .iter()
                .map(|g| cache[g].total_violation())
                .collect();
            let fronts = constrained_non_dominated_sort(&obj, &viol);
            let (rank, crowd) = rank_and_crowding(&obj, &fronts);

            // Offspring generation.
            let n_children = cfg.population_size.min(cfg.max_trials - sampled).max(1);
            let mut children: Vec<Genome> = Vec::with_capacity(n_children);
            while children.len() < n_children {
                let a = tournament(&population, &rank, &crowd, &mut rng);
                let b = tournament(&population, &rank, &crowd, &mut rng);
                let (mut c1, mut c2) = if rng.gen::<f64>() < cfg.crossover_prob {
                    uniform_crossover(&population[a], &population[b], &mut rng)
                } else {
                    (population[a].clone(), population[b].clone())
                };
                mutate(&mut c1, &dims, mutation_prob, &mut rng);
                mutate(&mut c2, &dims, mutation_prob, &mut rng);
                children.push(c1);
                if children.len() < n_children {
                    children.push(c2);
                }
            }
            sampled += children.len();
            let (hits, misses) = evaluate_batch(problem, &children, &mut cache, &mut history);
            cache_hits += hits;
            cache_misses += misses;

            // Environmental selection over parents + children.
            let mut combined: Vec<Genome> = population.clone();
            combined.extend(children);
            combined.dedup_by(|a, b| a == b);
            let comb_obj: Vec<Vec<f64>> = combined
                .iter()
                .map(|g| cache[g].objectives.clone())
                .collect();
            let comb_viol: Vec<f64> = combined
                .iter()
                .map(|g| cache[g].total_violation())
                .collect();
            let comb_fronts = constrained_non_dominated_sort(&comb_obj, &comb_viol);
            population =
                select_next_population(&combined, &comb_obj, &comb_fronts, cfg.population_size);
            generation += 1;
            emit_generation_event(generation, &population, &cache, hits, misses, hv_ref);
            if let Some(obs) = observer.as_deref_mut() {
                stopped = obs(generation_view(generation, sampled, &population, &cache))
                    == SearchControl::Stop;
            }
        }

        let mut result = OptimizationResult::from_history(history, sampled, cache.len());
        result.cache_hits = cache_hits;
        result.cache_misses = cache_misses;
        result
    }
}

/// Build the observer's snapshot: the population's deduplicated first
/// front under constraint-dominance. Only runs when an observer is
/// installed (cohorts are small, so the extra sort is negligible next to
/// a generation's evaluations).
fn generation_view(
    generation: u64,
    sampled: usize,
    population: &[Genome],
    cache: &HashMap<Genome, Evaluation>,
) -> GenerationView {
    let obj: Vec<Vec<f64>> = population
        .iter()
        .map(|g| cache[g].objectives.clone())
        .collect();
    let viol: Vec<f64> = population
        .iter()
        .map(|g| cache[g].total_violation())
        .collect();
    let fronts = constrained_non_dominated_sort(&obj, &viol);
    let mut front: Vec<(Genome, Evaluation)> = Vec::new();
    if let Some(first) = fronts.first() {
        for &i in first {
            if !front.iter().any(|(g, _)| *g == population[i]) {
                front.push((population[i].clone(), cache[&population[i]].clone()));
            }
        }
    }
    GenerationView {
        generation,
        sampled,
        front,
    }
}

/// Pad one coordinate of the hypervolume reference point: 10% beyond the
/// initial population's worst value (sign-safe) plus an absolute epsilon,
/// so boundary points still contribute area.
fn pad_reference(worst: f64) -> f64 {
    worst + 0.1 * worst.abs() + 1e-9
}

/// Emit one per-generation trace event. A cheap no-op when telemetry is
/// off; when tracing, re-derives the population's feasible count and first
/// front (outside the budget-relevant path — cohort sizes are ≤ a few
/// hundred).
fn emit_generation_event(
    generation: u64,
    population: &[Genome],
    cache: &HashMap<Genome, Evaluation>,
    hits: usize,
    misses: usize,
    hv_ref: Option<[f64; 2]>,
) {
    if !telemetry::enabled() {
        return;
    }
    let obj: Vec<Vec<f64>> = population
        .iter()
        .map(|g| cache[g].objectives.clone())
        .collect();
    let viol: Vec<f64> = population
        .iter()
        .map(|g| cache[g].total_violation())
        .collect();
    let feasible = viol.iter().filter(|&&v| v <= 0.0).count();
    let fronts = constrained_non_dominated_sort(&obj, &viol);
    let mut event = telemetry::Event::new("generation")
        .u64("gen", generation)
        .u64("cohort", population.len() as u64)
        .u64("cache_hits", hits as u64)
        .u64("cache_misses", misses as u64)
        .u64("feasible", feasible as u64)
        .u64("front", fronts.first().map_or(0, Vec::len) as u64);
    if let Some(reference) = hv_ref {
        event = event.f64("hv", hypervolume_2d(&obj, &reference));
    }
    let n_obj = obj.first().map_or(0, Vec::len);
    for k in 0..n_obj {
        let best = obj.iter().map(|o| o[k]).fold(f64::INFINITY, f64::min);
        event = event.f64(&format!("best_obj{k}"), best);
    }
    event.emit();
}

/// Evaluate genomes not in the cache (one batched pass), extending the
/// history with one trial per *sampled* genome (duplicates repeat their
/// cached objectives, matching how Optuna counts trials). Returns this
/// batch's `(cache_hits, cache_misses)` — hits count genomes answered
/// from the cache or deduplicated within the batch.
fn evaluate_batch(
    problem: &dyn Problem,
    genomes: &[Genome],
    cache: &mut HashMap<Genome, Evaluation>,
    history: &mut Vec<Trial>,
) -> (usize, usize) {
    let mut unseen: Vec<Genome> = Vec::new();
    for g in genomes {
        if !cache.contains_key(g) && !unseen.contains(g) {
            unseen.push(g.clone());
        }
    }
    let misses = unseen.len();
    let hits = genomes.len() - misses;
    telemetry::add(Counter::CacheHits, hits as u64);
    telemetry::add(Counter::CacheMisses, misses as u64);
    let evaluations = problem.evaluate_batch_constrained(&unseen);
    cache.extend(unseen.into_iter().zip(evaluations));
    for g in genomes {
        history.push(Trial::from_evaluation(g.clone(), cache[g].clone()));
    }
    (hits, misses)
}

fn random_genome(dims: &[usize], rng: &mut ChaCha12Rng) -> Genome {
    dims.iter().map(|&d| rng.gen_range(0..d) as u16).collect()
}

/// Per-individual `(front rank, crowding distance)` lookup tables.
fn rank_and_crowding(obj: &[Vec<f64>], fronts: &[Vec<usize>]) -> (Vec<usize>, Vec<f64>) {
    let n = obj.len();
    let mut rank = vec![0usize; n];
    let mut crowd = vec![0.0f64; n];
    for (r, front) in fronts.iter().enumerate() {
        let d = crowding_distance(obj, front);
        for (k, &i) in front.iter().enumerate() {
            rank[i] = r;
            crowd[i] = d[k];
        }
    }
    (rank, crowd)
}

/// Binary tournament on (rank asc, crowding desc).
fn tournament(
    population: &[Genome],
    rank: &[usize],
    crowd: &[f64],
    rng: &mut ChaCha12Rng,
) -> usize {
    let i = rng.gen_range(0..population.len());
    let j = rng.gen_range(0..population.len());
    if rank[i] < rank[j] || (rank[i] == rank[j] && crowd[i] > crowd[j]) {
        i
    } else {
        j
    }
}

fn uniform_crossover(a: &Genome, b: &Genome, rng: &mut ChaCha12Rng) -> (Genome, Genome) {
    let mut c1 = a.clone();
    let mut c2 = b.clone();
    for d in 0..a.len() {
        if rng.gen::<bool>() {
            c1[d] = b[d];
            c2[d] = a[d];
        }
    }
    (c1, c2)
}

/// Mutation: mostly ±1 steps on the discrete grid (local refinement), with
/// occasional uniform resets (exploration).
fn mutate(g: &mut Genome, dims: &[usize], prob: f64, rng: &mut ChaCha12Rng) {
    for (d, gene) in g.iter_mut().enumerate() {
        if rng.gen::<f64>() >= prob {
            continue;
        }
        let n = dims[d];
        if n <= 1 {
            continue;
        }
        if rng.gen::<f64>() < 0.7 {
            // step mutation
            let step: i32 = if rng.gen::<bool>() { 1 } else { -1 };
            let v = (*gene as i32 + step).clamp(0, n as i32 - 1);
            *gene = v as u16;
        } else {
            *gene = rng.gen_range(0..n) as u16;
        }
    }
}

/// NSGA-II environmental selection: fill by fronts, break the last front by
/// crowding distance.
fn select_next_population(
    combined: &[Genome],
    obj: &[Vec<f64>],
    fronts: &[Vec<usize>],
    target: usize,
) -> Vec<Genome> {
    let mut next: Vec<Genome> = Vec::with_capacity(target);
    for front in fronts {
        if next.len() >= target {
            break;
        }
        if next.len() + front.len() <= target {
            next.extend(front.iter().map(|&i| combined[i].clone()));
        } else {
            let d = crowding_distance(obj, front);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| d[b].partial_cmp(&d[a]).expect("NaN crowding"));
            for &k in order.iter().take(target - next.len()) {
                next.push(combined[front[k]].clone());
            }
            break;
        }
    }
    // Degenerate case: fewer unique genomes than the target — pad by
    // repeating front members (keeps invariants simple).
    let mut k = 0;
    while next.len() < target && !next.is_empty() {
        next.push(next[k % next.len()].clone());
        k += 1;
    }
    next
}

/// Convenience: shuffle-based deduplicated initial sampling shared with
/// tests.
pub(crate) fn sample_unique_genomes(
    dims: &[usize],
    n: usize,
    rng: &mut ChaCha12Rng,
) -> Vec<Genome> {
    let space: usize = dims.iter().product();
    if space <= n {
        return (0..space)
            .map(|i| {
                let mut idx = i;
                let mut g = vec![0u16; dims.len()];
                for d in (0..dims.len()).rev() {
                    g[d] = (idx % dims[d]) as u16;
                    idx /= dims[d];
                }
                g
            })
            .collect();
    }
    let mut indices: Vec<usize> = (0..space).collect();
    indices.shuffle(rng);
    indices
        .into_iter()
        .take(n)
        .map(|i| {
            let mut idx = i;
            let mut g = vec![0u16; dims.len()];
            for d in (0..dims.len()).rev() {
                g[d] = (idx % dims[d]) as u16;
                idx /= dims[d];
            }
            g
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;

    /// A 2-objective test problem with a known Pareto front: minimize
    /// (g0, K - g0) subject to noise dims — front = all g0 values with
    /// minimal noise contribution.
    fn convex_problem() -> FnProblem<impl Fn(&[u16]) -> Vec<f64> + Sync> {
        FnProblem::new(vec![21, 8, 8], 2, |g| {
            let x = g[0] as f64 / 20.0;
            let penalty = (g[1] as f64 + g[2] as f64) * 0.05;
            vec![x + penalty, 1.0 - x + penalty]
        })
    }

    #[test]
    fn finds_most_of_a_simple_front() {
        let problem = convex_problem();
        let result = Nsga2Optimizer::new(Nsga2Config {
            population_size: 30,
            max_trials: 300,
            seed: 1,
            ..Nsga2Config::default()
        })
        .run(&problem);

        // True front: genomes with g1 = g2 = 0 (21 points).
        let front = result.pareto_front();
        let clean = front
            .iter()
            .filter(|t| t.genome[1] == 0 && t.genome[2] == 0)
            .count();
        assert!(
            clean as f64 / front.len() as f64 > 0.8,
            "front polluted: {clean}/{}",
            front.len()
        );
        assert!(front.len() >= 10, "front too sparse: {}", front.len());
    }

    #[test]
    fn constraint_dominance_returns_a_feasible_front() {
        // Cap g0 at 10: the unconstrained front's low-x half (g0 > 10 gives
        // the best second objective) becomes infeasible.
        let problem = convex_problem().with_constraints(1, |g| vec![(g[0] as f64 - 10.0).max(0.0)]);
        let result = Nsga2Optimizer::new(Nsga2Config {
            population_size: 30,
            max_trials: 400,
            seed: 11,
            ..Nsga2Config::default()
        })
        .run(&problem);

        let front = result.pareto_front();
        assert!(!front.is_empty());
        assert!(
            front.iter().all(|t| t.is_feasible()),
            "infeasible trial on the front: {front:?}"
        );
        assert!(front.iter().all(|t| t.genome[0] <= 10));
        // The search still spreads over the feasible part of the front.
        assert!(front.len() >= 5, "front too sparse: {}", front.len());
        // History records violations for the infeasible samples it visited.
        assert!(result.history.iter().any(|t| !t.is_feasible()));
    }

    #[test]
    fn unconstrained_behavior_is_unchanged_by_constraint_plumbing() {
        // A constraint that never fires must not perturb the search: the
        // zero-violation constrained sort is pinned to the plain sort, so
        // the sampled history must be identical genome-for-genome.
        let run = |constrained: bool| {
            let base = convex_problem();
            let p = if constrained {
                base.with_constraints(1, |_| vec![0.0])
            } else {
                base
            };
            Nsga2Optimizer::new(Nsga2Config {
                population_size: 16,
                max_trials: 96,
                seed: 5,
                ..Nsga2Config::default()
            })
            .run(&p)
            .history
            .into_iter()
            .map(|t| (t.genome, t.objectives))
            .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn respects_trial_budget() {
        let problem = convex_problem();
        let result = Nsga2Optimizer::new(Nsga2Config {
            population_size: 20,
            max_trials: 100,
            seed: 2,
            ..Nsga2Config::default()
        })
        .run(&problem);
        assert_eq!(result.sampled_trials, 100);
        assert!(result.unique_evaluations <= 100);
        assert_eq!(result.history.len(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let problem = convex_problem();
        let run = |seed| {
            Nsga2Optimizer::new(Nsga2Config {
                population_size: 16,
                max_trials: 64,
                seed,
                ..Nsga2Config::default()
            })
            .run(&problem)
            .history
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn memoization_reduces_unique_evaluations() {
        // Tiny space: duplicates guaranteed.
        let problem = FnProblem::new(vec![3, 3], 2, |g| vec![g[0] as f64, g[1] as f64]);
        let result = Nsga2Optimizer::new(Nsga2Config {
            population_size: 8,
            max_trials: 200,
            seed: 3,
            ..Nsga2Config::default()
        })
        .run(&problem);
        assert_eq!(result.sampled_trials, 200);
        assert!(result.unique_evaluations <= 9, "space only has 9 points");
    }

    #[test]
    fn cache_hit_and_miss_counts_partition_the_sampled_trials() {
        let problem = FnProblem::new(vec![3, 3], 2, |g| vec![g[0] as f64, g[1] as f64]);
        let result = Nsga2Optimizer::new(Nsga2Config {
            population_size: 8,
            max_trials: 200,
            seed: 3,
            ..Nsga2Config::default()
        })
        .run(&problem);
        assert_eq!(result.cache_hits + result.cache_misses, 200);
        assert_eq!(result.cache_misses, result.unique_evaluations);
        assert!(
            result.cache_hits > 0,
            "9-point space at 200 trials must hit"
        );
        let rate = result.cache_hit_rate().expect("cache activity recorded");
        assert!(rate > 0.9, "hit rate {rate} suspiciously low for 9 points");
    }

    #[test]
    fn improves_over_random_seeding_generations() {
        // Hypervolume of the final front should beat the initial pop's.
        let problem = convex_problem();
        let result = Nsga2Optimizer::new(Nsga2Config {
            population_size: 20,
            max_trials: 400,
            seed: 4,
            ..Nsga2Config::default()
        })
        .run(&problem);
        let initial: Vec<Vec<f64>> = result.history[..20]
            .iter()
            .map(|t| t.objectives.clone())
            .collect();
        let final_front: Vec<Vec<f64>> = result
            .pareto_front()
            .iter()
            .map(|t| t.objectives.clone())
            .collect();
        let hv0 = crate::pareto::hypervolume_2d(&initial, &[3.0, 3.0]);
        let hv1 = crate::pareto::hypervolume_2d(&final_front, &[3.0, 3.0]);
        assert!(hv1 > hv0, "no improvement: {hv1} <= {hv0}");
    }

    #[test]
    fn mutation_respects_bounds() {
        let dims = vec![5usize, 1, 3];
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        for _ in 0..500 {
            let mut g = random_genome(&dims, &mut rng);
            mutate(&mut g, &dims, 1.0, &mut rng);
            for (d, &gene) in g.iter().enumerate() {
                assert!((gene as usize) < dims[d]);
            }
        }
    }

    #[test]
    fn sample_unique_covers_small_spaces() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let got = sample_unique_genomes(&[2, 2], 10, &mut rng);
        assert_eq!(got.len(), 4);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let got = sample_unique_genomes(&[10, 10], 5, &mut rng);
        assert_eq!(got.len(), 5);
        let unique: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(unique.len(), 5);
    }

    #[test]
    fn observer_sees_every_generation_and_never_perturbs_the_search() {
        let problem = convex_problem();
        let opt = Nsga2Optimizer::new(Nsga2Config {
            population_size: 16,
            max_trials: 64,
            seed: 5,
            ..Nsga2Config::default()
        });
        let mut views: Vec<GenerationView> = Vec::new();
        let observed = opt.run_observed(&problem, &mut |v| views.push(v));
        let plain = opt.run(&problem);
        assert_eq!(observed.history, plain.history, "observer changed the run");

        // gen 0 plus one view per offspring generation, monotone sampled.
        assert_eq!(views[0].generation, 0);
        assert_eq!(views[0].sampled, 16);
        assert_eq!(views.len(), 1 + (64 - 16) / 16);
        for (k, v) in views.iter().enumerate() {
            assert_eq!(v.generation, k as u64);
            assert!(!v.front.is_empty(), "gen {k}: empty front");
            let unique: std::collections::HashSet<_> =
                v.front.iter().map(|(g, _)| g.clone()).collect();
            assert_eq!(unique.len(), v.front.len(), "gen {k}: duplicate genomes");
        }
        assert_eq!(views.last().unwrap().sampled, 64);

        // The final view's front matches the final population's front as
        // recovered from the plain result's trials.
        let last = views.last().unwrap();
        for (g, e) in &last.front {
            let t = plain
                .history
                .iter()
                .find(|t| &t.genome == g)
                .expect("front genome was sampled");
            assert_eq!(&t.objectives, &e.objectives);
        }
    }

    #[test]
    fn controlled_stop_truncates_to_a_bit_identical_prefix() {
        let problem = convex_problem();
        let opt = Nsga2Optimizer::new(Nsga2Config {
            population_size: 16,
            max_trials: 96,
            seed: 5,
            ..Nsga2Config::default()
        });
        let full = opt.run(&problem);

        // Stop after two generations (gen 0 + one offspring cohort).
        let mut seen = 0u64;
        let cancelled = opt.run_controlled(&problem, &mut |v| {
            seen = v.generation + 1;
            if v.generation >= 1 {
                SearchControl::Stop
            } else {
                SearchControl::Continue
            }
        });
        assert_eq!(seen, 2);
        assert_eq!(cancelled.sampled_trials, 32);
        assert_eq!(
            cancelled.history.as_slice(),
            &full.history[..32],
            "cancelled run diverged from the uncancelled prefix"
        );

        // Stop at generation 0: only the initial population is sampled.
        let immediate = opt.run_controlled(&problem, &mut |_| SearchControl::Stop);
        assert_eq!(immediate.sampled_trials, 16);
        assert_eq!(immediate.history.as_slice(), &full.history[..16]);

        // A Continue-forever controller matches the plain run exactly.
        let uncancelled = opt.run_controlled(&problem, &mut |_| SearchControl::Continue);
        assert_eq!(uncancelled.history, full.history);
    }

    #[test]
    #[should_panic(expected = "budget must cover")]
    fn tiny_budget_panics() {
        Nsga2Optimizer::new(Nsga2Config {
            population_size: 50,
            max_trials: 10,
            ..Nsga2Config::default()
        });
    }
}

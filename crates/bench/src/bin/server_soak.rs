//! Daemon soak: hammer one shared daemon over **real TCP** from 8
//! concurrent connections, past the process-wide admission cap, with a
//! mid-flight cancellation — and fail (exit 1) unless every completed
//! front is bit-identical to a standalone run.
//!
//! ```text
//! cargo run --release -p mgopt-bench --bin server_soak
//! MGOPT_TRACE=soak.jsonl cargo run --release -p mgopt-bench --bin server_soak
//! ```
//!
//! The choreography, per connection:
//!
//! 1. all 8 clients connect, `Ping`, and rendezvous on a barrier after
//!    `Pong` — so 8 connections are provably served *at the same time*
//!    (a sequential accept loop would deadlock here);
//! 2. each client submits the same study twice (16 studies against a
//!    process-wide cap of 4, so most wait in the admission queue and
//!    announce it with `Queued` frames);
//! 3. connection 0 additionally submits a long streamed victim study
//!    first and cancels it after its first `Front` — the victim's
//!    terminal frame must be `Cancelled`, never `Done`;
//! 4. a final connection sends `Shutdown`, awaits `Bye`, and the accept
//!    loop drains.
//!
//! CI runs this under `MGOPT_TRACE` and pipes the audit log through
//! `trace_report --check`, so the queued/cancelled telemetry schema is
//! exercised end to end. `MGOPT_FAST=1` shrinks budgets for smoke runs.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use mgopt_core::wire::{
    encode_request, FleetSpec, PlanPoint, Request, RequestFrame, Response, ResponseFrame,
    StudyBudget, StudyRequest, WIRE_VERSION,
};
use mgopt_microgrid::CompositionSpace;
use mgopt_optimizer::{Nsga2Config, Nsga2Optimizer};
use mgopt_server::{Server, ServerConfig};

const CONNECTIONS: usize = 8;
const MAX_CONCURRENT: usize = 4;

fn study(seed: u64, population_size: usize, max_trials: usize, stream: bool) -> StudyRequest {
    StudyRequest {
        fleet: FleetSpec::Preset("paper".into()),
        space: Some(CompositionSpace {
            wind_choices: vec![0, 4],
            solar_choices_kw: vec![0.0, 16_000.0],
            battery_choices_kwh: vec![0.0, 22_500.0],
        }),
        objectives: None,
        budget: StudyBudget {
            population_size,
            max_trials,
            seed,
        },
        peak_cap_kw: None,
        stream,
    }
}

/// The front a standalone (no daemon) run produces for `study`.
fn standalone_front(study: &StudyRequest) -> Vec<PlanPoint> {
    let fleet = study.resolved_scenario().expect("valid study").prepare();
    let problem = mgopt_core::FleetProblem::new(&fleet);
    let optimizer = Nsga2Optimizer::new(Nsga2Config {
        population_size: study.budget.population_size,
        max_trials: study.budget.max_trials,
        seed: study.budget.seed,
        ..Nsga2Config::default()
    });
    let mut last = Vec::new();
    optimizer.run_observed(&problem, &mut |view| {
        last = view
            .front
            .iter()
            .map(|(genome, eval)| PlanPoint {
                genome: genome.clone(),
                plan: genome
                    .iter()
                    .zip(&fleet.members)
                    .map(|(&g, m)| m.config.space.at(g as usize))
                    .collect(),
                objectives: eval.objectives.clone(),
                violation: eval.total_violation(),
            })
            .collect();
    });
    last
}

fn send_frame(writer: &mut TcpStream, id: &str, req: Request) {
    let frame = RequestFrame {
        v: WIRE_VERSION,
        id: id.into(),
        req,
    };
    writeln!(writer, "{}", encode_request(&frame)).expect("daemon socket writable");
}

/// What one client connection observed.
struct ClientOutcome {
    agreement: bool,
    queued_frames: usize,
    cancelled_done_frames: usize,
    got_cancelled: bool,
}

/// Drive one TCP connection through the soak choreography.
fn client(
    addr: std::net::SocketAddr,
    study_req: StudyRequest,
    expect: Vec<PlanPoint>,
    victim: Option<StudyRequest>,
    ready: Arc<Barrier>,
) -> ClientOutcome {
    let mut writer = TcpStream::connect(addr).expect("connect to daemon");
    let mut reader = BufReader::new(writer.try_clone().expect("clone socket"));
    let recv = |reader: &mut BufReader<TcpStream>| -> ResponseFrame {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read daemon frame") > 0,
            "daemon hung up mid-soak"
        );
        serde_json::from_str(line.trim_end()).expect("daemon frame parses")
    };

    // Rendezvous: every connection is open and answered concurrently.
    send_frame(&mut writer, "ping", Request::Ping);
    let pong = recv(&mut reader);
    assert_eq!(pong.resp, Response::Pong, "expected Pong, got {pong:?}");
    ready.wait();

    let has_victim = victim.is_some();
    if let Some(v) = victim {
        send_frame(&mut writer, "victim", Request::Study(v));
    }
    send_frame(&mut writer, "a", Request::Study(study_req.clone()));
    send_frame(&mut writer, "b", Request::Study(study_req));

    let mut outcome = ClientOutcome {
        agreement: true,
        queued_frames: 0,
        cancelled_done_frames: 0,
        got_cancelled: false,
    };
    let mut done_needed = 2usize;
    let mut victim_open = has_victim;
    let mut sent_cancel = false;
    while done_needed > 0 || victim_open {
        let frame = recv(&mut reader);
        match frame.resp {
            Response::Accepted(_) => {}
            Response::Queued(_) => outcome.queued_frames += 1,
            Response::Front(_) => {
                if frame.id == "victim" && !sent_cancel {
                    send_frame(&mut writer, "cancel-1", Request::Cancel("victim".into()));
                    sent_cancel = true;
                }
            }
            Response::Done(d) => {
                if frame.id == "victim" {
                    outcome.cancelled_done_frames += 1;
                    victim_open = false;
                } else {
                    outcome.agreement &= d.front == expect;
                    done_needed -= 1;
                }
            }
            Response::Cancelled(_) => {
                assert_eq!(frame.id, "victim", "Cancelled for an uncancelled study");
                outcome.got_cancelled = true;
                victim_open = false;
            }
            other => panic!("unexpected frame for {}: {other:?}", frame.id),
        }
    }
    outcome
}

fn main() -> ExitCode {
    let fast = mgopt_bench::fast_mode();
    let (population, max_trials) = if fast { (6, 18) } else { (8, 32) };

    let server = Arc::new(Server::new(ServerConfig {
        max_concurrent: MAX_CONCURRENT,
        max_acceptors: CONNECTIONS + 1, // the 8 clients plus the shutdown connection
        ..ServerConfig::default()
    }));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind soak listener");
    let addr = listener.local_addr().expect("listener addr");
    let serve = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve_tcp(listener))
    };

    println!(
        "daemon soak: {CONNECTIONS} TCP connections x 2 studies \
         (population {population}, {max_trials} trials each), cap {MAX_CONCURRENT}, \
         one mid-flight cancel"
    );

    let studies: Vec<StudyRequest> = (0..CONNECTIONS as u64)
        .map(|k| study(k, population, max_trials, false))
        .collect();
    let expected: Vec<Vec<PlanPoint>> = studies.iter().map(standalone_front).collect();
    let victim = study(999, population, max_trials * 10, true);

    let t0 = Instant::now();
    let ready = Arc::new(Barrier::new(CONNECTIONS));
    let clients: Vec<_> = studies
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let s = s.clone();
            let expect = expected[i].clone();
            let victim = (i == 0).then(|| victim.clone());
            let ready = Arc::clone(&ready);
            thread::spawn(move || client(addr, s, expect, victim, ready))
        })
        .collect();

    let mut agreement = true;
    let mut queued_frames = 0usize;
    let mut cancelled_done_frames = 0usize;
    let mut got_cancelled = false;
    for c in clients {
        let outcome = c.join().expect("soak client panicked");
        agreement &= outcome.agreement;
        queued_frames += outcome.queued_frames;
        cancelled_done_frames += outcome.cancelled_done_frames;
        got_cancelled |= outcome.got_cancelled;
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3;

    // Clean shutdown over its own connection, then drain the accept loop.
    let mut shutdown = TcpStream::connect(addr).expect("connect for shutdown");
    send_frame(&mut shutdown, "bye", Request::Shutdown);
    let mut reader = BufReader::new(shutdown.try_clone().expect("clone socket"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read Bye");
    drop(reader);
    drop(shutdown);
    serve
        .join()
        .expect("serve_tcp panicked")
        .expect("serve_tcp failed");

    println!(
        "  {:9.1} ms   peak {} in flight (cap {MAX_CONCURRENT}), queue depth peak {}, \
         {} Queued frames, {} studies done, {} cancelled",
        ms,
        server.peak_in_flight(),
        server.queue_depth_peak(),
        queued_frames,
        server.studies_done(),
        server.studies_cancelled(),
    );

    let mut failures: Vec<String> = Vec::new();
    let mut check = |ok: bool, msg: &str| {
        if !ok {
            failures.push(msg.into());
        }
    };
    check(agreement, "a daemon front diverged from its standalone run");
    check(
        cancelled_done_frames == 0,
        "the cancelled study produced a Done frame",
    );
    check(got_cancelled, "the victim study was never Cancelled");
    check(
        server.peak_in_flight() <= MAX_CONCURRENT,
        "in-flight peak exceeded the process-wide cap",
    );
    check(
        server.queue_depth_peak() >= 1,
        "no study ever queued — the workload never saturated the cap",
    );
    check(
        server.studies_cancelled() >= 1,
        "the daemon recorded no cancelled study",
    );
    check(queued_frames >= 1, "no Queued frame ever reached a client");

    if failures.is_empty() {
        println!("  fronts bit-identical to standalone runs; cancel honored; soak OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("server_soak: FAIL {f}");
        }
        ExitCode::FAILURE
    }
}

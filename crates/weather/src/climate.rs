//! Per-site climatology presets.
//!
//! These parameter sets replace the measured NSRDB / WIND Toolkit data the
//! paper uses. They are calibrated so the *relative* resource quality of the
//! two case-study sites matches the paper's findings: Berkeley has the
//! stronger, steadier solar resource; Houston has the far stronger wind
//! resource (Gulf coast) but a cloudier sky.

use serde::{Deserialize, Serialize};

use crate::location::Location;

/// Stochastic cloud climatology for the clear-sky-index generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolarClimate {
    /// Mean clear-sky index (all-sky GHI / clear-sky GHI) in the clear regime.
    pub clear_kci_mean: f64,
    /// Within-regime standard deviation in the clear regime.
    pub clear_kci_std: f64,
    /// Mean clear-sky index in the cloudy regime.
    pub cloudy_kci_mean: f64,
    /// Within-regime standard deviation in the cloudy regime.
    pub cloudy_kci_std: f64,
    /// Stationary probability of the cloudy regime per month.
    pub monthly_cloudy_prob: [f64; 12],
    /// Mean sojourn time of the cloudy regime in hours.
    pub cloudy_persistence_h: f64,
    /// Lag-1 decorrelation time of within-regime fluctuations, hours.
    pub kci_decorrelation_h: f64,
}

/// Wind-speed climatology at a reference (hub-ish) height.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindClimate {
    /// Annual Weibull scale parameter at `ref_height_m`, m/s.
    pub weibull_scale_ms: f64,
    /// Weibull shape parameter (k).
    pub weibull_shape: f64,
    /// Multiplier on the scale per month (seasonality).
    pub monthly_scale_factor: [f64; 12],
    /// Relative amplitude of the diurnal cycle (0 = flat).
    pub diurnal_amplitude: f64,
    /// Local hour of the diurnal wind-speed maximum.
    pub diurnal_peak_hour: f64,
    /// Decorrelation time of wind fluctuations, hours.
    pub decorrelation_h: f64,
    /// Height the climatology refers to, meters.
    pub ref_height_m: f64,
    /// Power-law shear exponent for height extrapolation.
    pub shear_exponent: f64,
}

/// Ambient-temperature climatology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureClimate {
    /// Monthly mean air temperature, °C.
    pub monthly_mean_c: [f64; 12],
    /// Peak-to-trough diurnal swing, °C.
    pub diurnal_swing_c: f64,
    /// Standard deviation of day-to-day anomalies, °C.
    pub anomaly_std_c: f64,
}

/// Complete per-site climatology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Climate {
    /// The geographic site.
    pub location: Location,
    /// Cloud / solar parameters.
    pub solar: SolarClimate,
    /// Wind parameters.
    pub wind: WindClimate,
    /// Temperature parameters.
    pub temperature: TemperatureClimate,
}

impl Climate {
    /// Berkeley, CA: excellent solar (dry summers), weak onshore wind.
    pub fn berkeley() -> Self {
        Self {
            location: Location::berkeley(),
            solar: SolarClimate {
                clear_kci_mean: 0.97,
                clear_kci_std: 0.04,
                cloudy_kci_mean: 0.38,
                cloudy_kci_std: 0.14,
                // Mediterranean pattern: wet winters, near-cloudless summers
                // (summer fog burns off before the solar peak).
                monthly_cloudy_prob: [
                    0.45, 0.42, 0.35, 0.25, 0.16, 0.10, 0.08, 0.08, 0.10, 0.20, 0.35, 0.45,
                ],
                cloudy_persistence_h: 14.0,
                kci_decorrelation_h: 3.0,
            },
            wind: WindClimate {
                weibull_scale_ms: 5.6,
                weibull_shape: 2.1,
                // Spring/summer sea-breeze peak.
                monthly_scale_factor: [
                    0.85, 0.90, 1.00, 1.10, 1.15, 1.18, 1.15, 1.08, 0.98, 0.90, 0.85, 0.84,
                ],
                diurnal_amplitude: 0.25,
                diurnal_peak_hour: 16.0,
                decorrelation_h: 8.0,
                ref_height_m: 100.0,
                shear_exponent: 0.14,
            },
            temperature: TemperatureClimate {
                monthly_mean_c: [
                    9.5, 11.0, 12.5, 13.5, 15.0, 16.5, 17.0, 17.5, 17.5, 16.0, 12.5, 9.5,
                ],
                diurnal_swing_c: 7.0,
                anomaly_std_c: 1.8,
            },
        }
    }

    /// Houston, TX: strong Gulf-coast wind, good-but-cloudier solar.
    pub fn houston() -> Self {
        Self {
            location: Location::houston(),
            solar: SolarClimate {
                clear_kci_mean: 0.95,
                clear_kci_std: 0.05,
                cloudy_kci_mean: 0.35,
                cloudy_kci_std: 0.15,
                // Humid subtropical: convective clouds in summer, frontal in
                // winter/spring — cloudy year-round.
                monthly_cloudy_prob: [
                    0.48, 0.46, 0.42, 0.38, 0.38, 0.35, 0.36, 0.35, 0.36, 0.33, 0.40, 0.46,
                ],
                cloudy_persistence_h: 10.0,
                kci_decorrelation_h: 2.0,
            },
            wind: WindClimate {
                weibull_scale_ms: 7.2,
                weibull_shape: 2.2,
                // Texas wind: strong winter/spring, weaker late summer.
                monthly_scale_factor: [
                    1.10, 1.12, 1.15, 1.12, 1.05, 0.95, 0.85, 0.80, 0.88, 1.00, 1.06, 1.10,
                ],
                diurnal_amplitude: 0.22,
                diurnal_peak_hour: 2.0, // nocturnal low-level jet
                decorrelation_h: 16.0,
                ref_height_m: 100.0,
                shear_exponent: 0.14,
            },
            temperature: TemperatureClimate {
                monthly_mean_c: [
                    12.0, 14.0, 17.5, 21.0, 25.0, 28.0, 29.5, 29.5, 27.0, 22.0, 17.0, 13.0,
                ],
                diurnal_swing_c: 9.0,
                anomaly_std_c: 2.5,
            },
        }
    }

    /// Look up a preset by case-insensitive site name ("berkeley", "houston").
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "berkeley" | "berkeley, ca" => Some(Self::berkeley()),
            "houston" | "houston, tx" => Some(Self::houston()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn berkeley_sunnier_than_houston() {
        let b = Climate::berkeley();
        let h = Climate::houston();
        let mean_cloud = |c: &Climate| c.solar.monthly_cloudy_prob.iter().sum::<f64>() / 12.0;
        assert!(mean_cloud(&b) < mean_cloud(&h));
    }

    #[test]
    fn houston_windier_than_berkeley() {
        let b = Climate::berkeley();
        let h = Climate::houston();
        assert!(h.wind.weibull_scale_ms > b.wind.weibull_scale_ms + 1.5);
    }

    #[test]
    fn probabilities_are_valid() {
        for c in [Climate::berkeley(), Climate::houston()] {
            for &p in &c.solar.monthly_cloudy_prob {
                assert!((0.0..=1.0).contains(&p));
            }
            for &f in &c.wind.monthly_scale_factor {
                assert!(f > 0.0);
            }
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(Climate::by_name("Berkeley").is_some());
        assert!(Climate::by_name("HOUSTON").is_some());
        assert!(Climate::by_name("berlin").is_none());
    }

    #[test]
    fn houston_summer_is_hot() {
        let h = Climate::houston();
        assert!(h.temperature.monthly_mean_c[6] > 28.0);
        let b = Climate::berkeley();
        assert!(b.temperature.monthly_mean_c[6] < 20.0);
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # mgopt-optimizer
//!
//! Multi-objective black-box optimization — the workspace's substitute for
//! the Optuna framework (with its NSGA-II sampler) and the Hydra sweeper
//! the paper builds on.
//!
//! * [`problem`] — the discrete search-space / objective abstraction;
//! * [`pareto`] — dominance (plain and constrained), fast non-dominated
//!   sorting, crowding distance, 2-D hypervolume, IGD, and Pareto-recovery
//!   metrics;
//! * [`nsga2`] — the NSGA-II genetic sampler (Deb et al. 2002) with
//!   evaluation memoization, rayon-parallel trial evaluation and
//!   constraint-dominance for constrained problems;
//! * [`mod@random_search`] — the naive sampler baseline;
//! * [`exhaustive`] — full grid enumeration (the paper's ground-truth
//!   baseline over 1,089 compositions);
//! * [`extract`] — candidate-extraction strategies from §3.3: embodied-
//!   budget thresholds, k-means clustering, greedy diversity maximization;
//! * [`study`] — an Optuna-style `Study` front end tying it together.

pub mod exhaustive;
pub mod extract;
pub mod nsga2;
pub mod pareto;
pub mod problem;
pub mod pruning;
pub mod random_search;
pub mod study;

pub use exhaustive::exhaustive_search;
pub use nsga2::{GenerationView, Nsga2Config, Nsga2Optimizer, SearchControl};
pub use pareto::{
    constrained_dominates, constrained_non_dominated_sort, crowding_distance, dominates,
    fast_non_dominated_sort, non_dominated_indices,
};
pub use problem::{Evaluation, FnProblem, Genome, Problem, Trial};
pub use pruning::{successive_halving, MultiFidelityProblem, SuccessiveHalvingConfig};
pub use random_search::random_search;
pub use study::{OptimizationResult, Sampler, Study};

//! Engine benchmarks: full-year microgrid simulation throughput.
//!
//! The paper's framework "performs full-year simulations within minutes";
//! these benches document what the Rust engine achieves (typically
//! milliseconds per composition-year at hourly resolution).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mgopt_core::ScenarioConfig;
use mgopt_microgrid::{simulate_year, simulate_year_cosim, Composition, SimConfig};

fn bench_year_simulation(c: &mut Criterion) {
    let comp = Composition::new(4, 12_000.0, 30_000.0);
    let cfg = SimConfig::default();

    let mut group = c.benchmark_group("year_simulation");
    group.sample_size(20);

    for step_minutes in [60u32, 15] {
        let scenario = ScenarioConfig {
            step_minutes,
            ..ScenarioConfig::paper_houston()
        }
        .prepare();
        group.bench_with_input(
            BenchmarkId::new("fast_path", format!("{step_minutes}min")),
            &scenario,
            |b, s| {
                b.iter(|| {
                    black_box(simulate_year(
                        black_box(&s.data),
                        black_box(&s.load),
                        black_box(&comp),
                        black_box(&cfg),
                    ))
                })
            },
        );
    }

    let scenario = ScenarioConfig::paper_houston().prepare();
    group.bench_function("cosim_engine_60min", |b| {
        b.iter(|| {
            black_box(simulate_year_cosim(
                black_box(&scenario.data),
                black_box(&scenario.load),
                black_box(&comp),
                black_box(&cfg),
            ))
        })
    });
    group.finish();
}

fn bench_scenario_preparation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_preparation");
    group.sample_size(10);
    group.bench_function("prepare_houston_hourly", |b| {
        b.iter(|| black_box(ScenarioConfig::paper_houston().prepare()))
    });
    group.finish();
}

criterion_group!(benches, bench_year_simulation, bench_scenario_preparation);
criterion_main!(benches);

// mgopt-lint-fixture: role=wire
pub enum ErrorCode {
    MalformedFrame,
    Oversized,
}

//! Operational-emissions accounting (GHG Protocol Scope 2, average CI).
//!
//! The paper computes operational emissions as the CO2 released by grid
//! electricity purchases, in tCO2/day, and embodied emissions as a one-time
//! Scope-3 investment that is *not* amortized (§3.3 quotes the GHG Protocol
//! guidance). These helpers implement that accounting on time series.

use mgopt_units::{CarbonIntensity, Emissions, Energy, TimeSeries};

/// Total emissions from a grid-import power series (kW, ≥0 meaning import)
/// and a carbon-intensity series (gCO2/kWh).
///
/// Export (negative import samples) is ignored — selling energy back does
/// not offset Scope-2 purchases under location-based accounting.
///
/// # Panics
/// Panics when the two series have different shapes.
pub fn operational_emissions(grid_import_kw: &TimeSeries, ci_g_per_kwh: &TimeSeries) -> Emissions {
    assert_eq!(
        grid_import_kw.step(),
        ci_g_per_kwh.step(),
        "import and CI series must share a step"
    );
    assert_eq!(
        grid_import_kw.len(),
        ci_g_per_kwh.len(),
        "import and CI series must share a length"
    );
    let step_h = grid_import_kw.step().hours();
    let mut kg = 0.0;
    for (&p, &ci) in grid_import_kw.values().iter().zip(ci_g_per_kwh.values()) {
        if p > 0.0 {
            let kwh = p * step_h;
            kg += Energy::from_kwh(kwh)
                .emissions_at(CarbonIntensity::from_g_per_kwh(ci))
                .kg();
        }
    }
    Emissions::from_kg(kg)
}

/// Average daily emissions (tCO2/day) over the series duration.
pub fn daily_operational_emissions_t(
    grid_import_kw: &TimeSeries,
    ci_g_per_kwh: &TimeSeries,
) -> f64 {
    let total = operational_emissions(grid_import_kw, ci_g_per_kwh);
    let days = grid_import_kw.duration().days();
    if days <= 0.0 {
        0.0
    } else {
        total.tons() / days
    }
}

/// Naive multi-year projection (paper §4.2, Figure 3): embodied emissions
/// paid up front, operational accumulating at a constant daily rate, no
/// reinvestment or degradation.
///
/// Returns cumulative tCO2 at the end of each year `1..=years` with the
/// year-0 point (embodied only) prepended, i.e. `years + 1` values.
pub fn project_cumulative_emissions_t(
    embodied_t: f64,
    operational_t_per_day: f64,
    years: usize,
) -> Vec<f64> {
    (0..=years)
        .map(|y| embodied_t + operational_t_per_day * 365.0 * y as f64)
        .collect()
}

/// Projection with battery reinvestment — the refinement the paper names
/// as missing from its own Figure 3 ("batteries may require replacement
/// within 10–15 years. Since we do not model reinvestment or degradation,
/// the analysis represents a conservative baseline").
///
/// Generation assets live through the whole horizon; the battery's
/// embodied emissions are re-paid every `battery_lifetime_years`. Returns
/// cumulative tCO2 at the end of each year `0..=horizon_years`.
pub fn project_with_battery_reinvestment_t(
    generation_embodied_t: f64,
    battery_embodied_t: f64,
    operational_t_per_day: f64,
    horizon_years: usize,
    battery_lifetime_years: usize,
) -> Vec<f64> {
    assert!(
        battery_lifetime_years > 0,
        "battery lifetime must be positive"
    );
    (0..=horizon_years)
        .map(|y| {
            // Replacements purchased strictly before the end of year y:
            // at year 0 (initial), then at battery_lifetime, 2×, …
            let replacements = if battery_embodied_t > 0.0 {
                1 + y.saturating_sub(1) / battery_lifetime_years
            } else {
                0
            };
            generation_embodied_t
                + battery_embodied_t * replacements as f64
                + operational_t_per_day * 365.0 * y as f64
        })
        .collect()
}

/// The year (fractional) at which configuration `a` overtakes `b` in
/// cumulative emissions, or `None` if it never does within `horizon_years`.
///
/// "Overtakes" means `a` starts below `b` (or equal) and ends above.
pub fn crossover_year(
    a: (f64, f64), // (embodied_t, operational_t_per_day)
    b: (f64, f64),
    horizon_years: f64,
) -> Option<f64> {
    let (ea, oa) = a;
    let (eb, ob) = b;
    let delta_daily = (oa - ob) * 365.0;
    if delta_daily <= 0.0 {
        // `a` never gains on `b`.
        return None;
    }
    let year = (eb - ea) / delta_daily;
    if year >= 0.0 && year <= horizon_years {
        Some(year)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::SimDuration;

    fn flat(step_h: f64, n: usize, v: f64) -> TimeSeries {
        TimeSeries::new(SimDuration::from_hours(step_h), vec![v; n])
    }

    #[test]
    fn constant_import_constant_ci() {
        // 1620 kW for 24 h at 400 g/kWh = 15.55 t
        let import = flat(1.0, 24, 1_620.0);
        let ci = flat(1.0, 24, 400.0);
        let e = operational_emissions(&import, &ci);
        assert!((e.tons() - 1_620.0 * 24.0 * 400.0 / 1e9 * 1e3).abs() < 1e-9);
        let daily = daily_operational_emissions_t(&import, &ci);
        assert!((daily - 15.552).abs() < 1e-9);
    }

    #[test]
    fn export_does_not_offset() {
        let import = TimeSeries::new(SimDuration::from_hours(1.0), vec![100.0, -100.0]);
        let ci = flat(1.0, 2, 500.0);
        let e = operational_emissions(&import, &ci);
        assert!((e.kg() - 50.0).abs() < 1e-12, "only the import hour counts");
    }

    #[test]
    fn zero_import_zero_emissions() {
        let import = flat(1.0, 24, 0.0);
        let ci = flat(1.0, 24, 400.0);
        assert_eq!(operational_emissions(&import, &ci).kg(), 0.0);
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn shape_mismatch_panics() {
        operational_emissions(&flat(1.0, 3, 1.0), &flat(1.0, 4, 1.0));
    }

    #[test]
    fn projection_linear_accumulation() {
        let proj = project_cumulative_emissions_t(4_649.0, 5.88, 20);
        assert_eq!(proj.len(), 21);
        assert_eq!(proj[0], 4_649.0);
        assert!((proj[1] - (4_649.0 + 5.88 * 365.0)).abs() < 1e-9);
        assert!((proj[20] - (4_649.0 + 5.88 * 365.0 * 20.0)).abs() < 1e-9);
    }

    #[test]
    fn reinvestment_repays_battery_every_lifetime() {
        // 10,000 t generation + 465 t battery, 10-year battery life.
        let proj = project_with_battery_reinvestment_t(10_000.0, 465.0, 1.0, 20, 10);
        assert_eq!(proj.len(), 21);
        // Year 0: initial purchase only.
        assert!((proj[0] - 10_465.0).abs() < 1e-9);
        // Year 10: still one battery (replacement lands in year 11).
        let op10 = 1.0 * 365.0 * 10.0;
        assert!((proj[10] - (10_465.0 + op10)).abs() < 1e-9);
        // Year 11: second battery bought.
        let op11 = 1.0 * 365.0 * 11.0;
        assert!((proj[11] - (10_000.0 + 2.0 * 465.0 + op11)).abs() < 1e-9);
        // Year 20: replacement before year 21 only at 11; next at 21.
        let op20 = 1.0 * 365.0 * 20.0;
        assert!((proj[20] - (10_000.0 + 2.0 * 465.0 + op20)).abs() < 1e-9);
    }

    #[test]
    fn reinvestment_without_battery_matches_naive() {
        let naive = project_cumulative_emissions_t(5_000.0, 2.0, 15);
        let reinvested = project_with_battery_reinvestment_t(5_000.0, 0.0, 2.0, 15, 10);
        assert_eq!(naive, reinvested);
    }

    #[test]
    fn reinvestment_strictly_raises_battery_heavy_builds() {
        let naive = project_cumulative_emissions_t(4_649.0, 5.88, 20);
        // (12,0,7.5): 4,184 t wind + 465 t battery.
        let reinvested = project_with_battery_reinvestment_t(4_184.0, 465.0, 5.88, 20, 12);
        assert_eq!(naive[0], reinvested[0], "identical initial purchase");
        assert!(reinvested[20] > naive[20], "one replacement by year 20");
        assert!((reinvested[20] - naive[20] - 465.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "battery lifetime")]
    fn zero_lifetime_panics() {
        project_with_battery_reinvestment_t(1.0, 1.0, 1.0, 5, 0);
    }

    #[test]
    fn crossover_baseline_vs_investment() {
        // Houston-like: baseline (0, 15.54) vs the 14,999 t composition
        // (14_999, 0.24). Baseline overtakes at about 2.7 years.
        let year = crossover_year((0.0, 15.54), (14_999.0, 0.24), 20.0).unwrap();
        let expected = 14_999.0 / ((15.54 - 0.24) * 365.0);
        assert!((year - expected).abs() < 1e-9);
        assert!((2.0..4.0).contains(&year));
    }

    #[test]
    fn crossover_never_when_cheaper_forever() {
        // `a` has lower embodied AND lower operational: never overtaken.
        assert!(crossover_year((0.0, 1.0), (1_000.0, 5.0), 20.0).is_none());
    }

    #[test]
    fn crossover_outside_horizon() {
        // Tiny operational difference: crossover beyond 20 years.
        assert!(crossover_year((0.0, 1.01), (10_000.0, 1.0), 20.0).is_none());
    }
}

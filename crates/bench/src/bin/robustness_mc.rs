//! Monte-Carlo robustness of the paper's candidate compositions:
//! re-simulate each Table-1 Houston candidate under independent synthetic
//! years and report metric distributions (operational uncertainty).
//!
//! ```bash
//! cargo run --release -p mgopt-bench --bin robustness_mc
//! ```

use mgopt_core::experiments::robustness;
use mgopt_core::ScenarioConfig;
use mgopt_microgrid::Composition;

fn main() {
    let n_seeds = if mgopt_bench::fast_mode() { 3 } else { 15 };
    let base = ScenarioConfig::paper_houston();
    let candidates = [
        Composition::BASELINE,
        Composition::new(4, 0.0, 7_500.0),
        Composition::new(3, 8_000.0, 22_500.0),
        Composition::new(4, 12_000.0, 52_500.0),
        Composition::new(10, 40_000.0, 60_000.0),
    ];

    println!(
        "Monte-Carlo robustness — {} ({} synthetic years per candidate)\n",
        base.site.name(),
        n_seeds
    );
    println!(
        "  {:<16} {:>22} {:>22} {:>18}",
        "composition", "operational t/d (p5..p95)", "coverage % (p5..p95)", "cycles (mean±std)"
    );
    let mut outputs = Vec::new();
    for comp in candidates {
        let out = robustness::run(&base, comp, n_seeds);
        println!(
            "  {:<16} {:>8.2} ({:>5.2}..{:>5.2}) {:>9.2} ({:>6.2}..{:>6.2}) {:>10.0} ± {:>4.1}",
            comp.label(),
            out.operational_t_per_day.mean,
            out.operational_t_per_day.p5,
            out.operational_t_per_day.p95,
            out.coverage_pct.mean,
            out.coverage_pct.p5,
            out.coverage_pct.p95,
            out.battery_cycles.mean,
            out.battery_cycles.std
        );
        outputs.push(out);
    }
    mgopt_bench::write_artifact("robustness_houston", &outputs);
}

//! Monte-Carlo robustness analysis.
//!
//! The paper's related work stresses "optimization under operational
//! uncertainty" (Lian et al.); our substrates are stochastic, so the
//! natural question is how sensitive a chosen composition is to the
//! weather/workload year it encounters. This experiment re-simulates one
//! composition under many seeds and reports the distribution of the key
//! metrics — planning numbers a designer can trust.

use mgopt_microgrid::{simulate_year, Composition};
use mgopt_units::stats;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::scenario::ScenarioConfig;

/// Distribution summary of one metric across seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDistribution {
    /// Metric name.
    pub name: String,
    /// Mean over seeds.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// 5th percentile.
    pub p5: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Worst observed value (max for emissions, min for coverage handled
    /// by the caller's interpretation; this is the plain max).
    pub max: f64,
    /// Best observed value (plain min).
    pub min: f64,
}

impl MetricDistribution {
    fn from_samples(name: &str, xs: &[f64]) -> Self {
        Self {
            name: name.to_string(),
            mean: stats::mean(xs),
            std: stats::std(xs),
            p5: stats::percentile(xs, 5.0),
            p95: stats::percentile(xs, 95.0),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }
}

/// Robustness-study output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessOutput {
    /// Site name.
    pub site: String,
    /// The studied composition.
    pub composition: Composition,
    /// Number of Monte-Carlo years.
    pub n_seeds: usize,
    /// Distributions: operational tCO2/day, coverage %, battery cycles.
    pub operational_t_per_day: MetricDistribution,
    /// Coverage distribution (percent).
    pub coverage_pct: MetricDistribution,
    /// Battery-cycle distribution.
    pub battery_cycles: MetricDistribution,
}

/// Simulate `comp` under `n_seeds` independently synthesized years.
pub fn run(base: &ScenarioConfig, comp: Composition, n_seeds: usize) -> RobustnessOutput {
    assert!(n_seeds >= 2, "need at least two seeds for a distribution");
    let results: Vec<_> = (0..n_seeds as u64)
        .into_par_iter()
        .map(|k| {
            let scenario = ScenarioConfig {
                seed: base.seed.wrapping_add(k * 7_919),
                ..base.clone()
            }
            .prepare();
            let r = simulate_year(&scenario.data, &scenario.load, &comp, &scenario.config.sim);
            (
                r.metrics.operational_t_per_day,
                r.metrics.coverage_pct(),
                r.metrics.battery_cycles,
            )
        })
        .collect();

    let op: Vec<f64> = results.iter().map(|r| r.0).collect();
    let cov: Vec<f64> = results.iter().map(|r| r.1).collect();
    let cyc: Vec<f64> = results.iter().map(|r| r.2).collect();

    RobustnessOutput {
        site: base.site.name().to_string(),
        composition: comp,
        n_seeds,
        operational_t_per_day: MetricDistribution::from_samples("operational_t_per_day", &op),
        coverage_pct: MetricDistribution::from_samples("coverage_pct", &cov),
        battery_cycles: MetricDistribution::from_samples("battery_cycles", &cyc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use mgopt_microgrid::CompositionSpace;

    fn base() -> ScenarioConfig {
        ScenarioConfig {
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_houston()
        }
    }

    #[test]
    fn baseline_is_nearly_seed_invariant() {
        // Load and CI are exactly mean-calibrated, so the grid-only
        // baseline barely moves across seeds.
        let out = run(&base(), Composition::BASELINE, 5);
        assert_eq!(out.n_seeds, 5);
        assert!(
            out.operational_t_per_day.std < 0.15,
            "baseline std {}",
            out.operational_t_per_day.std
        );
        assert!((out.operational_t_per_day.mean - 15.54).abs() < 0.2);
        assert_eq!(out.coverage_pct.mean, 0.0);
    }

    #[test]
    fn renewable_build_has_real_interannual_variability() {
        let out = run(&base(), Composition::new(4, 8_000.0, 22_500.0), 5);
        // Weather-driven: std must be visible but bounded.
        assert!(
            out.coverage_pct.std > 0.05,
            "cov std {}",
            out.coverage_pct.std
        );
        assert!(out.coverage_pct.std < 5.0);
        assert!(out.operational_t_per_day.std > 0.01);
        // Percentiles bracket the mean.
        assert!(out.operational_t_per_day.p5 <= out.operational_t_per_day.mean);
        assert!(out.operational_t_per_day.p95 >= out.operational_t_per_day.mean);
        assert!(out.operational_t_per_day.min <= out.operational_t_per_day.p5);
        assert!(out.operational_t_per_day.max >= out.operational_t_per_day.p95);
    }

    #[test]
    #[should_panic(expected = "at least two seeds")]
    fn single_seed_panics() {
        run(&base(), Composition::BASELINE, 1);
    }
}

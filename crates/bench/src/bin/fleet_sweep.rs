//! Emit `BENCH_fleet.json`: wall-clock of the uniform fleet sweep (both
//! paper sites, every composition of the space assigned fleet-wide)
//! through the interleaved [`FleetEvaluator`](mgopt_microgrid::FleetEvaluator)
//! versus sequential per-site [`BatchEvaluator`] sweeps, plus the
//! cross-engine agreement check.
//!
//! ```text
//! cargo run --release -p mgopt-bench --bin fleet_sweep
//! ```
//!
//! Writes the artifact to the repository root (next to `BENCH_sweep.json`)
//! and prints the same numbers to stdout. `MGOPT_FAST=1` shrinks the space
//! for smoke runs; `MGOPT_DENSE="<mw>,<mwh>"` runs the denser grid the
//! interleaved engine makes interactive (the artifact records the actual
//! plan count either way).

use std::path::PathBuf;
use std::time::Instant;

use mgopt_bench::ThreadScaling;
use mgopt_core::{fleet_plans, fleet_sweep, FleetAssignment, FleetScenario};
use mgopt_microgrid::{BatchBackend, BatchEvaluator, Composition, Evaluator};
use serde::Serialize;

/// The artifact schema. `speedup` compares equal deliverables (per-site
/// results, peak tracking off) — sequential per-site sweeps cannot produce
/// the fleet's concurrent peak at all, so the full interleaved pass is
/// recorded separately as `interleaved_with_peak_ms_min`.
#[derive(Debug, Serialize)]
struct FleetBench {
    sites: Vec<String>,
    plans: usize,
    steps_per_year: usize,
    samples: usize,
    interleaved_ms_min: f64,
    interleaved_with_peak_ms_min: f64,
    sequential_ms_min: f64,
    speedup: f64,
    speedup_with_peak: f64,
    max_rel_error: f64,
    peak_concurrent_import_mw: f64,
    threads: usize,
    /// Whether the interleaved timings above ran the SIMD chunk walk (the
    /// `MGOPT_SIMD` toggle at bench time).
    simd: bool,
    /// Forced-SIMD interleaved sweep (peak tracking off), min ms.
    simd_ms_min: f64,
    /// Forced-scalar interleaved sweep (peak tracking off), min ms.
    scalar_walk_ms_min: f64,
    /// `scalar_walk_ms_min / simd_ms_min` — the lane kernel's gain on the
    /// fleet walk, like-for-like.
    simd_speedup: f64,
    /// Agreement between the forced walks over per-site metrics. Exactly
    /// `0.0` by design (lanes are candidates); `bench_guard` rejects
    /// anything else.
    simd_max_rel_error: f64,
    /// Full interleaved sweep re-timed at each `MGOPT_THREADS` pool size.
    scaling: Vec<ThreadScaling>,
}

use mgopt_bench::min_ms;

fn main() {
    let mut scenario = FleetScenario::paper();
    for m in &mut scenario.members {
        m.scenario.space = mgopt_bench::space();
    }
    let fleet = scenario.prepare();
    let plans = fleet_plans(&fleet, FleetAssignment::Uniform);
    let comps: Vec<Composition> = plans.iter().map(|p| p[0]).collect();
    let samples = 25usize;

    // Warm-up + agreement check: per-site fleet results must match
    // independent single-site batch runs on every metrics field.
    let fleet_results = fleet_sweep(&fleet, FleetAssignment::Uniform);
    let mut max_rel_error = 0.0f64;
    for (s, member) in fleet.members.iter().enumerate() {
        let independent = BatchEvaluator::new(&member.data, &member.load, &member.config.sim)
            .evaluate_batch(&comps);
        for (f, b) in fleet_results.iter().zip(&independent) {
            assert_eq!(f.per_site[s].composition, b.composition);
            let err = f.per_site[s].metrics.max_rel_error(&b.metrics).0;
            // Propagate NaN explicitly — f64::max would silently drop it
            // and let a broken engine record perfect agreement.
            if err.is_nan() || err > max_rel_error {
                max_rel_error = err;
            }
        }
    }
    assert!(
        max_rel_error <= 1e-9,
        "fleet and batch engines disagree: max relative error {max_rel_error:e}"
    );
    let peak_mw = fleet_results
        .iter()
        .filter_map(|r| r.fleet.peak_concurrent_import_kw)
        .fold(0.0f64, f64::max)
        / 1e3;

    let mut interleaved_ms = Vec::with_capacity(samples);
    let mut with_peak_ms = Vec::with_capacity(samples);
    let mut sequential_ms = Vec::with_capacity(samples);
    let time_interleaved = |track_peak: bool, out: &mut Vec<f64>| {
        let ev = fleet.evaluator().with_peak_tracking(track_peak);
        let t0 = Instant::now();
        std::hint::black_box(ev.evaluate_plans(&plans));
        out.push(t0.elapsed().as_secs_f64() * 1e3);
    };
    let time_sequential = |out: &mut Vec<f64>| {
        let t0 = Instant::now();
        for member in &fleet.members {
            std::hint::black_box(
                BatchEvaluator::new(&member.data, &member.load, &member.config.sim)
                    .evaluate_batch(&comps),
            );
        }
        out.push(t0.elapsed().as_secs_f64() * 1e3);
    };
    // Rotate the A/B/C order per sample so clock drift (thermal throttling
    // on small hosts) cannot systematically favor any engine.
    for k in 0..samples {
        match k % 3 {
            0 => {
                time_interleaved(false, &mut interleaved_ms);
                time_sequential(&mut sequential_ms);
                time_interleaved(true, &mut with_peak_ms);
            }
            1 => {
                time_sequential(&mut sequential_ms);
                time_interleaved(true, &mut with_peak_ms);
                time_interleaved(false, &mut interleaved_ms);
            }
            _ => {
                time_interleaved(true, &mut with_peak_ms);
                time_interleaved(false, &mut interleaved_ms);
                time_sequential(&mut sequential_ms);
            }
        }
    }

    // SIMD vs scalar chunk walk on the interleaved engine, like-for-like
    // (peak tracking off in both). Bit-identity lets the agreement check
    // demand exact equality over per-site metrics.
    let simd_results = fleet
        .evaluator()
        .with_peak_tracking(false)
        .with_backend(BatchBackend::Simd)
        .evaluate_plans(&plans);
    let scalar_walk_results = fleet
        .evaluator()
        .with_peak_tracking(false)
        .with_backend(BatchBackend::Scalar)
        .evaluate_plans(&plans);
    let mut simd_max_rel_error = 0.0f64;
    for (a, b) in simd_results.iter().zip(&scalar_walk_results) {
        for (ra, rb) in a.per_site.iter().zip(&b.per_site) {
            let err = ra.metrics.max_rel_error(&rb.metrics).0;
            if err.is_nan() || err > simd_max_rel_error {
                simd_max_rel_error = err;
            }
        }
    }
    assert_eq!(
        simd_max_rel_error, 0.0,
        "SIMD fleet walk must be bit-identical to the scalar walk"
    );
    let mut simd_ms = Vec::with_capacity(samples);
    let mut scalar_walk_ms = Vec::with_capacity(samples);
    let time_backend = |backend: BatchBackend, out: &mut Vec<f64>| {
        let ev = fleet
            .evaluator()
            .with_peak_tracking(false)
            .with_backend(backend);
        let t0 = Instant::now();
        std::hint::black_box(ev.evaluate_plans(&plans));
        out.push(t0.elapsed().as_secs_f64() * 1e3);
    };
    for k in 0..samples {
        if k % 2 == 0 {
            time_backend(BatchBackend::Simd, &mut simd_ms);
            time_backend(BatchBackend::Scalar, &mut scalar_walk_ms);
        } else {
            time_backend(BatchBackend::Scalar, &mut scalar_walk_ms);
            time_backend(BatchBackend::Simd, &mut simd_ms);
        }
    }
    let simd_min = min_ms(&simd_ms);
    let scalar_walk_min = min_ms(&scalar_walk_ms);

    // Multi-thread scaling of the full interleaved sweep (peak on, the
    // deliverable configuration).
    let scaling = mgopt_bench::scaling_sweep(&mgopt_bench::thread_counts(), 3, || {
        std::hint::black_box(fleet.evaluator().evaluate_plans(&plans));
    });

    let interleaved_min = min_ms(&interleaved_ms);
    let with_peak_min = min_ms(&with_peak_ms);
    let sequential_min = min_ms(&sequential_ms);
    let bench = FleetBench {
        sites: fleet.names.clone(),
        plans: plans.len(),
        steps_per_year: fleet.members[0].data.len(),
        samples,
        interleaved_ms_min: interleaved_min,
        interleaved_with_peak_ms_min: with_peak_min,
        sequential_ms_min: sequential_min,
        speedup: sequential_min / interleaved_min,
        speedup_with_peak: sequential_min / with_peak_min,
        max_rel_error,
        peak_concurrent_import_mw: peak_mw,
        threads: rayon::current_num_threads(),
        simd: mgopt_microgrid::simd_enabled(),
        simd_ms_min: simd_min,
        scalar_walk_ms_min: scalar_walk_min,
        simd_speedup: scalar_walk_min / simd_min,
        simd_max_rel_error,
        scaling,
    };

    println!(
        "fleet sweep of {} plans x {} sites ({} steps): interleaved {:.1} ms, \
         sequential per-site {:.1} ms, speedup {:.2}x",
        bench.plans,
        bench.sites.len(),
        bench.steps_per_year,
        interleaved_min,
        sequential_min,
        bench.speedup
    );
    println!(
        "with concurrent-peak tracking (a fleet metric sequential per-site \
         sweeps cannot produce): {:.1} ms, {:.2}x",
        with_peak_min, bench.speedup_with_peak
    );
    println!(
        "fleet peak concurrent grid import across plans: {:.2} MW",
        peak_mw
    );
    println!(
        "simd walk {:.1} ms vs scalar walk {:.1} ms: {:.2}x, max rel err {:e}",
        simd_min, scalar_walk_min, bench.simd_speedup, simd_max_rel_error
    );
    for p in &bench.scaling {
        println!(
            "threads {} (effective {}): {:.1} ms",
            p.threads_requested, p.threads_effective, p.ms_min
        );
    }

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet.json");
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench artifact");
    std::fs::write(&path, json + "\n").expect("write BENCH_fleet.json");
    println!("[artifact] {}", path.display());
}

//! Signal forecasting.
//!
//! Vessim feeds controllers both *historical* and *forecasted* traces
//! (§3.1 of the paper). This module provides the forecaster abstraction
//! and the three standard baselines used in energy-systems work:
//!
//! * [`PerfectForecast`] — oracle access (upper bound for policy studies);
//! * [`PersistenceForecast`] — "tomorrow looks like today", the standard
//!   naive baseline;
//! * [`NoisyForecast`] — the true future plus horizon-growing error, the
//!   usual model of a numerical weather prediction product.
//!
//! [`ForecastPrecharge`] is a dispatch strategy consuming a forecast:
//! it pre-charges the battery from the grid ahead of forecast deficits —
//! a forecast-aware refinement of plain self-consumption.

use mgopt_units::{Power, SimDuration, SimTime};

use crate::dispatch::{BusState, DispatchStrategy};
use crate::signal::Signal;

/// A forecaster answers: standing at `t_now`, what will the signal be at
/// `t_target`?
pub trait Forecaster: Send + Sync {
    /// Forecast the signal at `t_target` using information available at
    /// `t_now`. `t_target < t_now` may return the realized value.
    fn forecast(&self, t_now: SimTime, t_target: SimTime) -> f64;
}

/// Oracle forecast: returns the true future value.
pub struct PerfectForecast<S: Signal> {
    signal: S,
}

impl<S: Signal> PerfectForecast<S> {
    /// Wrap a signal.
    pub fn new(signal: S) -> Self {
        Self { signal }
    }
}

impl<S: Signal> Forecaster for PerfectForecast<S> {
    fn forecast(&self, _t_now: SimTime, t_target: SimTime) -> f64 {
        self.signal.at(t_target)
    }
}

/// Persistence forecast: the value one period earlier (default 24 h) —
/// "tomorrow at 3pm will look like today at 3pm".
pub struct PersistenceForecast<S: Signal> {
    signal: S,
    period: SimDuration,
}

impl<S: Signal> PersistenceForecast<S> {
    /// Wrap a signal with a daily period.
    pub fn daily(signal: S) -> Self {
        Self {
            signal,
            period: SimDuration::from_days(1),
        }
    }

    /// Wrap a signal with an explicit period.
    pub fn with_period(signal: S, period: SimDuration) -> Self {
        assert!(period.secs() > 0, "persistence period must be positive");
        Self { signal, period }
    }
}

impl<S: Signal> Forecaster for PersistenceForecast<S> {
    fn forecast(&self, _t_now: SimTime, t_target: SimTime) -> f64 {
        self.signal
            .at(SimTime::from_secs(t_target.secs() - self.period.secs()))
    }
}

/// The true future plus multiplicative error growing with the forecast
/// horizon (deterministic per `(seed, t_target)`, so repeated queries
/// agree — like re-reading the same NWP product).
pub struct NoisyForecast<S: Signal> {
    signal: S,
    /// Relative error standard-ish deviation per hour of horizon.
    error_per_hour: f64,
    seed: u64,
}

impl<S: Signal> NoisyForecast<S> {
    /// Wrap a signal; `error_per_hour` ~ 0.01-0.05 models day-ahead NWP.
    pub fn new(signal: S, error_per_hour: f64, seed: u64) -> Self {
        assert!(error_per_hour >= 0.0);
        Self {
            signal,
            error_per_hour,
            seed,
        }
    }

    /// Deterministic pseudo-noise in `[-1, 1]` for a target instant.
    fn noise(&self, t_target: SimTime) -> f64 {
        let mut x = (t_target.secs() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ self.seed;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

impl<S: Signal> Forecaster for NoisyForecast<S> {
    fn forecast(&self, t_now: SimTime, t_target: SimTime) -> f64 {
        let truth = self.signal.at(t_target);
        let horizon_h = (t_target.secs() - t_now.secs()).max(0) as f64 / 3_600.0;
        let rel = 1.0 + self.error_per_hour * horizon_h * self.noise(t_target);
        (truth * rel.max(0.0)).max(0.0)
    }
}

/// Forecast-aware dispatch: self-consumption plus grid pre-charging ahead
/// of forecast deficits.
///
/// Each step it scans the net-power forecast over `lookahead`. When the
/// cumulative forecast deficit exceeds the battery's usable energy *and*
/// the current hour is materially better than the worst forecast hour, it
/// charges from the grid at `precharge_kw` so the coming deficit can be
/// served from storage instead of peak-time imports. During the deficit
/// itself it falls back to plain self-consumption (discharge) — charging
/// through the peak would defeat the purpose.
pub struct ForecastPrecharge {
    /// Forecaster of bus net power (production − load), kW.
    pub net_forecast: Box<dyn Forecaster>,
    /// Grid-charging rate during pre-charge windows, kW. Choose it below
    /// the forecast peak deficit or pre-charging creates a new peak.
    pub precharge_kw: f64,
    /// How far ahead to look.
    pub lookahead: SimDuration,
    /// Forecast sampling resolution.
    pub resolution: SimDuration,
}

impl ForecastPrecharge {
    /// Create a strategy with daily lookahead at hourly resolution.
    pub fn new(net_forecast: Box<dyn Forecaster>, precharge_kw: f64) -> Self {
        assert!(precharge_kw > 0.0, "pre-charge rate must be positive");
        Self {
            net_forecast,
            precharge_kw,
            lookahead: SimDuration::from_days(1),
            resolution: SimDuration::from_hours(1.0),
        }
    }

    /// Cumulative forecast deficit (kWh) over the lookahead window.
    pub fn forecast_deficit_kwh(&self, t_now: SimTime) -> f64 {
        let mut deficit = 0.0;
        let mut t = t_now;
        let end = t_now + self.lookahead;
        let step_h = self.resolution.hours();
        while t < end {
            let net = self.net_forecast.forecast(t_now, t);
            if net < 0.0 {
                deficit += -net * step_h;
            }
            t += self.resolution;
        }
        deficit
    }

    /// The worst (most negative) forecast net power over the window, kW.
    pub fn worst_forecast_net_kw(&self, t_now: SimTime) -> f64 {
        let mut worst = f64::INFINITY;
        let mut t = t_now;
        let end = t_now + self.lookahead;
        while t < end {
            worst = worst.min(self.net_forecast.forecast(t_now, t));
            t += self.resolution;
        }
        worst
    }
}

impl DispatchStrategy for ForecastPrecharge {
    fn storage_request(&mut self, state: &BusState) -> Power {
        let usable_kwh = state.capacity.kwh() * state.soc;
        let deficit = self.forecast_deficit_kwh(state.t);
        if deficit > usable_kwh && state.soc < 0.95 {
            let worst = self.worst_forecast_net_kw(state.t);
            // Only pre-charge in hours clearly better than the coming
            // trough; otherwise serve the bus (discharge on deficit).
            if state.p_delta.kw() > worst + 1.0 {
                return Power::from_kw(self.precharge_kw.max(state.p_delta.kw()));
            }
        }
        state.p_delta
    }

    fn name(&self) -> &str {
        "forecast-precharge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{ConstantSignal, FnSignal};
    use mgopt_units::TimeSeries;

    fn ramp() -> FnSignal<impl Fn(SimTime) -> f64 + Send + Sync> {
        FnSignal::new(|t: SimTime| t.hours())
    }

    #[test]
    fn perfect_forecast_is_the_truth() {
        let f = PerfectForecast::new(ramp());
        assert_eq!(f.forecast(SimTime::START, SimTime::from_hours(5.0)), 5.0);
        assert_eq!(
            f.forecast(SimTime::from_hours(100.0), SimTime::from_hours(5.0)),
            5.0
        );
    }

    #[test]
    fn persistence_looks_one_period_back() {
        let f = PersistenceForecast::daily(ramp());
        // Forecast for t=30h is the value at t=6h.
        assert_eq!(
            f.forecast(SimTime::from_hours(25.0), SimTime::from_hours(30.0)),
            6.0
        );
        let f2 = PersistenceForecast::with_period(ramp(), SimDuration::from_hours(2.0));
        assert_eq!(f2.forecast(SimTime::START, SimTime::from_hours(10.0)), 8.0);
    }

    #[test]
    fn persistence_exact_for_periodic_signals() {
        let daily = TimeSeries::from_fn_year(SimDuration::from_hours(1.0), |t| {
            (t.calendar().hour_of_day() * std::f64::consts::TAU / 24.0).sin() + 2.0
        });
        let f = PersistenceForecast::daily(daily.clone());
        for h in [30i64, 50, 75] {
            let t = SimTime::from_hours(h as f64);
            assert!((f.forecast(SimTime::START, t) - daily.at(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn noisy_forecast_error_grows_with_horizon() {
        let f = NoisyForecast::new(ConstantSignal::new(100.0), 0.02, 7);
        let now = SimTime::START;
        let mut short_err = 0.0;
        let mut long_err = 0.0;
        for k in 0..48 {
            let near = SimTime::from_hours(1.0 + k as f64 * 0.01);
            let far = SimTime::from_hours(24.0 + k as f64 * 0.01);
            short_err += (f.forecast(now, near) - 100.0).abs();
            long_err += (f.forecast(now, far) - 100.0).abs();
        }
        assert!(
            long_err > 5.0 * short_err,
            "near {short_err} far {long_err}"
        );
    }

    #[test]
    fn noisy_forecast_is_repeatable_and_nonnegative() {
        let f = NoisyForecast::new(ConstantSignal::new(50.0), 0.5, 3);
        let a = f.forecast(SimTime::START, SimTime::from_hours(48.0));
        let b = f.forecast(SimTime::START, SimTime::from_hours(48.0));
        assert_eq!(a, b);
        for h in 0..200 {
            assert!(f.forecast(SimTime::START, SimTime::from_hours(h as f64)) >= 0.0);
        }
    }

    #[test]
    fn precharge_strategy_acts_on_forecast_deficit() {
        use mgopt_units::Energy;
        // Net power: +100 kW for 6 h, then −500 kW for 18 h.
        let net = FnSignal::new(|t: SimTime| {
            if t.hours() % 24.0 < 6.0 {
                100.0
            } else {
                -500.0
            }
        });
        let mut strategy = ForecastPrecharge::new(Box::new(PerfectForecast::new(net)), 250.0);
        // Deficit over next 24 h: 18 h * 500 kW = 9,000 kWh.
        let deficit = strategy.forecast_deficit_kwh(SimTime::START);
        assert!((deficit - 9_000.0).abs() < 1e-9);
        assert_eq!(strategy.worst_forecast_net_kw(SimTime::START), -500.0);

        // Small battery (soc covers less than the deficit) during a good
        // hour: pre-charge at the configured rate.
        let state = BusState {
            t: SimTime::START,
            dt: SimDuration::from_hours(1.0),
            p_delta: Power::from_kw(100.0),
            soc: 0.5,
            capacity: Energy::from_kwh(2_000.0),
        };
        let req = strategy.storage_request(&state);
        assert_eq!(req.kw(), 250.0, "grid pre-charge at the configured rate");

        // Same forecast, but currently in the trough: discharge instead.
        let state_trough = BusState {
            t: SimTime::from_hours(8.0),
            p_delta: Power::from_kw(-500.0),
            ..state
        };
        let req = strategy.storage_request(&state_trough);
        assert_eq!(req.kw(), -500.0, "no charging through the peak");

        // Huge battery: plain self-consumption.
        let state_big = BusState {
            capacity: Energy::from_kwh(50_000.0),
            ..state
        };
        let req = strategy.storage_request(&state_big);
        assert_eq!(req.kw(), 100.0);
        assert_eq!(strategy.name(), "forecast-precharge");
    }

    #[test]
    fn precharge_reduces_peak_imports_end_to_end() {
        use crate::actor::SignalActor;
        use crate::microgrid::Microgrid;
        use crate::record::MemoryMonitor;
        use mgopt_storage::SimpleBattery;
        use mgopt_units::Energy;

        // Load: 50 kW baseline with a 4 h / 400 kW evening peak — small
        // enough for the battery to carry entirely once pre-charged.
        let day_load = |t: SimTime| {
            let h = t.hours() % 24.0;
            if (12.0..16.0).contains(&h) {
                400.0
            } else {
                50.0
            }
        };
        let build = |strategy: Box<dyn DispatchStrategy>| -> Microgrid {
            Microgrid::new(
                vec![Box::new(SignalActor::consumer(
                    "dc",
                    FnSignal::new(day_load),
                ))],
                Box::new(SimpleBattery::new(
                    Energy::from_kwh(2_500.0),
                    0.5,
                    0.1,
                    Power::from_kw(400.0),
                    Power::from_kw(400.0),
                    0.95,
                )),
                strategy,
            )
        };

        let run = |mut mg: Microgrid| -> f64 {
            let mut mon = MemoryMonitor::new();
            mg.run(
                SimTime::START,
                SimDuration::from_days(4),
                SimDuration::from_hours(1.0),
                &mut [&mut mon],
            );
            // Peak import after the first (warm-up) day.
            mon.records()[24..]
                .iter()
                .map(|r| r.grid_import().kw())
                .fold(0.0, f64::max)
        };

        // Plain self-consumption: the battery drains on day one and there
        // is never surplus to recharge it, so evenings import 400 kW.
        let plain_peak = run(build(Box::<crate::dispatch::SelfConsumption>::default()));
        // Pre-charge at 150 kW during off-peak hours: evening rides on the
        // battery; peak import becomes 50 + 150 = 200 kW.
        let forecast_net = FnSignal::new(move |t: SimTime| -day_load(t));
        let precharge_peak = run(build(Box::new(ForecastPrecharge::new(
            Box::new(PerfectForecast::new(forecast_net)),
            150.0,
        ))));
        assert!(
            precharge_peak < 0.6 * plain_peak,
            "pre-charging should shave the evening import peak: {precharge_peak} vs {plain_peak}"
        );
    }
}

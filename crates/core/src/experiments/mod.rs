//! One driver per paper experiment.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`tables`] | Tables 1 & 2 — candidate compositions per site |
//! | [`fig2`] | Figure 2 — Pareto fronts + candidate markers |
//! | [`fig3`] | Figure 3 — naive 20-year emission projection |
//! | [`fig4`] | Figure 4 — coverage surface without batteries |
//! | [`search`] | §4.4 — NSGA-II vs exhaustive search performance |
//! | [`beyond`] | §4.3 — objectives beyond carbon (cost, degradation, …) |
//! | [`pruned`] | §4.4 future work — multi-fidelity successive halving |
//! | [`robustness`] | related work — Monte-Carlo interannual robustness |

pub mod beyond;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod pruned;
pub mod robustness;
pub mod search;
pub mod tables;

use mgopt_microgrid::AnnualResult;
use serde::{Deserialize, Serialize};

/// One row of the paper's candidate tables (Tables 1 and 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateRow {
    /// Wind capacity, MW.
    pub wind_mw: f64,
    /// Solar capacity, MW.
    pub solar_mw: f64,
    /// Battery capacity, MWh.
    pub battery_mwh: f64,
    /// Embodied emissions, tCO2.
    pub embodied_t: f64,
    /// Operational emissions, tCO2/day.
    pub operational_t_per_day: f64,
    /// On-site coverage, percent.
    pub coverage_pct: f64,
    /// Battery equivalent full cycles per year.
    pub battery_cycles: f64,
}

impl CandidateRow {
    /// Build a row from a simulation result.
    pub fn from_result(r: &AnnualResult) -> Self {
        Self {
            wind_mw: r.composition.wind_mw(),
            solar_mw: r.composition.solar_mw(),
            battery_mwh: r.composition.battery_mwh(),
            embodied_t: r.metrics.embodied_t,
            operational_t_per_day: r.metrics.operational_t_per_day,
            coverage_pct: r.metrics.coverage_pct(),
            battery_cycles: r.metrics.battery_cycles,
        }
    }

    /// The paper's `(wind MW, solar MW, battery MWh)` label.
    pub fn label(&self) -> String {
        format!(
            "({:.0}, {:.0}, {:.0})",
            self.wind_mw, self.solar_mw, self.battery_mwh
        )
    }
}

//! Calibration probe: prints capacity factors and the paper's Table 1/2
//! candidate rows for both sites, for comparison against the paper.

use mgopt_microgrid::{simulate_year, Composition, SimConfig, Site};
use mgopt_units::SimDuration;
use mgopt_workload::HpcWorkload;

fn main() {
    let step = SimDuration::from_hours(1.0);
    let load = HpcWorkload::perlmutter_like(42).generate(step);
    let cfg = SimConfig::default();

    for (site, rows) in [
        (
            Site::houston(),
            vec![
                Composition::BASELINE,
                Composition::new(4, 0.0, 7_500.0),
                Composition::new(3, 8_000.0, 22_500.0),
                Composition::new(4, 12_000.0, 52_500.0),
                Composition::new(10, 40_000.0, 60_000.0),
            ],
        ),
        (
            Site::berkeley(),
            vec![
                Composition::BASELINE,
                Composition::new(1, 4_000.0, 22_500.0),
                Composition::new(0, 12_000.0, 37_500.0),
                Composition::new(3, 12_000.0, 52_500.0),
                Composition::new(10, 40_000.0, 60_000.0),
            ],
        ),
    ] {
        let data = site.prepare(step, 42);
        println!(
            "== {} | solar CF {:.3} wind CF {:.3} | CI mean {:.1}",
            data.site.name,
            data.solar_capacity_factor(),
            data.wind_capacity_factor(),
            data.ci_g_per_kwh.mean()
        );
        println!(
            "{:>6} {:>6} {:>8} | {:>9} {:>8} {:>7} {:>7}",
            "windMW", "solMW", "battMWh", "embodied", "op t/d", "cov%", "cycles"
        );
        for c in rows {
            let r = simulate_year(&data, &load, &c, &cfg);
            println!(
                "{:>6.0} {:>6.0} {:>8.1} | {:>9.0} {:>8.2} {:>7.2} {:>7.0}",
                c.wind_mw(),
                c.solar_mw(),
                c.battery_mwh(),
                r.metrics.embodied_t,
                r.metrics.operational_t_per_day,
                r.metrics.coverage_pct(),
                r.metrics.battery_cycles
            );
        }
    }
}

// mgopt-lint-fixture: role=env-table
//! | Variable | Effect |
//! | --- | --- |
//! | `MGOPT_FAST` | shrink fixture workloads |

pub fn read_documented() -> bool {
    std::env::var("MGOPT_FAST").is_ok()
}

//! Optimizer benchmarks: non-dominated sorting at the paper's space size,
//! hypervolume, and NSGA-II overhead on a synthetic objective.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mgopt_optimizer::pareto::{fast_non_dominated_sort, hypervolume_2d, non_dominated_indices};
use mgopt_optimizer::{FnProblem, Nsga2Config, Nsga2Optimizer};

fn synthetic_points(n: usize) -> Vec<Vec<f64>> {
    // Deterministic pseudo-random 2-D points.
    let mut state = 0x2545f4914f6cdd1du64;
    (0..n)
        .map(|_| {
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            vec![next() * 16.0, next() * 40_000.0]
        })
        .collect()
}

fn bench_pareto_tools(c: &mut Criterion) {
    let points = synthetic_points(1_089);
    let mut group = c.benchmark_group("pareto");
    group.bench_function("non_dominated_1089", |b| {
        b.iter(|| black_box(non_dominated_indices(black_box(&points))))
    });
    group.bench_function("fast_sort_1089", |b| {
        b.iter(|| black_box(fast_non_dominated_sort(black_box(&points))))
    });
    group.bench_function("hypervolume_1089", |b| {
        b.iter(|| black_box(hypervolume_2d(black_box(&points), &[20.0, 50_000.0])))
    });
    group.finish();
}

fn bench_nsga2_overhead(c: &mut Criterion) {
    // A cheap objective isolates the genetic-machinery cost.
    let problem = FnProblem::new(vec![11, 11, 9], 2, |g| {
        let wind = g[0] as f64 * 3.0;
        let solar = g[1] as f64 * 4.0;
        let battery = g[2] as f64 * 7.5;
        let op = (16.0 - 0.6 * wind - 0.25 * solar - 0.05 * battery).max(0.0);
        let embodied = wind * 348.7 + solar * 630.0 + battery * 62.0;
        vec![op, embodied]
    });
    let mut group = c.benchmark_group("nsga2");
    group.sample_size(20);
    group.bench_function("paper_settings_350_trials", |b| {
        b.iter(|| {
            let opt = Nsga2Optimizer::new(Nsga2Config {
                population_size: 50,
                max_trials: 350,
                seed: 42,
                ..Nsga2Config::default()
            });
            black_box(opt.run(black_box(&problem)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pareto_tools, bench_nsga2_overhead);
criterion_main!(benches);

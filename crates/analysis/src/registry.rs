//! Cross-file registry rules: R3 (env-var registry) and R4
//! (wire/telemetry schema drift). Unlike the per-file rules these need
//! the whole linted set at once — a variable read in one crate must be
//! documented in another, an error code declared in `core::wire` must
//! appear in fixtures and docs elsewhere.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{in_regions, Tok, Token};
use crate::report::{Finding, Rule};
use crate::{Role, Workspace};

/// Env vars this repo owns all start with this prefix. (Kept as a bare
/// prefix so the linter's own source never registers as a reader.)
const ENV_PREFIX: &str = "MGOPT_";

fn is_env_name(s: &str) -> bool {
    s.len() > ENV_PREFIX.len()
        && s.starts_with(ENV_PREFIX)
        && s[ENV_PREFIX.len()..]
            .bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
}

/// Pull every `MGOPT_*` name out of one line of doc-table text.
fn env_names_in(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(rel) = text[i..].find(ENV_PREFIX) {
        let start = i + rel;
        let mut end = start + ENV_PREFIX.len();
        while bytes
            .get(end)
            .is_some_and(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || *b == b'_')
        {
            end += 1;
        }
        if end > start + ENV_PREFIX.len() {
            out.push(text[start..end].to_string());
        }
        i = end;
    }
    out
}

/// R3: every `MGOPT_*` string literal read anywhere must have a row in
/// the bench env-var doc table, and every row must correspond to a real
/// read — a registry, not a museum.
pub fn env_registry(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(table) = ws.sources.iter().find(|f| f.has_role(Role::EnvTable)) else {
        return;
    };
    // Documented: `//! | `MGOPT_X` | ... |` rows in the table file.
    let mut documented: BTreeMap<String, u32> = BTreeMap::new();
    for c in &table.lexed.comments {
        let t = c.text.trim();
        if !t.starts_with('|') {
            continue;
        }
        for name in env_names_in(t) {
            documented.entry(name).or_insert(c.line);
        }
    }
    // Used: exact-match string literals anywhere in the linted set
    // (test code included — `MGOPT_BLESS` lives in a test).
    let mut used: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for f in &ws.sources {
        for t in &f.lexed.tokens {
            if let Tok::Str(s) = &t.tok {
                if is_env_name(s) {
                    used.entry(s.clone()).or_insert((f.rel.clone(), t.line));
                }
            }
        }
    }
    for (name, (file, line)) in &used {
        if !documented.contains_key(name) {
            out.push(Finding {
                file: file.clone(),
                line: *line,
                rule: Rule::EnvRegistry,
                message: format!(
                    "env var `{name}` is read here but missing from the `{}` doc table",
                    table.rel
                ),
            });
        }
    }
    for (name, line) in &documented {
        if !used.contains_key(name) {
            out.push(Finding {
                file: table.rel.clone(),
                line: *line,
                rule: Rule::EnvRegistry,
                message: format!("env var `{name}` is documented here but never read"),
            });
        }
    }
}

/// R4 (wire half): every `ErrorCode` variant declared in `core::wire`
/// must appear in the golden rejection fixtures / wire_golden tests and
/// in the `src/lib.rs` wire spec — new failure modes ship with pinned
/// bytes and docs, or not at all.
pub fn wire_schema(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(wire) = ws.sources.iter().find(|f| f.has_role(Role::Wire)) else {
        return;
    };
    let variants = enum_variants(&wire.lexed.tokens, "ErrorCode");
    if variants.is_empty() {
        return;
    }
    let mut golden = String::new();
    for d in &ws.data {
        golden.push_str(&d.text);
        golden.push('\n');
    }
    for f in ws.sources.iter().filter(|f| f.has_role(Role::WireGolden)) {
        golden.push_str(&f.raw);
        golden.push('\n');
    }
    let spec: String = ws
        .sources
        .iter()
        .filter(|f| f.has_role(Role::WireSpec))
        .map(|f| f.raw.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    for (name, line) in &variants {
        if !golden.contains(name.as_str()) {
            out.push(Finding {
                file: wire.rel.clone(),
                line: *line,
                rule: Rule::SchemaDrift,
                message: format!(
                    "error code `{name}` has no golden rejection fixture (tests/fixtures/wire) \
                     or wire_golden coverage"
                ),
            });
        }
        if !spec.contains(name.as_str()) {
            out.push(Finding {
                file: wire.rel.clone(),
                line: *line,
                rule: Rule::SchemaDrift,
                message: format!("error code `{name}` is missing from the src/lib.rs wire spec"),
            });
        }
    }
}

/// Variants of a fieldless `enum <name> { ... }`, with their lines.
fn enum_variants(toks: &[Token], name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        let is_decl = matches!(&toks[i].tok, Tok::Ident(s) if s == "enum")
            && matches!(&toks[i + 1].tok, Tok::Ident(s) if s == name)
            && matches!(toks[i + 2].tok, Tok::Punct('{'));
        if !is_decl {
            i += 1;
            continue;
        }
        let mut j = i + 3;
        let mut depth = 1usize;
        while j < toks.len() && depth > 0 {
            match &toks[j].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                // Skip attribute contents: `#[...]`.
                Tok::Punct('#')
                    if depth == 1
                        && matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('['))) =>
                {
                    let mut bd = 0usize;
                    j += 1;
                    while j < toks.len() {
                        match toks[j].tok {
                            Tok::Punct('[') => bd += 1,
                            Tok::Punct(']') => {
                                bd -= 1;
                                if bd == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                Tok::Ident(v)
                    if depth == 1
                        && matches!(
                            toks.get(j + 1).map(|t| &t.tok),
                            Some(Tok::Punct(',')) | Some(Tok::Punct('}'))
                        ) =>
                {
                    out.push((v.clone(), toks[j].line));
                }
                _ => {}
            }
            j += 1;
        }
        i = j;
    }
    out
}

/// One `Event::new("kind")...` builder chain found in code.
struct EmitSite {
    kind: String,
    fields: BTreeSet<String>,
    file: String,
    line: u32,
}

/// R4 (telemetry half): every event kind emitted in production code
/// must have an explicit `required_fields` arm in `trace_report`, the
/// emitting chain must set every required field, and every schema arm
/// must correspond to a real emitter.
pub fn telemetry_schema(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(schema_file) = ws.sources.iter().find(|f| f.has_role(Role::TraceSchema)) else {
        return;
    };
    let schema = required_fields_arms(&schema_file.lexed.tokens);
    let emits = emitted_events(ws);
    for e in &emits {
        match schema.get(&e.kind) {
            None => out.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: Rule::SchemaDrift,
                message: format!(
                    "event kind `{}` emitted here has no explicit arm in \
                     trace_report's required_fields schema",
                    e.kind
                ),
            }),
            Some((fields, _)) => {
                for req in fields {
                    if !e.fields.contains(req) {
                        out.push(Finding {
                            file: e.file.clone(),
                            line: e.line,
                            rule: Rule::SchemaDrift,
                            message: format!(
                                "event `{}` is emitted without required field `{req}` \
                                 (per trace_report's schema)",
                                e.kind
                            ),
                        });
                    }
                }
            }
        }
    }
    let emitted_kinds: BTreeSet<&str> = emits.iter().map(|e| e.kind.as_str()).collect();
    for (kind, (_, line)) in &schema {
        if !emitted_kinds.contains(kind.as_str()) {
            out.push(Finding {
                file: schema_file.rel.clone(),
                line: *line,
                rule: Rule::SchemaDrift,
                message: format!(
                    "schema event `{kind}` is never emitted anywhere in the workspace"
                ),
            });
        }
    }
}

/// Parse the `match kind { "x" => &["a", "b"], ... }` arms inside
/// `fn required_fields`. Returns kind → (required fields, arm line).
fn required_fields_arms(toks: &[Token]) -> BTreeMap<String, (Vec<String>, u32)> {
    let mut arms = BTreeMap::new();
    // Locate `fn required_fields` and its body braces.
    let mut start = None;
    for i in 0..toks.len().saturating_sub(1) {
        if matches!(&toks[i].tok, Tok::Ident(s) if s == "fn")
            && matches!(&toks[i + 1].tok, Tok::Ident(s) if s == "required_fields")
        {
            start = Some(i + 2);
            break;
        }
    }
    let Some(mut i) = start else {
        return arms;
    };
    while i < toks.len() && !matches!(toks[i].tok, Tok::Punct('{')) {
        i += 1;
    }
    let mut depth = 0usize;
    // Kinds awaiting their `=>` (handles `"a" | "b" => ...`), then the
    // fields collected until the next arm starts.
    let mut pending: Vec<(String, u32)> = Vec::new();
    let mut current: Vec<(String, u32)> = Vec::new();
    let mut fields: Vec<String> = Vec::new();
    let commit = |current: &mut Vec<(String, u32)>,
                  fields: &mut Vec<String>,
                  arms: &mut BTreeMap<String, (Vec<String>, u32)>| {
        for (kind, line) in current.drain(..) {
            arms.entry(kind).or_insert((fields.clone(), line));
        }
        fields.clear();
    };
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Str(s) => {
                let next_is = |c: char| matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c);
                if next_is('|') {
                    pending.push((s.clone(), toks[i].line));
                } else if next_is('=')
                    && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct('>')))
                {
                    // New arm: close out the previous one first.
                    commit(&mut current, &mut fields, &mut arms);
                    pending.push((s.clone(), toks[i].line));
                    current = std::mem::take(&mut pending);
                } else {
                    fields.push(s.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    commit(&mut current, &mut fields, &mut arms);
    arms
}

/// Every `Event::new("kind").xxx("field", ...)` chain in non-test code.
fn emitted_events(ws: &Workspace) -> Vec<EmitSite> {
    let mut out = Vec::new();
    for f in &ws.sources {
        let toks = &f.lexed.tokens;
        for i in 0..toks.len() {
            let is_new = matches!(&toks[i].tok, Tok::Ident(s) if s == "Event")
                && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
                && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "new")
                && matches!(toks.get(i + 4).map(|t| &t.tok), Some(Tok::Punct('(')));
            if !is_new || in_regions(&f.test_regions, toks[i].line) {
                continue;
            }
            let Some(Tok::Str(kind)) = toks.get(i + 5).map(|t| &t.tok) else {
                continue;
            };
            let mut fields = BTreeSet::new();
            let mut j = i + 6;
            // Capture `.m("field", ...)` setters until the statement ends.
            while j < toks.len() && !matches!(toks[j].tok, Tok::Punct(';')) {
                let is_setter = matches!(toks[j].tok, Tok::Punct('.'))
                    && matches!(
                        toks.get(j + 1).map(|t| &t.tok),
                        Some(Tok::Ident(m)) if matches!(m.as_str(), "str" | "u64" | "f64" | "bool")
                    )
                    && matches!(toks.get(j + 2).map(|t| &t.tok), Some(Tok::Punct('(')));
                if is_setter {
                    if let Some(Tok::Str(field)) = toks.get(j + 3).map(|t| &t.tok) {
                        fields.insert(field.clone());
                    }
                }
                j += 1;
            }
            out.push(EmitSite {
                kind: kind.clone(),
                fields,
                file: f.rel.clone(),
                line: toks[i].line,
            });
        }
    }
    out
}

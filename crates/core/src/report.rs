//! Plain-text renderings of the paper's tables and figures.
//!
//! The bench binaries print these; EXPERIMENTS.md embeds them. JSON
//! serialization of the underlying structs is available via serde for
//! downstream tooling.

use crate::experiments::fig2::Fig2Output;
use crate::experiments::fig3::Fig3Output;
use crate::experiments::fig4::Fig4Output;
use crate::experiments::search::SearchPerfOutput;
use crate::experiments::tables::CandidateTable;

/// Render a candidate table in the paper's Table 1/2 layout.
pub fn render_candidate_table(table: &CandidateTable) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} candidate solutions\n", table.site));
    out.push_str(
        "  Wind(MW)  Solar(MW)  Battery(MWh) |  Embodied(t)  Operat.(t/d)   Cov.(%)  Cycles\n",
    );
    out.push_str(
        "  --------  ---------  ------------ |  -----------  ------------  --------  ------\n",
    );
    for r in &table.rows {
        let cycles = if r.battery_mwh > 0.0 {
            format!("{:>6.0}", r.battery_cycles)
        } else {
            "     -".to_string()
        };
        out.push_str(&format!(
            "  {:>8.0}  {:>9.0}  {:>12.1} |  {:>11.0}  {:>12.2}  {:>8.2}  {}\n",
            r.wind_mw,
            r.solar_mw,
            r.battery_mwh,
            r.embodied_t,
            r.operational_t_per_day,
            r.coverage_pct,
            cycles
        ));
    }
    out
}

/// Render the Figure-2 Pareto front as (embodied, operational) pairs.
pub fn render_fig2(fig: &Fig2Output) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 2 — {} Pareto front ({} compositions evaluated, {} on the front)\n",
        fig.site,
        fig.evaluated,
        fig.front.len()
    ));
    out.push_str("  embodied(tCO2)  operational(tCO2/day)  composition\n");
    for p in &fig.front {
        out.push_str(&format!(
            "  {:>14.0}  {:>21.3}  {}\n",
            p.embodied_t, p.operational_t_per_day, p.label
        ));
    }
    out.push_str("  candidates (red triangles):\n");
    for c in &fig.candidates {
        out.push_str(&format!(
            "    {} -> {:.0} tCO2, {:.2} tCO2/day\n",
            c.label(),
            c.embodied_t,
            c.operational_t_per_day
        ));
    }
    out
}

/// Render the Figure-3 projection series.
pub fn render_fig3(fig: &Fig3Output) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 3 — {} naive {}-year projection (cumulative tCO2)\n",
        fig.site, fig.horizon_years
    ));
    out.push_str("  year");
    for s in &fig.series {
        out.push_str(&format!("  {:>14}", s.label));
    }
    out.push('\n');
    for y in 0..=fig.horizon_years {
        out.push_str(&format!("  {:>4}", y));
        for s in &fig.series {
            out.push_str(&format!("  {:>14.0}", s.cumulative_t[y]));
        }
        out.push('\n');
    }
    if let Some(y) = fig.baseline_becomes_worst_year {
        out.push_str(&format!(
            "  baseline becomes the worst configuration after ~{y:.1} years\n"
        ));
    }
    out
}

/// Render the Figure-4 coverage surface.
pub fn render_fig4(fig: &Fig4Output) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 4 — {} on-site renewable coverage %% (no battery)\n",
        fig.site
    ));
    out.push_str("  wind\\solar(MW)");
    for &s in &fig.solar_kw {
        out.push_str(&format!("  {:>6.0}", s / 1_000.0));
    }
    out.push('\n');
    for (w, row) in fig.coverage_pct.iter().enumerate() {
        out.push_str(&format!("  {:>14.0}", fig.wind_kw[w] / 1_000.0));
        for &v in row {
            out.push_str(&format!("  {v:>6.2}"));
        }
        out.push('\n');
    }
    out
}

/// Render the Figure-2 Pareto front as an ASCII scatter plot (the paper's
/// visual: operational emissions on y, embodied on x, front points as `o`,
/// candidates as `^`).
pub fn render_fig2_plot(fig: &Fig2Output, width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 8, "plot too small to be readable");
    let x_max = fig
        .front
        .iter()
        .map(|p| p.embodied_t)
        .fold(1.0f64, f64::max);
    let y_max = fig
        .front
        .iter()
        .map(|p| p.operational_t_per_day)
        .fold(1e-9f64, f64::max);

    let mut grid = vec![vec![' '; width]; height];
    let place = |grid: &mut Vec<Vec<char>>, x: f64, y: f64, c: char| {
        let col = ((x / x_max) * (width - 1) as f64).round() as usize;
        let row = (height - 1) - ((y / y_max) * (height - 1) as f64).round() as usize;
        let col = col.min(width - 1);
        let row = row.min(height - 1);
        grid[row][col] = c;
    };
    for p in &fig.front {
        place(&mut grid, p.embodied_t, p.operational_t_per_day, 'o');
    }
    for c in &fig.candidates {
        place(&mut grid, c.embodied_t, c.operational_t_per_day, '^');
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{} — operational tCO2/day (y, 0..{y_max:.1}) vs embodied tCO2 (x, 0..{x_max:.0})\n",
        fig.site
    ));
    for row in &grid {
        out.push_str("  |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out
}

/// Render the §4.4 search-performance summary.
pub fn render_search_perf(s: &SearchPerfOutput) -> String {
    format!(
        "Search performance — {}\n\
         \x20 space size:              {}\n\
         \x20 NSGA-II sampled trials:  {}\n\
         \x20 NSGA-II unique sims:     {}\n\
         \x20 true Pareto front:       {}\n\
         \x20 found front:             {}\n\
         \x20 Pareto recovery:         {:.1} %\n\
         \x20 IGD (normalized):        {:.4}\n\
         \x20 speed-up (evaluations):  {:.2}x\n\
         \x20 speed-up (wall time):    {:.2}x  ({:.2}s vs {:.2}s)\n",
        s.site,
        s.space_size,
        s.nsga2_sampled,
        s.nsga2_unique,
        s.true_front_size,
        s.found_front_size,
        s.recovery * 100.0,
        s.igd,
        s.speedup_by_evaluations,
        s.speedup_by_wall_time,
        s.exhaustive_seconds,
        s.nsga2_seconds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig2::Fig2Point;
    use crate::experiments::fig3;
    use crate::experiments::CandidateRow;

    fn row(w: f64, s: f64, b: f64, e: f64, o: f64, cov: f64, cyc: f64) -> CandidateRow {
        CandidateRow {
            wind_mw: w,
            solar_mw: s,
            battery_mwh: b,
            embodied_t: e,
            operational_t_per_day: o,
            coverage_pct: cov,
            battery_cycles: cyc,
        }
    }

    #[test]
    fn candidate_table_renders_paper_layout() {
        let table = CandidateTable {
            site: "Houston, TX".into(),
            rows: vec![
                row(0.0, 0.0, 0.0, 0.0, 15.54, 0.0, 0.0),
                row(12.0, 0.0, 7.5, 4_649.0, 5.88, 71.07, 153.0),
            ],
        };
        let text = render_candidate_table(&table);
        assert!(text.contains("Houston, TX"));
        assert!(text.contains("4649"));
        assert!(text.contains("15.54"));
        assert!(text.contains("71.07"));
        // Baseline has no battery: cycles column shows a dash.
        assert!(text.lines().nth(3).unwrap().trim_end().ends_with('-'));
    }

    #[test]
    fn fig2_rendering_lists_front_and_candidates() {
        let fig = Fig2Output {
            site: "Berkeley, CA".into(),
            front: vec![
                Fig2Point {
                    embodied_t: 0.0,
                    operational_t_per_day: 9.33,
                    label: "(0, 0, 0)".into(),
                },
                Fig2Point {
                    embodied_t: 4_961.0,
                    operational_t_per_day: 4.65,
                    label: "(3, 4, 22)".into(),
                },
            ],
            candidates: vec![row(3.0, 4.0, 22.5, 4_961.0, 4.65, 60.11, 82.0)],
            evaluated: 1_089,
        };
        let text = render_fig2(&fig);
        assert!(text.contains("1089 compositions"));
        assert!(text.contains("(3, 4, 22)"));
        assert!(text.contains("4961"));
    }

    #[test]
    fn fig3_rendering_has_year_rows() {
        let rows = vec![
            row(0.0, 0.0, 0.0, 0.0, 15.54, 0.0, 0.0),
            row(12.0, 0.0, 7.5, 4_649.0, 5.88, 71.07, 153.0),
        ];
        let out = fig3::run("Houston, TX", &rows, 20);
        let text = render_fig3(&out);
        assert_eq!(
            text.lines()
                .filter(|l| l.trim_start().starts_with(char::is_numeric))
                .count(),
            21
        );
        assert!(text.contains("(12, 0, 7)") || text.contains("(12, 0, 8)"));
    }

    #[test]
    fn fig4_rendering_is_a_grid() {
        let fig = Fig4Output {
            site: "Houston, TX".into(),
            solar_kw: vec![0.0, 20_000.0, 40_000.0],
            wind_kw: vec![0.0, 15_000.0, 30_000.0],
            coverage_pct: vec![
                vec![0.0, 20.0, 30.0],
                vec![35.0, 52.0, 60.0],
                vec![52.0, 65.0, 71.0],
            ],
        };
        let text = render_fig4(&fig);
        assert!(text.contains("71.00"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn fig2_plot_renders_points() {
        let fig = Fig2Output {
            site: "Houston, TX".into(),
            front: vec![
                Fig2Point {
                    embodied_t: 0.0,
                    operational_t_per_day: 15.54,
                    label: "(0, 0, 0)".into(),
                },
                Fig2Point {
                    embodied_t: 20_000.0,
                    operational_t_per_day: 5.0,
                    label: "(12, 8, 30)".into(),
                },
                Fig2Point {
                    embodied_t: 39_380.0,
                    operational_t_per_day: 0.02,
                    label: "(30, 40, 60)".into(),
                },
            ],
            candidates: vec![],
            evaluated: 1_089,
        };
        let text = render_fig2_plot(&fig, 60, 16);
        // Count markers in the grid only (the header prose contains 'o's).
        let grid_markers: usize = text.lines().skip(1).map(|l| l.matches('o').count()).sum();
        assert_eq!(grid_markers, 3);
        assert_eq!(text.lines().count(), 18, "header + grid + axis");
        // Top-left point (baseline) and bottom-right (max build) present:
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains('o'), "high-operational point at the top");
        assert!(lines[16].starts_with("  |") && lines[16].contains('o'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn fig2_plot_minimum_size() {
        let fig = Fig2Output {
            site: "X".into(),
            front: vec![],
            candidates: vec![],
            evaluated: 0,
        };
        render_fig2_plot(&fig, 5, 3);
    }

    #[test]
    fn search_perf_rendering() {
        let s = SearchPerfOutput {
            site: "Houston, TX".into(),
            space_size: 1_089,
            nsga2_sampled: 350,
            nsga2_unique: 290,
            true_front_size: 60,
            found_front_size: 50,
            recovery: 0.8,
            igd: 0.01,
            speedup_by_evaluations: 3.75,
            speedup_by_wall_time: 2.4,
            exhaustive_seconds: 24.0,
            nsga2_seconds: 10.0,
        };
        let text = render_search_perf(&s);
        assert!(text.contains("80.0 %"));
        assert!(text.contains("2.40x"));
        assert!(text.contains("1089"));
    }
}

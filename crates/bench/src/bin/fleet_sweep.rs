//! Emit `BENCH_fleet.json`: wall-clock of the uniform fleet sweep (both
//! paper sites, every composition of the space assigned fleet-wide)
//! through the interleaved [`FleetEvaluator`](mgopt_microgrid::FleetEvaluator)
//! versus sequential per-site [`BatchEvaluator`] sweeps, plus the
//! cross-engine agreement check.
//!
//! ```text
//! cargo run --release -p mgopt-bench --bin fleet_sweep
//! ```
//!
//! Writes the artifact to the repository root (next to `BENCH_sweep.json`)
//! and prints the same numbers to stdout. `MGOPT_FAST=1` shrinks the space
//! for smoke runs; `MGOPT_DENSE="<mw>,<mwh>"` runs the denser grid the
//! interleaved engine makes interactive (the artifact records the actual
//! plan count either way).

use std::path::PathBuf;
use std::time::Instant;

use mgopt_core::{fleet_plans, fleet_sweep, FleetAssignment, FleetScenario};
use mgopt_microgrid::{BatchEvaluator, Composition, Evaluator};
use serde::Serialize;

/// The artifact schema. `speedup` compares equal deliverables (per-site
/// results, peak tracking off) — sequential per-site sweeps cannot produce
/// the fleet's concurrent peak at all, so the full interleaved pass is
/// recorded separately as `interleaved_with_peak_ms_min`.
#[derive(Debug, Serialize)]
struct FleetBench {
    sites: Vec<String>,
    plans: usize,
    steps_per_year: usize,
    samples: usize,
    interleaved_ms_min: f64,
    interleaved_with_peak_ms_min: f64,
    sequential_ms_min: f64,
    speedup: f64,
    speedup_with_peak: f64,
    max_rel_error: f64,
    peak_concurrent_import_mw: f64,
    threads: usize,
}

use mgopt_bench::min_ms;

fn main() {
    let mut scenario = FleetScenario::paper();
    for m in &mut scenario.members {
        m.scenario.space = mgopt_bench::space();
    }
    let fleet = scenario.prepare();
    let plans = fleet_plans(&fleet, FleetAssignment::Uniform);
    let comps: Vec<Composition> = plans.iter().map(|p| p[0]).collect();
    let samples = 25usize;

    // Warm-up + agreement check: per-site fleet results must match
    // independent single-site batch runs on every metrics field.
    let fleet_results = fleet_sweep(&fleet, FleetAssignment::Uniform);
    let mut max_rel_error = 0.0f64;
    for (s, member) in fleet.members.iter().enumerate() {
        let independent = BatchEvaluator::new(&member.data, &member.load, &member.config.sim)
            .evaluate_batch(&comps);
        for (f, b) in fleet_results.iter().zip(&independent) {
            assert_eq!(f.per_site[s].composition, b.composition);
            let err = f.per_site[s].metrics.max_rel_error(&b.metrics).0;
            // Propagate NaN explicitly — f64::max would silently drop it
            // and let a broken engine record perfect agreement.
            if err.is_nan() || err > max_rel_error {
                max_rel_error = err;
            }
        }
    }
    assert!(
        max_rel_error <= 1e-9,
        "fleet and batch engines disagree: max relative error {max_rel_error:e}"
    );
    let peak_mw = fleet_results
        .iter()
        .filter_map(|r| r.fleet.peak_concurrent_import_kw)
        .fold(0.0f64, f64::max)
        / 1e3;

    let mut interleaved_ms = Vec::with_capacity(samples);
    let mut with_peak_ms = Vec::with_capacity(samples);
    let mut sequential_ms = Vec::with_capacity(samples);
    let time_interleaved = |track_peak: bool, out: &mut Vec<f64>| {
        let ev = fleet.evaluator().with_peak_tracking(track_peak);
        let t0 = Instant::now();
        std::hint::black_box(ev.evaluate_plans(&plans));
        out.push(t0.elapsed().as_secs_f64() * 1e3);
    };
    let time_sequential = |out: &mut Vec<f64>| {
        let t0 = Instant::now();
        for member in &fleet.members {
            std::hint::black_box(
                BatchEvaluator::new(&member.data, &member.load, &member.config.sim)
                    .evaluate_batch(&comps),
            );
        }
        out.push(t0.elapsed().as_secs_f64() * 1e3);
    };
    // Rotate the A/B/C order per sample so clock drift (thermal throttling
    // on small hosts) cannot systematically favor any engine.
    for k in 0..samples {
        match k % 3 {
            0 => {
                time_interleaved(false, &mut interleaved_ms);
                time_sequential(&mut sequential_ms);
                time_interleaved(true, &mut with_peak_ms);
            }
            1 => {
                time_sequential(&mut sequential_ms);
                time_interleaved(true, &mut with_peak_ms);
                time_interleaved(false, &mut interleaved_ms);
            }
            _ => {
                time_interleaved(true, &mut with_peak_ms);
                time_interleaved(false, &mut interleaved_ms);
                time_sequential(&mut sequential_ms);
            }
        }
    }

    let interleaved_min = min_ms(&interleaved_ms);
    let with_peak_min = min_ms(&with_peak_ms);
    let sequential_min = min_ms(&sequential_ms);
    let bench = FleetBench {
        sites: fleet.names.clone(),
        plans: plans.len(),
        steps_per_year: fleet.members[0].data.len(),
        samples,
        interleaved_ms_min: interleaved_min,
        interleaved_with_peak_ms_min: with_peak_min,
        sequential_ms_min: sequential_min,
        speedup: sequential_min / interleaved_min,
        speedup_with_peak: sequential_min / with_peak_min,
        max_rel_error,
        peak_concurrent_import_mw: peak_mw,
        threads: rayon::current_num_threads(),
    };

    println!(
        "fleet sweep of {} plans x {} sites ({} steps): interleaved {:.1} ms, \
         sequential per-site {:.1} ms, speedup {:.2}x",
        bench.plans,
        bench.sites.len(),
        bench.steps_per_year,
        interleaved_min,
        sequential_min,
        bench.speedup
    );
    println!(
        "with concurrent-peak tracking (a fleet metric sequential per-site \
         sweeps cannot produce): {:.1} ms, {:.2}x",
        with_peak_min, bench.speedup_with_peak
    );
    println!(
        "fleet peak concurrent grid import across plans: {:.2} MW",
        peak_mw
    );

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet.json");
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench artifact");
    std::fs::write(&path, json + "\n").expect("write BENCH_fleet.json");
    println!("[artifact] {}", path.display());
}

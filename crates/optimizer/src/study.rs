//! The Optuna-style `Study` front end.
//!
//! A [`Study`] owns a sampler and exposes `optimize(problem)`, returning an
//! [`OptimizationResult`] with the full trial history, the Pareto front,
//! and bookkeeping for the paper's §4.4 search-performance comparison
//! (sampled vs unique trials, wall time).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::exhaustive::exhaustive_search;
use crate::nsga2::{Nsga2Config, Nsga2Optimizer};
use crate::pareto::non_dominated_trials;
use crate::problem::{Problem, Trial};
use crate::random_search::random_search;

/// The sampling strategy of a study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Sampler {
    /// NSGA-II genetic sampling (the paper's configuration).
    Nsga2(Nsga2Config),
    /// Uniform random sampling without replacement.
    Random {
        /// Number of trials.
        n_trials: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Full enumeration of the space.
    Exhaustive,
}

/// The outcome of an optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationResult {
    /// Every sampled trial in order (duplicates included, like Optuna).
    pub history: Vec<Trial>,
    /// Number of sampled trials (duplicates included).
    pub sampled_trials: usize,
    /// Number of unique objective evaluations actually computed.
    pub unique_evaluations: usize,
    /// Wall-clock duration of the run in seconds (0 until run via `Study`).
    pub wall_seconds: f64,
    /// Sampled genomes answered from the NSGA-II memo cache (duplicates
    /// within and across generations). Zero for cacheless samplers.
    /// Defaulted so artifacts written before this field existed still load.
    #[serde(default)]
    pub cache_hits: usize,
    /// Sampled genomes that required a fresh objective evaluation. Zero
    /// for cacheless samplers (which report via `unique_evaluations`).
    #[serde(default)]
    pub cache_misses: usize,
}

impl OptimizationResult {
    /// Assemble a result from a trial history.
    pub fn from_history(history: Vec<Trial>, sampled: usize, unique: usize) -> Self {
        Self {
            history,
            sampled_trials: sampled,
            unique_evaluations: unique,
            wall_seconds: 0.0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Memo-cache hit rate over sampled genomes, in `[0, 1]`. `None` when
    /// the sampler recorded no cache activity (random / exhaustive runs).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// The non-dominated trials of the history (deduplicated by genome).
    pub fn pareto_front(&self) -> Vec<Trial> {
        non_dominated_trials(&self.history)
    }

    /// Best trial for a single objective index, among the *feasible*
    /// trials — histories of constrained problems record every sampled
    /// violation, and a cap-breaking genome must not win on an objective.
    /// When nothing sampled was feasible, falls back to the
    /// constraint-dominance ordering: least-violating first, objective as
    /// the tiebreak.
    pub fn best_by(&self, objective: usize) -> Option<&Trial> {
        let cmp = |a: &&Trial, b: &&Trial| {
            a.objectives[objective]
                .partial_cmp(&b.objectives[objective])
                .expect("NaN objective")
        };
        self.history
            .iter()
            .filter(|t| t.is_feasible())
            .min_by(cmp)
            .or_else(|| {
                self.history.iter().min_by(|a, b| {
                    a.total_violation()
                        .partial_cmp(&b.total_violation())
                        .expect("NaN violation")
                        .then_with(|| cmp(a, b))
                })
            })
    }
}

/// An optimization study (Optuna parity: a sampler plus bookkeeping).
#[derive(Debug, Clone)]
pub struct Study {
    sampler: Sampler,
}

impl Study {
    /// Create a study with the given sampler.
    pub fn new(sampler: Sampler) -> Self {
        Self { sampler }
    }

    /// The paper's configuration: NSGA-II, 350 trials, population 50.
    pub fn paper_nsga2(seed: u64) -> Self {
        Self::new(Sampler::Nsga2(Nsga2Config {
            population_size: 50,
            max_trials: 350,
            seed,
            ..Nsga2Config::default()
        }))
    }

    /// The sampler in use.
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// Run the study against a problem, timing the wall clock.
    pub fn optimize(&self, problem: &dyn Problem) -> OptimizationResult {
        // mgopt-lint: allow(determinism) — wall_seconds is a reporting artifact; fronts never depend on it
        let start = Instant::now();
        let mut result = match &self.sampler {
            Sampler::Nsga2(cfg) => Nsga2Optimizer::new(cfg.clone()).run(problem),
            Sampler::Random { n_trials, seed } => random_search(problem, *n_trials, *seed),
            Sampler::Exhaustive => exhaustive_search(problem),
        };
        result.wall_seconds = start.elapsed().as_secs_f64();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;

    fn problem() -> FnProblem<impl Fn(&[u16]) -> Vec<f64> + Sync> {
        FnProblem::new(vec![11, 9], 2, |g| {
            vec![g[0] as f64, (10 - g[0]) as f64 + g[1] as f64]
        })
    }

    #[test]
    fn exhaustive_study_finds_complete_front() {
        let result = Study::new(Sampler::Exhaustive).optimize(&problem());
        assert_eq!(result.sampled_trials, 99);
        let front = result.pareto_front();
        // Front: all g0 with g1 = 0 -> 11 points.
        assert_eq!(front.len(), 11);
        assert!(result.wall_seconds >= 0.0);
    }

    #[test]
    fn nsga2_study_runs_with_paper_settings() {
        let result = Study::paper_nsga2(1).optimize(&problem());
        assert_eq!(result.sampled_trials, 350);
        assert!(result.unique_evaluations <= 99, "space has 99 points");
        assert!(!result.pareto_front().is_empty());
    }

    #[test]
    fn random_study_samples() {
        let result = Study::new(Sampler::Random {
            n_trials: 40,
            seed: 5,
        })
        .optimize(&problem());
        assert_eq!(result.sampled_trials, 40);
        assert_eq!(result.unique_evaluations, 40);
    }

    #[test]
    fn best_by_objective() {
        let result = Study::new(Sampler::Exhaustive).optimize(&problem());
        let best0 = result.best_by(0).unwrap();
        assert_eq!(best0.genome[0], 0);
        let best1 = result.best_by(1).unwrap();
        assert_eq!(best1.objectives[1], 0.0);
    }

    #[test]
    fn best_by_prefers_feasible_trials() {
        use crate::problem::FnProblem;
        // Constraint g0 >= 2: the unconstrained objective-0 optimum
        // (g0 = 0) is infeasible and must not be reported as best.
        let p = FnProblem::new(vec![11, 9], 2, |g| {
            vec![g[0] as f64, (10 - g[0]) as f64 + g[1] as f64]
        })
        .with_constraints(1, |g| vec![(2.0 - g[0] as f64).max(0.0)]);
        let result = Study::new(Sampler::Exhaustive).optimize(&p);
        let best = result.best_by(0).unwrap();
        assert!(best.is_feasible());
        assert_eq!(best.genome[0], 2);
        // All-infeasible history: least-violating wins even with the worst
        // objective (same ordering the front's constraint-dominance uses),
        // with the objective only breaking violation ties.
        let impossible = FnProblem::new(vec![3], 1, |g| vec![g[0] as f64])
            .with_constraints(1, |g| vec![10.0 - g[0] as f64]);
        let result = Study::new(Sampler::Exhaustive).optimize(&impossible);
        let best = result.best_by(0).unwrap();
        assert!(!best.is_feasible());
        assert_eq!(best.genome[0], 2, "least-violating, not objective-best");
        let front = result.pareto_front();
        assert!(front.iter().any(|t| t.genome == best.genome));
        let tied =
            FnProblem::new(vec![3], 1, |g| vec![g[0] as f64]).with_constraints(1, |_| vec![1.0]);
        let result = Study::new(Sampler::Exhaustive).optimize(&tied);
        assert_eq!(result.best_by(0).unwrap().genome[0], 0);
    }

    #[test]
    fn pareto_front_trials_mutually_non_dominated() {
        let result = Study::paper_nsga2(2).optimize(&problem());
        let front = result.pareto_front();
        for a in &front {
            for b in &front {
                if a.genome != b.genome {
                    assert!(!crate::pareto::dominates(&a.objectives, &b.objectives));
                }
            }
        }
    }
}

//! HPC-facility power trace generation (Perlmutter substitute).

use mgopt_units::{SimDuration, SimTime, TimeSeries, SECONDS_PER_YEAR};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic HPC power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HpcWorkloadParams {
    /// Calibration target: exact mean power of the generated trace, kW.
    pub mean_power_kw: f64,
    /// Idle (base infrastructure + idle nodes) power as a fraction of peak.
    pub idle_fraction: f64,
    /// Nameplate peak power, kW.
    pub peak_power_kw: f64,
    /// Decorrelation time of the slow utilization drift, hours.
    pub drift_decorrelation_h: f64,
    /// Std of the slow drift in utilization units.
    pub drift_std: f64,
    /// Mean arrivals per day of large jobs that step utilization up.
    pub job_arrivals_per_day: f64,
    /// Mean duration of a large job, hours.
    pub job_duration_h: f64,
    /// Utilization step of one large job.
    pub job_utilization_step: f64,
    /// Number of maintenance windows per year (deep power dips).
    pub maintenance_windows_per_year: u32,
    /// Duration of a maintenance window, hours.
    pub maintenance_duration_h: f64,
    /// Power usage effectiveness multiplier applied to the IT load
    /// (1.0 = already included in the calibration target).
    pub pue: f64,
}

impl Default for HpcWorkloadParams {
    fn default() -> Self {
        Self {
            mean_power_kw: crate::PERLMUTTER_MEAN_KW,
            idle_fraction: 0.45,
            peak_power_kw: 2_600.0,
            drift_decorrelation_h: 36.0,
            drift_std: 0.08,
            job_arrivals_per_day: 6.0,
            job_duration_h: 5.0,
            job_utilization_step: 0.06,
            maintenance_windows_per_year: 4,
            maintenance_duration_h: 12.0,
            pue: 1.0,
        }
    }
}

/// Synthetic HPC power trace generator.
///
/// Utilization is a base level plus an AR(1) drift plus a
/// birth–death process of large jobs; power maps affinely from utilization
/// between the idle floor and nameplate peak, with rare maintenance dips to
/// the idle floor. After synthesis the trace is scaled to hit
/// `mean_power_kw` exactly (the paper quotes the trace mean, so calibration
/// is exact by construction).
#[derive(Debug, Clone)]
pub struct HpcWorkload {
    params: HpcWorkloadParams,
    seed: u64,
}

impl HpcWorkload {
    /// Create a generator.
    pub fn new(params: HpcWorkloadParams, seed: u64) -> Self {
        assert!(params.mean_power_kw > 0.0);
        assert!(params.peak_power_kw >= params.mean_power_kw);
        assert!((0.0..1.0).contains(&params.idle_fraction));
        Self { params, seed }
    }

    /// A Perlmutter-like trace: 1.62 MW mean, ~2.6 MW peak.
    pub fn perlmutter_like(seed: u64) -> Self {
        Self::new(HpcWorkloadParams::default(), seed)
    }

    /// The parameter set.
    pub fn params(&self) -> &HpcWorkloadParams {
        &self.params
    }

    /// Generate one year of facility power (kW) at the given step.
    pub fn generate(&self, step: SimDuration) -> TimeSeries {
        let step_s = step.secs();
        assert!(
            step_s > 0 && SECONDS_PER_YEAR % step_s == 0,
            "step must divide the year"
        );
        let n = (SECONDS_PER_YEAR / step_s) as usize;
        let p = &self.params;
        let mut rng = ChaCha12Rng::seed_from_u64(self.seed ^ 0x40ad_10ad);
        let steps_per_hour = 3_600.0 / step_s as f64;

        // Slow utilization drift (AR(1)).
        let rho = (-1.0 / (p.drift_decorrelation_h * steps_per_hour)).exp();
        let innovation = (1.0 - rho * rho).sqrt();
        let mut drift = 0.0f64;

        // Large-job birth/death: active job count decays with per-step
        // completion probability; arrivals are Bernoulli per step.
        let arrival_prob = p.job_arrivals_per_day / 24.0 / steps_per_hour;
        let completion_prob = 1.0 / (p.job_duration_h * steps_per_hour);
        let mut active_jobs: u32 =
            (p.job_arrivals_per_day * p.job_duration_h / 24.0).round() as u32;

        // Maintenance windows at deterministic-but-seeded days.
        let mut maintenance: Vec<(i64, i64)> = Vec::new();
        for _ in 0..p.maintenance_windows_per_year {
            let day = rng.gen_range(0..358i64);
            let start = day * 86_400 + rng.gen_range(0..12) * 3_600;
            let end = start + (p.maintenance_duration_h * 3_600.0) as i64;
            maintenance.push((start, end));
        }

        let base_util = 0.55f64;
        let mut values = Vec::with_capacity(n);
        for i in 0..n {
            let t = SimTime::from_secs(i as i64 * step_s);

            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen();
            let eps = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            drift = rho * drift + innovation * eps;

            if rng.gen::<f64>() < arrival_prob {
                active_jobs += 1;
            }
            // The completion sweep intentionally snapshots `active_jobs`:
            // jobs finishing this hour do not shrink this hour's sweep
            // (changing that would alter every calibrated trace).
            #[allow(clippy::mut_range_bound)]
            for _ in 0..active_jobs {
                if rng.gen::<f64>() < completion_prob {
                    active_jobs = active_jobs.saturating_sub(1);
                }
            }

            let mut util =
                base_util + p.drift_std * drift + p.job_utilization_step * active_jobs as f64
                    - p.job_utilization_step * (p.job_arrivals_per_day * p.job_duration_h / 24.0);
            // HPC runs near-flat through the week; a faint weekday bump.
            if !t.calendar().is_weekend() {
                util += 0.01;
            }
            let util = util.clamp(0.0, 1.0);

            let in_maintenance = maintenance
                .iter()
                .any(|&(s, e)| t.secs() >= s && t.secs() < e);
            let power = if in_maintenance {
                p.idle_fraction * p.peak_power_kw
            } else {
                (p.idle_fraction + (1.0 - p.idle_fraction) * util) * p.peak_power_kw
            };
            values.push(power * p.pue);
        }

        // Exact mean calibration, preserving shape. Clamp to nameplate.
        let mean: f64 = values.iter().sum::<f64>() / n as f64;
        let scale = p.mean_power_kw / mean;
        for v in values.iter_mut() {
            *v = (*v * scale).min(p.peak_power_kw * p.pue.max(1.0));
        }
        // Clamping can bias the mean slightly below target; one more exact
        // rescale keeps the paper's headline mean bit-exact.
        let mean2: f64 = values.iter().sum::<f64>() / n as f64;
        let scale2 = p.mean_power_kw / mean2;
        for v in values.iter_mut() {
            *v *= scale2;
        }
        TimeSeries::new(step, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::stats;

    fn hourly(seed: u64) -> TimeSeries {
        HpcWorkload::perlmutter_like(seed).generate(SimDuration::from_hours(1.0))
    }

    #[test]
    fn mean_is_exactly_calibrated() {
        for seed in 0..4 {
            let trace = hourly(seed);
            assert!(
                (trace.mean() - 1_620.0).abs() < 1e-6,
                "seed {seed}: mean {}",
                trace.mean()
            );
        }
    }

    #[test]
    fn power_is_positive_and_below_nameplate_margin() {
        let trace = hourly(1);
        assert!(trace.min() > 500.0, "min {}", trace.min());
        assert!(trace.max() < 3_000.0, "max {}", trace.max());
    }

    #[test]
    fn trace_fluctuates_like_a_real_facility() {
        let trace = hourly(2);
        let cv = trace.std() / trace.mean();
        assert!((0.02..0.35).contains(&cv), "coefficient of variation {cv}");
    }

    #[test]
    fn trace_is_autocorrelated() {
        let trace = hourly(3);
        let r1 = stats::autocorrelation(trace.values(), 1);
        assert!(r1 > 0.8, "HPC load is persistent, got lag-1 {r1}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(hourly(5), hourly(5));
        assert_ne!(hourly(5), hourly(6));
    }

    #[test]
    fn maintenance_dips_present() {
        let trace = hourly(7);
        // Maintenance covers ~48 h (0.55 % of the year) at the idle floor,
        // so the 0.3rd percentile sits well below the operating band.
        let p03 = stats::percentile(trace.values(), 0.3);
        assert!(
            p03 < 0.75 * trace.mean(),
            "expected maintenance dips, p0.3 {p03}"
        );
    }

    #[test]
    fn subhourly_generation_matches_mean() {
        let trace = HpcWorkload::perlmutter_like(8).generate(SimDuration::from_minutes(15.0));
        assert_eq!(trace.len(), 4 * 8_760);
        assert!((trace.mean() - 1_620.0).abs() < 1e-6);
    }

    #[test]
    fn custom_parameters_respected() {
        let params = HpcWorkloadParams {
            mean_power_kw: 500.0,
            peak_power_kw: 900.0,
            ..HpcWorkloadParams::default()
        };
        let trace = HpcWorkload::new(params, 1).generate(SimDuration::from_hours(1.0));
        assert!((trace.mean() - 500.0).abs() < 1e-6);
        assert!(trace.max() <= 950.0);
    }

    #[test]
    #[should_panic]
    fn peak_below_mean_panics() {
        HpcWorkload::new(
            HpcWorkloadParams {
                mean_power_kw: 1_000.0,
                peak_power_kw: 900.0,
                ..HpcWorkloadParams::default()
            },
            1,
        );
    }
}

//! The naive battery baseline: fixed power bounds, flat efficiency.

use mgopt_units::{Energy, Power, SimDuration};

use crate::Storage;

/// A battery with constant charge/discharge power limits and a constant
/// round-trip efficiency (applied symmetrically, √η each way).
///
/// This is the model most sizing papers default to; [`crate::ClcBattery`]
/// refines it with the SoC-dependent power envelope.
#[derive(Debug, Clone)]
pub struct SimpleBattery {
    capacity: Energy,
    soc: f64,
    min_soc: f64,
    max_charge: Power,
    max_discharge: Power,
    one_way_efficiency: f64,
    charged: Energy,
    discharged: Energy,
}

impl SimpleBattery {
    /// Create a battery.
    ///
    /// * `capacity` — nameplate energy capacity,
    /// * `initial_soc` — starting state of charge in `[0, 1]`,
    /// * `min_soc` — reserve floor in `[0, 1)`,
    /// * `max_charge` / `max_discharge` — terminal power limits (positive),
    /// * `round_trip_efficiency` — in `(0, 1]`, split √η per direction.
    ///
    /// # Panics
    /// Panics on non-positive capacity, out-of-range SoCs or efficiency.
    pub fn new(
        capacity: Energy,
        initial_soc: f64,
        min_soc: f64,
        max_charge: Power,
        max_discharge: Power,
        round_trip_efficiency: f64,
    ) -> Self {
        assert!(capacity.kwh() > 0.0, "capacity must be positive");
        assert!(
            (0.0..=1.0).contains(&initial_soc),
            "initial_soc out of range"
        );
        assert!((0.0..1.0).contains(&min_soc), "min_soc out of range");
        assert!(initial_soc >= min_soc, "initial_soc below reserve");
        assert!(max_charge.kw() > 0.0 && max_discharge.kw() > 0.0);
        assert!(
            round_trip_efficiency > 0.0 && round_trip_efficiency <= 1.0,
            "round-trip efficiency must be in (0, 1]"
        );
        Self {
            capacity,
            soc: initial_soc,
            min_soc,
            max_charge,
            max_discharge,
            one_way_efficiency: round_trip_efficiency.sqrt(),
            charged: Energy::ZERO,
            discharged: Energy::ZERO,
        }
    }

    /// Convenience constructor with the defaults used across the workspace:
    /// C/2 power rating, 90 % round trip, 10 % reserve, starts full.
    pub fn with_defaults(capacity: Energy) -> Self {
        let c_over_2 = Power::from_kw(capacity.kwh() / 2.0);
        Self::new(capacity, 1.0, 0.1, c_over_2, c_over_2, 0.90)
    }
}

impl Storage for SimpleBattery {
    fn capacity(&self) -> Energy {
        self.capacity
    }

    fn soc(&self) -> f64 {
        self.soc
    }

    fn min_soc(&self) -> f64 {
        self.min_soc
    }

    fn update(&mut self, power: Power, dt: SimDuration) -> Power {
        if dt.is_zero() || power == Power::ZERO {
            return Power::ZERO;
        }
        let hours = dt.hours();
        if power.kw() > 0.0 {
            // Charge: bounded by the power limit and remaining headroom
            // (cell side: terminal energy * efficiency is what lands).
            let p = power.min(self.max_charge);
            let headroom_kwh = (1.0 - self.soc) * self.capacity.kwh();
            let max_terminal_kwh = headroom_kwh / self.one_way_efficiency;
            let terminal_kwh = (p.kw() * hours).min(max_terminal_kwh);
            let actual = Power::from_kw(terminal_kwh / hours);
            self.soc += terminal_kwh * self.one_way_efficiency / self.capacity.kwh();
            self.soc = self.soc.min(1.0);
            self.charged += Energy::from_kwh(terminal_kwh);
            actual
        } else {
            // Discharge: bounded by the power limit and usable energy
            // (terminal energy = cell energy * efficiency).
            let p = (-power).min(self.max_discharge);
            let usable_kwh = (self.soc - self.min_soc).max(0.0) * self.capacity.kwh();
            let max_terminal_kwh = usable_kwh * self.one_way_efficiency;
            let terminal_kwh = (p.kw() * hours).min(max_terminal_kwh);
            let actual = Power::from_kw(terminal_kwh / hours);
            self.soc -= terminal_kwh / self.one_way_efficiency / self.capacity.kwh();
            self.soc = self.soc.max(self.min_soc);
            self.discharged += Energy::from_kwh(terminal_kwh);
            -actual
        }
    }

    fn charged_total(&self) -> Energy {
        self.charged
    }

    fn discharged_total(&self) -> Energy {
        self.discharged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn battery(soc: f64) -> SimpleBattery {
        SimpleBattery::new(
            Energy::from_kwh(1_000.0),
            soc,
            0.1,
            Power::from_kw(500.0),
            Power::from_kw(500.0),
            0.90,
        )
    }

    const DT: SimDuration = SimDuration(3_600);

    #[test]
    fn charges_within_power_limit() {
        let mut b = battery(0.5);
        let got = b.update(Power::from_kw(2_000.0), DT);
        assert_eq!(got.kw(), 500.0, "clamped to max charge power");
        // 500 kWh at sqrt(0.9) one-way: stored = 474.3 kWh
        let expected_soc = 0.5 + 500.0 * 0.9f64.sqrt() / 1_000.0;
        assert!((b.soc() - expected_soc).abs() < 1e-9);
    }

    #[test]
    fn charge_stops_at_full() {
        let mut b = battery(0.99);
        let got = b.update(Power::from_kw(500.0), DT);
        // headroom 10 kWh cell-side; terminal = 10/sqrt(0.9)
        let expected = 10.0 / 0.9f64.sqrt();
        assert!((got.kw() - expected).abs() < 1e-9);
        assert!((b.soc() - 1.0).abs() < 1e-12);
        // Further charging accepts nothing.
        assert_eq!(b.update(Power::from_kw(500.0), DT).kw(), 0.0);
    }

    #[test]
    fn discharge_respects_reserve() {
        let mut b = battery(0.2);
        let got = b.update(Power::from_kw(-500.0), DT);
        // usable 100 kWh cell-side -> terminal 100*sqrt(0.9)
        let expected = -(100.0 * 0.9f64.sqrt());
        assert!((got.kw() - expected).abs() < 1e-9);
        assert!((b.soc() - 0.1).abs() < 1e-12);
        assert_eq!(b.update(Power::from_kw(-500.0), DT).kw(), 0.0);
    }

    #[test]
    fn round_trip_efficiency_matches_spec() {
        let mut b = battery(0.1);
        // Fill up from reserve, then drain back to reserve.
        loop {
            if b.update(Power::from_kw(500.0), DT).kw() < 1e-9 {
                break;
            }
        }
        let charged = b.charged_total().kwh();
        loop {
            if b.update(Power::from_kw(-500.0), DT).kw().abs() < 1e-9 {
                break;
            }
        }
        let discharged = b.discharged_total().kwh();
        let rt = discharged / charged;
        assert!((rt - 0.90).abs() < 1e-6, "round trip {rt}");
    }

    #[test]
    fn zero_requests_are_noops() {
        let mut b = battery(0.5);
        assert_eq!(b.update(Power::ZERO, DT), Power::ZERO);
        assert_eq!(
            b.update(Power::from_kw(100.0), SimDuration::ZERO),
            Power::ZERO
        );
        assert_eq!(b.soc(), 0.5);
    }

    #[test]
    fn cycle_counting_via_throughput() {
        let mut b = battery(1.0);
        // One full usable discharge = 0.9 * 1000 * sqrt(0.9) terminal kWh.
        loop {
            if b.update(Power::from_kw(-500.0), DT).kw().abs() < 1e-9 {
                break;
            }
        }
        let efc = b.equivalent_full_cycles();
        assert!((efc - 0.9 * 0.9f64.sqrt()).abs() < 1e-6, "efc {efc}");
    }

    #[test]
    fn with_defaults_is_full_c_over_2() {
        let b = SimpleBattery::with_defaults(Energy::from_mwh(7.5));
        assert_eq!(b.soc(), 1.0);
        assert_eq!(b.min_soc(), 0.1);
        assert_eq!(b.capacity().mwh(), 7.5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        SimpleBattery::new(
            Energy::ZERO,
            0.5,
            0.1,
            Power::from_kw(1.0),
            Power::from_kw(1.0),
            0.9,
        );
    }

    #[test]
    #[should_panic(expected = "initial_soc below reserve")]
    fn initial_below_reserve_panics() {
        SimpleBattery::new(
            Energy::from_kwh(10.0),
            0.05,
            0.1,
            Power::from_kw(1.0),
            Power::from_kw(1.0),
            0.9,
        );
    }

    #[test]
    fn partial_step_charge() {
        let mut b = battery(0.5);
        let got = b.update(Power::from_kw(100.0), SimDuration::from_minutes(15.0));
        assert_eq!(got.kw(), 100.0);
        let stored = 100.0 * 0.25 * 0.9f64.sqrt();
        assert!((b.soc() - (0.5 + stored / 1_000.0)).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn soc_stays_in_bounds_under_random_dispatch(
            requests in prop::collection::vec(-800.0f64..800.0, 1..200),
            initial in 0.1f64..1.0,
        ) {
            let mut b = battery_for_prop(initial);
            let dt = SimDuration::from_minutes(15.0);
            for r in requests {
                let actual = b.update(Power::from_kw(r), dt);
                // Actual never exceeds request magnitude and has same sign.
                prop_assert!(actual.kw().abs() <= r.abs() + 1e-9);
                if actual.kw() != 0.0 {
                    prop_assert_eq!(actual.kw().signum(), r.signum());
                }
                prop_assert!(b.soc() >= b.min_soc() - 1e-9);
                prop_assert!(b.soc() <= 1.0 + 1e-9);
            }
        }

        #[test]
        fn energy_conservation(
            requests in prop::collection::vec(-800.0f64..800.0, 1..100),
        ) {
            let mut b = battery_for_prop(0.5);
            let dt = SimDuration::from_minutes(30.0);
            let initial_stored = b.stored().kwh();
            for r in requests {
                b.update(Power::from_kw(r), dt);
            }
            // stored = initial + charged*eta - discharged/eta
            let eta = 0.9f64.sqrt();
            let expected =
                initial_stored + b.charged_total().kwh() * eta - b.discharged_total().kwh() / eta;
            prop_assert!((b.stored().kwh() - expected).abs() < 1e-6);
        }
    }

    fn battery_for_prop(initial: f64) -> SimpleBattery {
        SimpleBattery::new(
            Energy::from_kwh(1_000.0),
            initial,
            0.1,
            Power::from_kw(500.0),
            Power::from_kw(500.0),
            0.90,
        )
    }
}

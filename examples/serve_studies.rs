//! Optimization-as-a-service, end to end: start the daemon on a loopback
//! TCP port, act as a wire-protocol client, and multiplex three NSGA-II
//! fleet studies over one connection — a long streamed exploratory study
//! that is **cancelled mid-flight** after its first generation, a
//! peak-capped study, and a second-seed replica — then shut the daemon
//! down cleanly. The cancelled study's terminal frame is `Cancelled`
//! (with the generations it completed); it never answers `Done`.
//!
//! Everything rides the real versioned wire format from `core::wire`
//! (newline-delimited JSON frames, strict-reject parsing); the only
//! difference from production is that client and daemon share a process.
//!
//! ```bash
//! cargo run --release --example serve_studies               # paper-sized
//! MGOPT_FAST=1 cargo run --release --example serve_studies  # smoke-sized
//! MGOPT_TRACE=trace.jsonl cargo run --release --example serve_studies
//! ```
//!
//! With `MGOPT_TRACE` set, the daemon writes its per-study audit log
//! (`study_start` / `study_done` events under `server.study` spans, plus
//! `prep_cache.*` counters); summarize it with the `trace_report` bin.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use microgrid_opt::core::wire::{
    encode_request, FleetSpec, Request, RequestFrame, Response, ResponseFrame, StudyBudget,
    StudyRequest, WIRE_VERSION,
};
use microgrid_opt::prelude::*;

fn main() {
    let fast = std::env::var("MGOPT_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);

    // -- Daemon side: bind a loopback port and serve on a thread. --------
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = Arc::new(Server::new(ServerConfig::default()));
    let daemon = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve_tcp(listener))
    };
    println!("daemon listening on {addr}");

    // -- Client side: three studies over one connection. -----------------
    let (population, max_trials) = if fast { (8, 24) } else { (20, 100) };
    let budget = |seed| StudyBudget {
        population_size: population,
        max_trials,
        seed,
    };
    let space = CompositionSpace::tiny();
    let base = StudyRequest {
        fleet: FleetSpec::Preset("paper".into()),
        space: Some(space),
        objectives: None,
        budget: budget(42),
        peak_cap_kw: None,
        stream: true,
    };
    let requests = vec![
        // A deliberately oversized streamed budget: this study is going
        // to be cancelled after its first generation, demonstrating the
        // cooperative-cancellation lifecycle.
        (
            "exploratory",
            StudyRequest {
                budget: StudyBudget {
                    max_trials: max_trials * 4,
                    ..budget(42)
                },
                ..base.clone()
            },
        ),
        (
            "peak-capped",
            StudyRequest {
                peak_cap_kw: Some(30_000.0),
                stream: false,
                ..base.clone()
            },
        ),
        (
            "replica-seed-7",
            StudyRequest {
                budget: budget(7),
                stream: false,
                ..base
            },
        ),
    ];
    const VICTIM: &str = "exploratory";

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    for (id, study) in &requests {
        let frame = RequestFrame {
            v: WIRE_VERSION,
            id: (*id).into(),
            req: Request::Study(study.clone()),
        };
        writeln!(writer, "{}", encode_request(&frame)).expect("send study");
    }
    println!("sent {} studies, multiplexed by id\n", requests.len());

    // -- Read the interleaved response stream until every study is done
    //    (or cancelled: the exploratory study is cancelled on its first
    //    streamed front). -----------------------------------------------
    let mut remaining = requests.len();
    let mut sent_cancel = false;
    let mut line = String::new();
    while remaining > 0 {
        line.clear();
        assert!(
            reader.read_line(&mut line).expect("read frame") > 0,
            "daemon hung up early"
        );
        let frame: ResponseFrame =
            serde_json::from_str(line.trim_end()).expect("decode response frame");
        match frame.resp {
            Response::Accepted(a) => println!(
                "[{}] accepted: sites {:?}, plan space {}, prep cache {}h/{}m",
                frame.id, a.sites, a.plan_space, a.prep_cache_hits, a.prep_cache_misses
            ),
            Response::Queued(q) => println!(
                "[{}] queued: {} studies ahead (process-wide cap saturated)",
                frame.id, q.ahead
            ),
            Response::Front(f) => {
                println!(
                    "[{}] generation {:>2}: {} trials sampled, front size {}",
                    frame.id,
                    f.generation,
                    f.sampled,
                    f.front.len()
                );
                if frame.id == VICTIM && !sent_cancel {
                    let cancel = RequestFrame {
                        v: WIRE_VERSION,
                        id: "cancel-exploratory".into(),
                        req: Request::Cancel(VICTIM.into()),
                    };
                    writeln!(writer, "{}", encode_request(&cancel)).expect("send cancel");
                    println!("[{VICTIM}] >> cancel requested");
                    sent_cancel = true;
                }
            }
            Response::Cancelled(c) => {
                assert_eq!(frame.id, VICTIM, "only the exploratory study was cancelled");
                println!(
                    "[{}] cancelled after {} generations ({} sampled, {} ms) — no Done frame",
                    frame.id, c.generations, c.sampled_trials, c.wall_ms
                );
                remaining -= 1;
            }
            Response::Done(d) => {
                assert_ne!(frame.id, VICTIM, "cancelled study must never answer Done");
                println!(
                    "[{}] done: {} generations, {} sampled ({} unique), {} ms",
                    frame.id, d.generations, d.sampled_trials, d.unique_evaluations, d.wall_ms
                );
                let best = d
                    .front
                    .iter()
                    .min_by(|a, b| a.objectives[0].total_cmp(&b.objectives[0]))
                    .expect("non-empty front");
                println!(
                    "      lowest-operational plan: {:?} -> {:.1} tCO2/day op, {:.0} t embodied",
                    best.genome, best.objectives[0], best.objectives[1]
                );
                for p in &d.front {
                    assert_eq!(p.violation, 0.0, "front contains an infeasible plan");
                }
                remaining -= 1;
            }
            Response::Error(e) => panic!("[{}] daemon error: {:?} {}", frame.id, e.code, e.message),
            other => panic!("[{}] unexpected frame: {other:?}", frame.id),
        }
    }

    // -- Clean shutdown: Bye, then the accept loop exits. -----------------
    let frame = RequestFrame {
        v: WIRE_VERSION,
        id: "bye".into(),
        req: Request::Shutdown,
    };
    writeln!(writer, "{}", encode_request(&frame)).expect("send shutdown");
    let mut saw_bye = false;
    loop {
        line.clear();
        if reader.read_line(&mut line).expect("read") == 0 {
            break;
        }
        let frame: ResponseFrame = serde_json::from_str(line.trim_end()).expect("decode");
        if matches!(frame.resp, Response::Bye) {
            saw_bye = true;
            break;
        }
    }
    assert!(saw_bye, "daemon closed without Bye");
    daemon
        .join()
        .expect("daemon thread")
        .expect("accept loop clean");
    println!(
        "\ndaemon shut down cleanly after {} studies, {} cancelled (peak {} in flight)",
        server.studies_done(),
        server.studies_cancelled(),
        server.peak_in_flight()
    );
}

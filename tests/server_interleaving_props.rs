//! Property: daemon study results depend only on `(fleet, budget, seed)`
//! — **never** on how concurrent studies interleave.
//!
//! Each case draws 2–4 studies (random seeds, budgets, and optional peak
//! caps), fires them all at once over one connection — so their NSGA-II
//! workers genuinely race over one shared `Arc`-prepared fleet — and
//! then replays the identical studies strictly sequentially (each `Done`
//! awaited before the next request) on a fresh daemon sharing the same
//! prepared cache. Every front must match bit for bit: same genomes,
//! same plans, same `f64` objectives.
//!
//! Two further properties pin the same invariant under the concurrency
//! machinery this daemon grew: splitting the batch across two
//! connections to one shared daemon changes nothing, and cancelling a
//! long victim study mid-flight leaves every other front bit-identical
//! while the victim gets exactly one terminal frame (`Cancelled`, never
//! `Done`).

use std::io::{BufRead, BufReader, Write};
use std::sync::{Arc, OnceLock};
use std::thread;

use proptest::prelude::*;

use microgrid_opt::core::wire::{
    encode_request, FleetSpec, PlanPoint, Request, RequestFrame, Response, ResponseFrame,
    StudyBudget, StudyRequest, WIRE_VERSION,
};
use microgrid_opt::core::PreparedCache;
use microgrid_opt::prelude::{CompositionSpace, Server, ServerConfig};

/// One prepared-scenario cache for the whole test binary: both the
/// concurrent and the sequential daemon hand out the same `Arc`s, so the
/// property is pinned over genuinely shared read-only data.
fn shared_cache() -> Arc<PreparedCache> {
    static CACHE: OnceLock<Arc<PreparedCache>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(|| Arc::new(PreparedCache::new(8))))
}

fn study(seed: u64, population_size: usize, extra_trials: usize, cap: Option<f64>) -> StudyRequest {
    StudyRequest {
        fleet: FleetSpec::Preset("paper".into()),
        space: Some(CompositionSpace {
            wind_choices: vec![0, 4],
            solar_choices_kw: vec![0.0, 16_000.0],
            battery_choices_kwh: vec![0.0, 22_500.0],
        }),
        objectives: None,
        budget: StudyBudget {
            population_size,
            max_trials: population_size + extra_trials,
            seed,
        },
        peak_cap_kw: cap,
        stream: false,
    }
}

/// Drive `studies` through one daemon connection. When `sequential`,
/// each study's `Done` is awaited before the next request is written —
/// the no-interleaving baseline. Otherwise all requests go out first and
/// the workers run concurrently. Returns each study's final front.
fn run_batch(studies: &[StudyRequest], sequential: bool) -> Vec<Vec<PlanPoint>> {
    let server = Arc::new(Server::with_cache(ServerConfig::default(), shared_cache()));
    let (client, server_end) = microgrid_opt::server::pipe::duplex();
    let join = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve_connection(server_end.reader, server_end.writer))
    };
    let mut writer = client.writer;
    let mut reader = BufReader::new(client.reader);

    let send =
        |writer: &mut microgrid_opt::server::pipe::PipeWriter, k: usize, s: &StudyRequest| {
            let frame = RequestFrame {
                v: WIRE_VERSION,
                id: format!("s{k}"),
                req: Request::Study(s.clone()),
            };
            writeln!(writer, "{}", encode_request(&frame)).unwrap();
        };
    let mut fronts: Vec<Option<Vec<PlanPoint>>> = vec![None; studies.len()];
    let recv_done_for = |reader: &mut BufReader<microgrid_opt::server::pipe::PipeReader>,
                         fronts: &mut Vec<Option<Vec<PlanPoint>>>,
                         want: usize| {
        let mut remaining = want;
        while remaining > 0 {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "early EOF");
            let frame: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
            match frame.resp {
                Response::Done(d) => {
                    let k: usize = frame.id[1..].parse().unwrap();
                    assert!(fronts[k].is_none(), "duplicate Done for {}", frame.id);
                    fronts[k] = Some(d.front);
                    remaining -= 1;
                }
                Response::Accepted(_) | Response::Queued(_) => {}
                other => panic!("unexpected frame for {}: {other:?}", frame.id),
            }
        }
    };

    if sequential {
        for (k, s) in studies.iter().enumerate() {
            send(&mut writer, k, s);
            recv_done_for(&mut reader, &mut fronts, 1);
        }
    } else {
        for (k, s) in studies.iter().enumerate() {
            send(&mut writer, k, s);
        }
        recv_done_for(&mut reader, &mut fronts, studies.len());
    }
    drop(writer); // EOF: the daemon drains and exits cleanly
    join.join().unwrap().unwrap();
    fronts.into_iter().map(Option::unwrap).collect()
}

/// Like [`run_batch`], but the studies are split across two concurrent
/// connections to one shared daemon — so the process-wide admission
/// semaphore, not the per-connection loop, is what serializes them.
fn run_split(studies: &[StudyRequest]) -> Vec<Vec<PlanPoint>> {
    let server = Arc::new(Server::with_cache(ServerConfig::default(), shared_cache()));
    let mid = studies.len() / 2;
    let halves = [studies[..mid].to_vec(), studies[mid..].to_vec()];
    let clients: Vec<_> = halves
        .into_iter()
        .map(|half| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                let (client, server_end) = microgrid_opt::server::pipe::duplex();
                let join = {
                    let server = Arc::clone(&server);
                    thread::spawn(move || {
                        server.serve_connection(server_end.reader, server_end.writer)
                    })
                };
                let mut writer = client.writer;
                let mut reader = BufReader::new(client.reader);
                for (k, s) in half.iter().enumerate() {
                    let frame = RequestFrame {
                        v: WIRE_VERSION,
                        id: format!("s{k}"),
                        req: Request::Study(s.clone()),
                    };
                    writeln!(writer, "{}", encode_request(&frame)).unwrap();
                }
                let mut fronts: Vec<Option<Vec<PlanPoint>>> = vec![None; half.len()];
                while fronts.iter().any(Option::is_none) {
                    let mut line = String::new();
                    assert!(reader.read_line(&mut line).unwrap() > 0, "early EOF");
                    let frame: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
                    match frame.resp {
                        Response::Done(d) => {
                            let k: usize = frame.id[1..].parse().unwrap();
                            fronts[k] = Some(d.front);
                        }
                        Response::Accepted(_) | Response::Queued(_) => {}
                        other => panic!("unexpected frame for {}: {other:?}", frame.id),
                    }
                }
                drop(writer);
                join.join().unwrap().unwrap();
                fronts.into_iter().map(Option::unwrap).collect::<Vec<_>>()
            })
        })
        .collect();
    clients
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect()
}

/// Fire `studies` plus a long streamed victim concurrently, cancel the
/// victim after its first `Front`, and return the non-victim fronts plus
/// the victim's terminal frames (which must be exactly one `Cancelled`).
fn run_with_cancelled_victim(
    studies: &[StudyRequest],
    victim_seed: u64,
) -> (Vec<Vec<PlanPoint>>, usize, usize) {
    let server = Arc::new(Server::with_cache(ServerConfig::default(), shared_cache()));
    let (client, server_end) = microgrid_opt::server::pipe::duplex();
    let join = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve_connection(server_end.reader, server_end.writer))
    };
    let mut writer = client.writer;
    let mut reader = BufReader::new(client.reader);
    let send = |writer: &mut microgrid_opt::server::pipe::PipeWriter, id: &str, req: Request| {
        let frame = RequestFrame {
            v: WIRE_VERSION,
            id: id.into(),
            req,
        };
        writeln!(writer, "{}", encode_request(&frame)).unwrap();
    };
    // ~50 generations of budget: a cancel sent after the first streamed
    // front always lands before the victim finishes on its own.
    let mut victim = study(victim_seed, 8, 392, None);
    victim.stream = true;
    send(&mut writer, "victim", Request::Study(victim));
    for (k, s) in studies.iter().enumerate() {
        send(&mut writer, &format!("s{k}"), Request::Study(s.clone()));
    }

    let mut fronts: Vec<Option<Vec<PlanPoint>>> = vec![None; studies.len()];
    let (mut cancelled, mut victim_done) = (0usize, 0usize);
    let mut sent_cancel = false;
    let mut victim_open = true;
    while fronts.iter().any(Option::is_none) || victim_open {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "early EOF");
        let frame: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
        match frame.resp {
            Response::Accepted(_) | Response::Queued(_) => {}
            Response::Front(_) => {
                if frame.id == "victim" && !sent_cancel {
                    send(&mut writer, "c", Request::Cancel("victim".into()));
                    sent_cancel = true;
                }
            }
            Response::Done(d) => {
                if frame.id == "victim" {
                    victim_done += 1;
                    victim_open = false;
                } else {
                    let k: usize = frame.id[1..].parse().unwrap();
                    fronts[k] = Some(d.front);
                }
            }
            Response::Cancelled(_) => {
                assert_eq!(frame.id, "victim", "Cancelled for an uncancelled study");
                cancelled += 1;
                victim_open = false;
            }
            other => panic!("unexpected frame for {}: {other:?}", frame.id),
        }
    }
    drop(writer);
    join.join().unwrap().unwrap();
    (
        fronts.into_iter().map(Option::unwrap).collect(),
        cancelled,
        victim_done,
    )
}

/// Strategy: one study = (seed, population bucket, extra trials, cap pick).
fn study_strategy() -> impl Strategy<Value = StudyRequest> {
    (0u64..6, 0usize..2, 0usize..9, 0usize..3).prop_map(|(seed, pop, extra, cap)| {
        let population_size = [4, 6][pop];
        // An unconstrained run, a loose cap, and a tight cap that bites.
        let cap = [None, Some(60_000.0), Some(25_000.0)][cap];
        study(seed, population_size, extra, cap)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn concurrent_studies_match_sequential_bit_for_bit(
        studies in proptest::strategies::collection::vec(study_strategy(), 2..=4usize)
    ) {
        let concurrent = run_batch(&studies, false);
        let sequential = run_batch(&studies, true);
        for (k, (c, s)) in concurrent.iter().zip(&sequential).enumerate() {
            prop_assert!(!c.is_empty(), "study {k} returned an empty front");
            prop_assert_eq!(c, s, "study {} diverged under interleaving", k);
        }
    }

    #[test]
    fn studies_split_across_two_connections_match_one_connection(
        studies in proptest::strategies::collection::vec(study_strategy(), 2..=4usize)
    ) {
        let split = run_split(&studies);
        let sequential = run_batch(&studies, true);
        for (k, (c, s)) in split.iter().zip(&sequential).enumerate() {
            prop_assert!(!c.is_empty(), "study {k} returned an empty front");
            prop_assert_eq!(c, s, "study {} diverged across connections", k);
        }
    }

    #[test]
    fn cancelling_a_victim_mid_study_leaves_the_rest_bit_identical(
        studies in proptest::strategies::collection::vec(study_strategy(), 2..=4usize),
        victim_seed in 0u64..6,
    ) {
        let sequential = run_batch(&studies, true);
        let (fronts, cancelled, victim_done) =
            run_with_cancelled_victim(&studies, victim_seed);
        prop_assert_eq!(victim_done, 0, "cancelled victim answered Done");
        prop_assert_eq!(cancelled, 1, "victim must get exactly one Cancelled");
        for (k, (c, s)) in fronts.iter().zip(&sequential).enumerate() {
            prop_assert!(!c.is_empty(), "study {k} returned an empty front");
            prop_assert_eq!(c, s, "study {} diverged next to a cancel", k);
        }
    }
}

//! §4.3 — optimization beyond carbon emissions.
//!
//! Three studies the paper sketches as extensions:
//!
//! 1. **Policy comparison** on a fixed composition: self-consumption vs
//!    carbon-aware grid charging vs battery-sparing dispatch — reporting
//!    emissions, cost, battery cycles and projected battery lifetime.
//! 2. **Load shifting**: how much carbon-aware rescheduling of deferrable
//!    load reduces operational emissions at several flexibility levels.
//! 3. **Three-objective search** (operational, embodied, cost) via
//!    NSGA-II, reporting the front size and extreme points.

use mgopt_microgrid::{
    shift_load_carbon_aware, simulate_year, Composition, DispatchPolicy, SimConfig,
};
use mgopt_optimizer::{Nsga2Config, Sampler, Study};
use mgopt_storage::degradation::{assess_year, DegradationParams};
use serde::{Deserialize, Serialize};

use crate::objectives::ObjectiveSet;
use crate::problem::CompositionProblem;
use crate::scenario::PreparedScenario;

/// One row of the policy-comparison study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRow {
    /// Policy name.
    pub policy: String,
    /// Operational emissions, tCO2/day.
    pub operational_t_per_day: f64,
    /// Net energy cost, USD/year.
    pub energy_cost_usd: f64,
    /// Battery equivalent full cycles per year.
    pub battery_cycles: f64,
    /// Projected battery lifetime, years (rainflow + fade model).
    pub battery_lifetime_years: f64,
    /// Coverage percent.
    pub coverage_pct: f64,
}

/// One row of the load-shifting study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShiftingRow {
    /// Fraction of daily energy that is deferrable.
    pub flexible_fraction: f64,
    /// Operational emissions, tCO2/day.
    pub operational_t_per_day: f64,
    /// Relative reduction vs the rigid load, percent.
    pub reduction_pct: f64,
}

/// Summary of the three-objective search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriObjectiveSummary {
    /// Number of non-dominated compositions found.
    pub front_size: usize,
    /// Cheapest front point (operational, embodied, cost).
    pub cheapest: Vec<f64>,
    /// Lowest-operational front point (operational, embodied, cost).
    pub cleanest: Vec<f64>,
    /// Trials sampled.
    pub sampled: usize,
}

/// Full §4.3 output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeyondCarbonOutput {
    /// Site name.
    pub site: String,
    /// The composition the policy study runs on.
    pub composition: Composition,
    /// Policy comparison rows.
    pub policies: Vec<PolicyRow>,
    /// Load-shifting rows.
    pub shifting: Vec<ShiftingRow>,
    /// Three-objective search summary.
    pub tri_objective: TriObjectiveSummary,
}

fn policy_row(
    scenario: &PreparedScenario,
    comp: &Composition,
    policy: DispatchPolicy,
) -> PolicyRow {
    let cfg = SimConfig {
        policy,
        record_soc: true,
        ..scenario.config.sim.clone()
    };
    let r = simulate_year(&scenario.data, &scenario.load, comp, &cfg);
    let degr = assess_year(&r.soc_trace_hourly, &DegradationParams::default());
    PolicyRow {
        policy: policy.name().to_string(),
        operational_t_per_day: r.metrics.operational_t_per_day,
        energy_cost_usd: r.metrics.energy_cost_usd,
        battery_cycles: r.metrics.battery_cycles,
        battery_lifetime_years: degr.projected_lifetime_years,
        coverage_pct: r.metrics.coverage_pct(),
    }
}

/// Run the §4.3 studies.
pub fn run(scenario: &PreparedScenario, comp: Composition, seed: u64) -> BeyondCarbonOutput {
    // 1. Policy comparison.
    let policies = vec![
        policy_row(scenario, &comp, DispatchPolicy::SelfConsumption),
        policy_row(
            scenario,
            &comp,
            DispatchPolicy::CarbonAwareGridCharge {
                ci_threshold_g_per_kwh: 0.8 * scenario.data.ci_g_per_kwh.mean(),
                target_soc: 0.9,
            },
        ),
        policy_row(
            scenario,
            &comp,
            DispatchPolicy::BatterySparing {
                deficit_threshold_kw: 200.0,
            },
        ),
    ];

    // 2. Load shifting at increasing flexibility.
    //
    // With on-site generation, raw grid CI is the wrong scheduling signal:
    // moving load into low-grid-CI night hours can pull it away from solar
    // surplus and *increase* imports. The effective signal is "what would a
    // marginal kWh cost in carbon right now" — zero when the microgrid has
    // surplus, grid CI otherwise (estimated against the rigid load).
    let rigid = simulate_year(&scenario.data, &scenario.load, &comp, &scenario.config.sim);
    let effective_ci = {
        let pv = &scenario.data.pv_unit_kw;
        let wind = &scenario.data.wind_unit_kw;
        let gen = pv
            .scaled(comp.solar_kw)
            .zip_with(&wind.scaled(comp.wind_turbines as f64), |a, b| a + b);
        let surplus = gen.zip_with(&scenario.load, |g, l| g - l);
        scenario
            .data
            .ci_g_per_kwh
            .zip_with(&surplus, |ci, s| if s >= 0.0 { 0.0 } else { ci })
    };
    let shifting = [0.0, 0.1, 0.2, 0.3]
        .iter()
        .map(|&flex| {
            let load = if flex > 0.0 {
                shift_load_carbon_aware(&scenario.load, &effective_ci, flex, 1.5)
            } else {
                scenario.load.clone()
            };
            let r = simulate_year(&scenario.data, &load, &comp, &scenario.config.sim);
            ShiftingRow {
                flexible_fraction: flex,
                operational_t_per_day: r.metrics.operational_t_per_day,
                reduction_pct: 100.0
                    * (1.0
                        - r.metrics.operational_t_per_day
                            / rigid.metrics.operational_t_per_day.max(1e-12)),
            }
        })
        .collect();

    // 3. Three-objective NSGA-II.
    let problem = CompositionProblem::new(scenario, ObjectiveSet::carbon_and_cost());
    let result = Study::new(Sampler::Nsga2(Nsga2Config {
        population_size: 30,
        max_trials: 180,
        seed,
        ..Nsga2Config::default()
    }))
    .optimize(&problem);
    let front = result.pareto_front();
    let cheapest = front
        .iter()
        .min_by(|a, b| a.objectives[2].partial_cmp(&b.objectives[2]).expect("NaN"))
        .map(|t| t.objectives.clone())
        .unwrap_or_default();
    let cleanest = front
        .iter()
        .min_by(|a, b| a.objectives[0].partial_cmp(&b.objectives[0]).expect("NaN"))
        .map(|t| t.objectives.clone())
        .unwrap_or_default();

    BeyondCarbonOutput {
        site: scenario.site_name().to_string(),
        composition: comp,
        policies,
        shifting,
        tri_objective: TriObjectiveSummary {
            front_size: front.len(),
            cheapest,
            cleanest,
            sampled: result.sampled_trials,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use mgopt_microgrid::CompositionSpace;

    fn output() -> BeyondCarbonOutput {
        let scenario = ScenarioConfig {
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_houston()
        }
        .prepare();
        run(&scenario, Composition::new(4, 8_000.0, 22_500.0), 3)
    }

    #[test]
    fn three_policies_compared() {
        let out = output();
        assert_eq!(out.policies.len(), 3);
        assert_eq!(out.policies[0].policy, "self-consumption");
        // Battery sparing must cycle the battery less than self-consumption.
        assert!(out.policies[2].battery_cycles < out.policies[0].battery_cycles);
        // And therefore extend its projected lifetime.
        assert!(out.policies[2].battery_lifetime_years >= out.policies[0].battery_lifetime_years);
    }

    #[test]
    fn shifting_reduces_emissions() {
        let out = output();
        assert_eq!(out.shifting.len(), 4);
        assert_eq!(out.shifting[0].flexible_fraction, 0.0);
        assert!(out.shifting[0].reduction_pct.abs() < 1e-9);
        // Battery/dispatch interactions make strict per-step monotonicity
        // too strong a claim; the end-to-end effect must be a clear win.
        assert!(
            out.shifting[3].operational_t_per_day <= out.shifting[0].operational_t_per_day + 1e-9,
            "30% flexibility should not hurt: {} -> {}",
            out.shifting[0].operational_t_per_day,
            out.shifting[3].operational_t_per_day
        );
        assert!(
            out.shifting[3].reduction_pct > 0.5,
            "30% flexibility should help, got {}%",
            out.shifting[3].reduction_pct
        );
    }

    #[test]
    fn tri_objective_front_nontrivial() {
        let out = output();
        assert!(out.tri_objective.front_size >= 3);
        assert_eq!(out.tri_objective.cheapest.len(), 3);
        // The cleanest point has operational emissions no higher than the
        // cheapest point's.
        assert!(out.tri_objective.cleanest[0] <= out.tri_objective.cheapest[0]);
    }
}

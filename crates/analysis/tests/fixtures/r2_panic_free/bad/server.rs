// mgopt-lint-fixture: role=server
pub fn handle(frames: &[u8]) -> u8 {
    let first = frames[0];
    let parsed: Option<u8> = Some(first);
    parsed.unwrap()
}

pub fn reject() {
    panic!("connection handlers must answer with error frames instead");
}

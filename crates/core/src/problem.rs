//! The composition space as an optimizer [`Problem`].
//!
//! Scalar evaluations go through the reference [`simulate_year`] path;
//! cohort evaluations override [`Problem::evaluate_batch`] /
//! [`MultiFidelityProblem::evaluate_batch_at_fidelity`] with the columnar
//! [`BatchEvaluator`], so NSGA-II generations, exhaustive sweeps, random
//! cohorts and successive-halving rungs are each a single time-major pass
//! over the site data.

use mgopt_microgrid::{
    simulate_period, simulate_year, BatchEvaluator, Composition, CompositionSpace, Evaluator,
};
use mgopt_optimizer::{Genome, MultiFidelityProblem, Problem};

use crate::objectives::ObjectiveSet;
use crate::scenario::PreparedScenario;

/// Adapts a prepared scenario to the optimizer's problem interface.
///
/// Genome layout: `[wind index, solar index, battery index]` into the
/// scenario's [`CompositionSpace`] choice lists.
pub struct CompositionProblem<'a> {
    scenario: &'a PreparedScenario,
    objectives: ObjectiveSet,
    dims: Vec<usize>,
}

impl<'a> CompositionProblem<'a> {
    /// Create a problem over the scenario's space and objective set.
    pub fn new(scenario: &'a PreparedScenario, objectives: ObjectiveSet) -> Self {
        let space = &scenario.config.space;
        let dims = vec![
            space.wind_choices.len(),
            space.solar_choices_kw.len(),
            space.battery_choices_kwh.len(),
        ];
        assert!(!objectives.is_empty(), "at least one objective required");
        Self {
            scenario,
            objectives,
            dims,
        }
    }

    /// The composition encoded by a genome.
    pub fn composition(&self, genome: &[u16]) -> Composition {
        let space = &self.scenario.config.space;
        Composition::new(
            space.wind_choices[genome[0] as usize],
            space.solar_choices_kw[genome[1] as usize],
            space.battery_choices_kwh[genome[2] as usize],
        )
    }

    /// Genome encoding a composition (must lie on the grid).
    pub fn genome_of(&self, c: &Composition) -> Option<Vec<u16>> {
        let space = &self.scenario.config.space;
        let w = space
            .wind_choices
            .iter()
            .position(|&x| x == c.wind_turbines)?;
        let s = space
            .solar_choices_kw
            .iter()
            .position(|&x| (x - c.solar_kw).abs() < 1e-9)?;
        let b = space
            .battery_choices_kwh
            .iter()
            .position(|&x| (x - c.battery_kwh).abs() < 1e-9)?;
        Some(vec![w as u16, s as u16, b as u16])
    }

    /// The underlying space.
    pub fn space(&self) -> &CompositionSpace {
        &self.scenario.config.space
    }

    /// The objective set.
    pub fn objective_set(&self) -> &ObjectiveSet {
        &self.objectives
    }

    /// The batched engine over this scenario's prepared inputs.
    pub fn evaluator(&self) -> BatchEvaluator<'_> {
        BatchEvaluator::new(
            &self.scenario.data,
            &self.scenario.load,
            &self.scenario.config.sim,
        )
    }

    /// The number of simulated steps for a fidelity in `(0, 1]`.
    fn steps_for_fidelity(&self, fidelity: f64) -> usize {
        ((self.scenario.data.len() as f64 * fidelity).round() as usize)
            .clamp(1, self.scenario.data.len())
    }
}

impl Problem for CompositionProblem<'_> {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn n_objectives(&self) -> usize {
        self.objectives.len()
    }

    fn evaluate(&self, genome: &[u16]) -> Vec<f64> {
        let comp = self.composition(genome);
        let result = simulate_year(
            &self.scenario.data,
            &self.scenario.load,
            &comp,
            &self.scenario.config.sim,
        );
        self.objectives.extract(&result)
    }

    fn evaluate_batch(&self, genomes: &[Genome]) -> Vec<Vec<f64>> {
        let comps: Vec<Composition> = genomes.iter().map(|g| self.composition(g)).collect();
        self.evaluator()
            .evaluate_batch(&comps)
            .iter()
            .map(|r| self.objectives.extract(r))
            .collect()
    }
}

impl MultiFidelityProblem for CompositionProblem<'_> {
    /// Low fidelity = simulate only the first `fidelity` fraction of the
    /// year. Rates are period-normalized, so low-fidelity objectives are
    /// noisy (seasonal bias) but unbiased enough for pruning.
    fn evaluate_at_fidelity(&self, genome: &[u16], fidelity: f64) -> Vec<f64> {
        let comp = self.composition(genome);
        let result = simulate_period(
            &self.scenario.data,
            &self.scenario.load,
            &comp,
            &self.scenario.config.sim,
            self.steps_for_fidelity(fidelity),
        );
        self.objectives.extract(&result)
    }

    fn evaluate_batch_at_fidelity(&self, genomes: &[Genome], fidelity: f64) -> Vec<Vec<f64>> {
        let comps: Vec<Composition> = genomes.iter().map(|g| self.composition(g)).collect();
        self.evaluator()
            .evaluate_batch_period(&comps, self.steps_for_fidelity(fidelity))
            .iter()
            .map(|r| self.objectives.extract(r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use mgopt_microgrid::CompositionSpace;

    fn scenario() -> PreparedScenario {
        ScenarioConfig {
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_houston()
        }
        .prepare()
    }

    #[test]
    fn dims_match_space() {
        let s = scenario();
        let p = CompositionProblem::new(&s, ObjectiveSet::paper());
        assert_eq!(p.dims(), &[3, 3, 3]);
        assert_eq!(p.space_size(), 27);
        assert_eq!(p.n_objectives(), 2);
    }

    #[test]
    fn genome_composition_round_trip() {
        let s = scenario();
        let p = CompositionProblem::new(&s, ObjectiveSet::paper());
        for i in 0..p.space_size() {
            let g = p.genome_at(i);
            let c = p.composition(&g);
            assert_eq!(p.genome_of(&c), Some(g));
        }
    }

    #[test]
    fn evaluation_matches_direct_simulation() {
        let s = scenario();
        let p = CompositionProblem::new(&s, ObjectiveSet::paper());
        let genome = vec![1u16, 1, 1];
        let comp = p.composition(&genome);
        let direct = simulate_year(&s.data, &s.load, &comp, &s.config.sim);
        assert_eq!(p.evaluate(&genome), ObjectiveSet::paper().extract(&direct));
    }

    #[test]
    fn baseline_genome_has_zero_embodied() {
        let s = scenario();
        let p = CompositionProblem::new(&s, ObjectiveSet::paper());
        let obj = p.evaluate(&[0, 0, 0]);
        assert_eq!(obj[1], 0.0, "embodied of baseline");
        assert!(obj[0] > 10.0, "houston baseline emissions");
    }
}

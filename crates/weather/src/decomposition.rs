//! Decomposition of global horizontal irradiance into direct and diffuse
//! components using the Erbs et al. (1982) correlation.
//!
//! PVWatts needs beam (DNI) and diffuse (DHI) irradiance to transpose onto a
//! tilted array; measured data sets like the NSRDB ship all three, but our
//! synthetic generator produces GHI, so we decompose exactly the way
//! ground-station pipelines do.

/// Result of a GHI decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrradianceComponents {
    /// Global horizontal irradiance, W/m².
    pub ghi: f64,
    /// Direct normal irradiance, W/m².
    pub dni: f64,
    /// Diffuse horizontal irradiance, W/m².
    pub dhi: f64,
}

/// Diffuse fraction from the clearness index `kt` (Erbs et al. 1982).
pub fn erbs_diffuse_fraction(kt: f64) -> f64 {
    let kt = kt.clamp(0.0, 1.2);
    if kt <= 0.22 {
        1.0 - 0.09 * kt
    } else if kt <= 0.80 {
        0.9511 - 0.1604 * kt + 4.388 * kt * kt - 16.638 * kt.powi(3) + 12.336 * kt.powi(4)
    } else {
        0.165
    }
}

/// Decompose GHI into DNI and DHI given the clearness index and the cosine
/// of the solar zenith angle.
///
/// * `ghi` — all-sky global horizontal irradiance, W/m².
/// * `kt` — clearness index (GHI / extraterrestrial horizontal).
/// * `cos_zenith` — cosine of the zenith angle; values near zero (sun at
///   the horizon) force an all-diffuse split to avoid the DNI blow-up that
///   real decomposition pipelines also guard against.
pub fn decompose(ghi: f64, kt: f64, cos_zenith: f64) -> IrradianceComponents {
    if ghi <= 0.0 || cos_zenith <= 0.0 {
        return IrradianceComponents {
            ghi: ghi.max(0.0),
            dni: 0.0,
            dhi: ghi.max(0.0),
        };
    }
    let df = erbs_diffuse_fraction(kt);
    let dhi = df * ghi;
    // Guard: near the horizon (cos z < ~0.087, i.e. sun below 5 deg) DNI
    // from (GHI - DHI)/cos(z) becomes numerically explosive.
    const MIN_COS_Z: f64 = 0.087;
    let dni = if cos_zenith < MIN_COS_Z {
        0.0
    } else {
        ((ghi - dhi) / cos_zenith).clamp(0.0, 1_100.0)
    };
    let dhi = if dni == 0.0 { ghi } else { dhi };
    IrradianceComponents { ghi, dni, dhi }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overcast_sky_is_all_diffuse() {
        // kt below 0.22: diffuse fraction ~1
        let df = erbs_diffuse_fraction(0.1);
        assert!(df > 0.98);
        let c = decompose(100.0, 0.1, 0.8);
        assert!(c.dhi / c.ghi > 0.98);
        assert!(c.dni < 5.0);
    }

    #[test]
    fn clear_sky_is_mostly_direct() {
        let df = erbs_diffuse_fraction(0.75);
        assert!(df < 0.25, "clear-sky diffuse fraction {df}");
        let c = decompose(900.0, 0.75, 0.9);
        assert!(c.dni > 700.0);
        assert!(c.dhi < 0.3 * c.ghi);
    }

    #[test]
    fn diffuse_fraction_continuous_at_breakpoints() {
        let eps = 1e-6;
        let at = |kt: f64| erbs_diffuse_fraction(kt);
        assert!((at(0.22 - eps) - at(0.22 + eps)).abs() < 1e-3);
        assert!((at(0.80 - eps) - at(0.80 + eps)).abs() < 0.05);
    }

    #[test]
    fn night_decomposition_is_zeroed() {
        let c = decompose(0.0, 0.0, 0.0);
        assert_eq!(c.dni, 0.0);
        assert_eq!(c.dhi, 0.0);
        let c = decompose(50.0, 0.3, -0.1);
        assert_eq!(c.dni, 0.0);
        assert_eq!(c.dhi, 50.0);
    }

    #[test]
    fn horizon_guard_prevents_dni_blowup() {
        let c = decompose(120.0, 0.6, 0.01);
        assert_eq!(c.dni, 0.0);
        assert_eq!(c.dhi, 120.0);
    }

    #[test]
    fn closure_identity_holds() {
        // GHI = DHI + DNI * cos(z)
        for (ghi, kt, cz) in [(500.0, 0.5, 0.7), (850.0, 0.72, 0.95), (200.0, 0.35, 0.4)] {
            let c = decompose(ghi, kt, cz);
            let reconstructed = c.dhi + c.dni * cz;
            assert!(
                (reconstructed - ghi).abs() < 1.0,
                "ghi {ghi} reconstructed {reconstructed}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn components_nonnegative_and_bounded(
            ghi in 0.0f64..1_200.0,
            kt in 0.0f64..1.1,
            cz in -1.0f64..1.0,
        ) {
            let c = decompose(ghi, kt, cz);
            prop_assert!(c.dni >= 0.0);
            prop_assert!(c.dhi >= 0.0);
            prop_assert!(c.dhi <= ghi + 1e-9);
            prop_assert!(c.dni <= 1_100.0 + 1e-9);
        }

        #[test]
        fn diffuse_fraction_in_unit_interval(kt in 0.0f64..1.5) {
            let df = erbs_diffuse_fraction(kt);
            prop_assert!((0.0..=1.0).contains(&df));
        }

        #[test]
        fn closure_when_dni_positive(
            ghi in 1.0f64..1_100.0,
            kt in 0.0f64..1.0,
            cz in 0.1f64..1.0,
        ) {
            let c = decompose(ghi, kt, cz);
            if c.dni > 0.0 && c.dni < 1_100.0 {
                prop_assert!((c.dhi + c.dni * cz - ghi).abs() < 1e-6);
            }
        }
    }
}

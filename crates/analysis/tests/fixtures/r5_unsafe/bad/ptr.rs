pub fn read_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}

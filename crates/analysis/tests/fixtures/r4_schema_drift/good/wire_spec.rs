// mgopt-lint-fixture: role=wire-spec
//! Wire spec excerpt. Documented error codes: `MalformedFrame`,
//! `Oversized`.

//! Time-indexed data sources.
//!
//! A [`Signal`] answers "what is the value at simulation time `t`?" —
//! Vessim's `Signal` abstraction. The SAM-style generation models and the
//! synthetic data substrates all emit [`mgopt_units::TimeSeries`], which is
//! itself a step-hold signal; adapters here add constants, closures and
//! scaling.

use mgopt_units::{SimTime, TimeSeries};

/// A time-indexed value source.
pub trait Signal: Send + Sync {
    /// Value at instant `t`.
    fn at(&self, t: SimTime) -> f64;
}

impl Signal for TimeSeries {
    fn at(&self, t: SimTime) -> f64 {
        TimeSeries::at(self, t)
    }
}

/// A constant-valued signal.
#[derive(Debug, Clone, Copy)]
pub struct ConstantSignal {
    value: f64,
}

impl ConstantSignal {
    /// Create a constant signal.
    pub fn new(value: f64) -> Self {
        Self { value }
    }
}

impl Signal for ConstantSignal {
    fn at(&self, _t: SimTime) -> f64 {
        self.value
    }
}

/// A signal computed from a closure.
pub struct FnSignal<F: Fn(SimTime) -> f64 + Send + Sync> {
    f: F,
}

impl<F: Fn(SimTime) -> f64 + Send + Sync> FnSignal<F> {
    /// Wrap a closure as a signal.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F: Fn(SimTime) -> f64 + Send + Sync> Signal for FnSignal<F> {
    fn at(&self, t: SimTime) -> f64 {
        (self.f)(t)
    }
}

/// A signal scaled by a constant factor.
pub struct Scaled<S: Signal> {
    inner: S,
    factor: f64,
}

impl<S: Signal> Scaled<S> {
    /// Scale `inner` by `factor`.
    pub fn new(inner: S, factor: f64) -> Self {
        Self { inner, factor }
    }
}

impl<S: Signal> Signal for Scaled<S> {
    fn at(&self, t: SimTime) -> f64 {
        self.inner.at(t) * self.factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::SimDuration;

    #[test]
    fn constant_signal_everywhere() {
        let s = ConstantSignal::new(42.0);
        assert_eq!(s.at(SimTime::START), 42.0);
        assert_eq!(s.at(SimTime::from_hours(100.0)), 42.0);
    }

    #[test]
    fn timeseries_is_a_signal() {
        let ts = TimeSeries::new(SimDuration::from_hours(1.0), vec![1.0, 2.0, 3.0]);
        let s: &dyn Signal = &ts;
        assert_eq!(s.at(SimTime::from_hours(1.5)), 2.0);
    }

    #[test]
    fn fn_signal_evaluates() {
        let s = FnSignal::new(|t: SimTime| t.hours() * 2.0);
        assert_eq!(s.at(SimTime::from_hours(3.0)), 6.0);
    }

    #[test]
    fn scaled_signal_multiplies() {
        let s = Scaled::new(ConstantSignal::new(10.0), -1.5);
        assert_eq!(s.at(SimTime::START), -15.0);
    }

    #[test]
    fn signals_are_object_safe() {
        let signals: Vec<Box<dyn Signal>> = vec![
            Box::new(ConstantSignal::new(1.0)),
            Box::new(Scaled::new(ConstantSignal::new(2.0), 2.0)),
        ];
        let total: f64 = signals.iter().map(|s| s.at(SimTime::START)).sum();
        assert_eq!(total, 5.0);
    }
}

//! Workspace-local stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this crate provides the
//! subset of serde the workspace actually uses: `Serialize` / `Deserialize`
//! traits over a simple JSON-like value tree, plus derive macros (from the
//! sibling `serde_derive` stub) that understand named structs, tuple
//! structs, enums (unit / newtype / struct variants) and the container and
//! field attributes used in this workspace: `#[serde(transparent)]`,
//! `#[serde(default)]`, and `#[serde(skip_serializing_if = "path")]`.
//!
//! The data model follows serde's externally-tagged JSON conventions, so
//! artifacts written by this stub are byte-compatible with what upstream
//! serde_json would emit for the same types.

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-like tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer outside the i64 range.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence value, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Create an error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into the value data model.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from the value data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| DeError::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| DeError::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => {
                        <$t>::try_from(f as i64)
                            .map_err(|_| DeError::custom(concat!("number out of range for ", stringify!($t))))
                    }
                    _ => Err(DeError::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Int(i) if i >= 0 => Ok(i as u64),
            Value::UInt(u) => Ok(u),
            Value::Float(f) if f.fract() == 0.0 && (0.0..1.9e19).contains(&f) => Ok(f as u64),
            _ => Err(DeError::custom("expected unsigned integer")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            _ => Err(DeError::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::custom("expected tuple array"))?;
                Ok(($($t::from_value(
                    s.get($n).ok_or_else(|| DeError::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )+};
}

ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

/// Helpers used by derive-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Value};

    /// Look up a required struct field.
    pub fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
        v.get(name)
            .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
    }

    /// Look up an optional (defaultable) struct field.
    pub fn field_opt<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
        v.get(name)
    }
}

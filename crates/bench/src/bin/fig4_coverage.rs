//! Regenerates **Figure 4**: the on-site renewable coverage surface over
//! (solar, wind) capacity without batteries, for Houston — showing
//! diminishing returns at higher deployment levels.
//!
//! ```bash
//! cargo run --release -p mgopt-bench --bin fig4_coverage
//! ```

use mgopt_core::experiments::fig4;
use mgopt_core::report;

fn main() {
    let scenario = mgopt_bench::houston();
    let out = fig4::run(&scenario);
    print!("{}", report::render_fig4(&out));

    // The paper's qualitative claim: diminishing returns.
    let first_row_gain = out.coverage_pct[0].get(1).copied().unwrap_or(0.0)
        - out.coverage_pct[0].first().copied().unwrap_or(0.0);
    let last_gain = out.last_solar_marginal_gain(0);
    println!(
        "\ndiminishing returns along solar at 0 wind: first step +{first_row_gain:.2} pp, last step +{last_gain:.2} pp"
    );
    mgopt_bench::write_artifact("fig4_houston", &out);
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # mgopt-workload
//!
//! Data-center power-demand traces — the workspace's substitute for the
//! Perlmutter (NERSC) power traces used by the paper.
//!
//! The simulator only ever consumes a power time series, so a seeded
//! generator with the right first- and second-order statistics exercises
//! exactly the same code paths as the measured trace. [`HpcWorkload`]
//! reproduces the character of a large HPC facility: a high utilization
//! floor, job-driven step changes, slow utilization drift, occasional
//! maintenance dips — calibrated to the paper's 1.62 MW average.
//!
//! [`patterns`] adds other facility archetypes (interactive/web diurnal
//! load, constant load) used by the examples and the carbon-aware
//! scheduling policy study.

pub mod hpc;
pub mod io;
pub mod patterns;

pub use hpc::{HpcWorkload, HpcWorkloadParams};
pub use patterns::{constant_load, diurnal_web_load};

/// The Perlmutter-average power draw reported by the paper, kW.
pub const PERLMUTTER_MEAN_KW: f64 = 1_620.0;

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::SimDuration;

    #[test]
    fn crate_smoke() {
        let trace = HpcWorkload::perlmutter_like(1).generate(SimDuration::from_hours(1.0));
        assert!((trace.mean() - PERLMUTTER_MEAN_KW).abs() < 1e-6);
    }
}

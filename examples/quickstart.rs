//! Quickstart: assemble a data-center microgrid out of cosim actors,
//! simulate one week, and print a daily energy/carbon summary.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use microgrid_opt::cosim::MemoryMonitor;
use microgrid_opt::gridcarbon::accounting::daily_operational_emissions_t;
use microgrid_opt::microgrid::build_cosim_microgrid;
use microgrid_opt::prelude::*;

fn main() {
    // 1. A scenario bundles the site (weather, grid carbon intensity,
    //    prices) with a workload. Preparation synthesizes everything from
    //    one seed, so runs are exactly reproducible.
    let scenario = ScenarioConfig::paper_houston().prepare();
    println!("site: {}", scenario.site_name());
    println!(
        "  solar capacity factor: {:.1} %",
        scenario.data.solar_capacity_factor() * 100.0
    );
    println!(
        "  wind capacity factor:  {:.1} %",
        scenario.data.wind_capacity_factor() * 100.0
    );
    println!(
        "  mean grid CI:          {:.0} gCO2/kWh",
        scenario.data.ci_g_per_kwh.mean()
    );
    println!(
        "  mean IT load:          {:.2} MW",
        scenario.load.mean() / 1e3
    );

    // 2. Pick a composition: 12 MW wind + 7.5 MWh battery (a Table-1
    //    candidate) and wire it as a cosim microgrid: three actors on a
    //    bus plus a C/L/C battery.
    let comp = Composition::new(4, 0.0, 7_500.0);
    let cfg = SimConfig::default();
    let mut mg = build_cosim_microgrid(&scenario.data, &scenario.load, &comp, &cfg);

    // 3. Run one week at the scenario step and collect every bus record.
    let mut monitor = MemoryMonitor::new();
    mg.run(
        SimTime::START,
        SimDuration::from_days(7),
        scenario.data.step(),
        &mut [&mut monitor],
    );

    println!("\nfirst week with {comp}:");
    println!("  day |  demand MWh |  wind MWh | import MWh | export MWh | final SoC");
    let steps_per_day = (24 * 3_600 / scenario.data.step().secs()) as usize;
    for day in 0..7 {
        let recs = &monitor.records()[day * steps_per_day..(day + 1) * steps_per_day];
        let h = scenario.data.step().hours();
        let demand: f64 = recs.iter().map(|r| -r.p_consumption.kw() * h).sum::<f64>() / 1e3;
        let wind: f64 = recs.iter().map(|r| r.p_production.kw() * h).sum::<f64>() / 1e3;
        let import: f64 = recs.iter().map(|r| r.grid_import().kw() * h).sum::<f64>() / 1e3;
        let export: f64 = recs.iter().map(|r| r.grid_export().kw() * h).sum::<f64>() / 1e3;
        let soc = recs.last().map(|r| r.soc).unwrap_or(0.0);
        println!(
            "  {:>3} | {:>11.1} | {:>9.1} | {:>10.1} | {:>10.1} | {:>8.0} %",
            day,
            demand,
            wind,
            import,
            export,
            soc * 100.0
        );
    }

    // 4. Full-year metrics via the fast path (identical physics).
    let result = simulate_year(&scenario.data, &scenario.load, &comp, &cfg);
    let m = &result.metrics;
    println!("\nfull-year summary:");
    println!("  embodied emissions:     {:>10.0} tCO2", m.embodied_t);
    println!(
        "  operational emissions:  {:>10.2} tCO2/day",
        m.operational_t_per_day
    );
    println!("  on-site coverage:       {:>10.2} %", m.coverage_pct());
    println!(
        "  battery cycles:         {:>10.0} per year",
        m.battery_cycles
    );

    // Cross-check the emission accounting against the import series.
    let import_series = TimeSeries::new(
        scenario.data.step(),
        vec![m.grid_import_mwh * 1e3 / scenario.data.len() as f64; scenario.data.len()],
    );
    let approx = daily_operational_emissions_t(&import_series, &scenario.data.ci_g_per_kwh);
    println!("  (sanity: flat-import approximation would give {approx:.2} tCO2/day)");
}

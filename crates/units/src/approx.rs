//! Symmetric relative-tolerance comparison.
//!
//! The engine-agreement tests and benchmark artifacts pin independent
//! simulation engines to a relative 1e-9 on every reported metric. The
//! original ad-hoc check, `(x - y).abs() <= tol * x.abs().max(1.0)`, was
//! copied into several test modules and is *asymmetric*: the tolerance
//! scales with whichever argument happens to be passed first, so swapping
//! "expected" and "actual" can flip the verdict near the boundary. These
//! helpers normalize by `max(|x|, |y|, 1)` so argument order never
//! matters, and give every agreement check one shared definition.

/// Symmetric relative error: `|x − y| / max(|x|, |y|, 1)`.
///
/// The `1` floor makes the error absolute for quantities smaller than one
/// unit (coverage fractions, near-zero flows) and relative above it, the
/// same convention the asymmetric original intended.
pub fn rel_error(x: f64, y: f64) -> f64 {
    (x - y).abs() / x.abs().max(y.abs()).max(1.0)
}

/// `true` when `x` and `y` agree to the symmetric relative tolerance
/// `tol`. `rel_close(x, y, tol) == rel_close(y, x, tol)` always holds.
pub fn rel_close(x: f64, y: f64, tol: f64) -> bool {
    rel_error(x, y) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_equality_is_close() {
        assert!(rel_close(0.0, 0.0, 1e-9));
        assert!(rel_close(1.234e12, 1.234e12, 1e-9));
        assert!(rel_close(-5.5, -5.5, 0.0));
    }

    #[test]
    fn small_quantities_use_absolute_floor() {
        // Below 1, the error is absolute: 1e-10 apart is within 1e-9.
        assert!(rel_close(0.1, 0.1 + 1e-10, 1e-9));
        assert!(!rel_close(0.1, 0.1 + 1e-8, 1e-9));
    }

    #[test]
    fn large_quantities_use_relative_scale() {
        // 1e12-scale values a few hundred apart are within 1e-9 relative.
        assert!(rel_close(1e12, 1e12 + 500.0, 1e-9));
        assert!(!rel_close(1e12, 1e12 + 5_000.0, 1e-9));
    }

    #[test]
    fn symmetric_under_argument_swap() {
        let cases = [
            (0.0, 1.5e-9),
            (1.0, 1.0 + 2e-9),
            (3e9, 3e9 + 2.0),
            (-7.25, -7.25 - 1e-8),
            (1e-12, 2e-12),
        ];
        for (x, y) in cases {
            assert_eq!(
                rel_close(x, y, 1e-9),
                rel_close(y, x, 1e-9),
                "asymmetric verdict for ({x}, {y})"
            );
            assert_eq!(rel_error(x, y), rel_error(y, x));
        }
    }

    #[test]
    fn rel_error_values() {
        assert_eq!(rel_error(0.0, 0.0), 0.0);
        assert_eq!(rel_error(2.0, 1.0), 0.5);
        assert_eq!(rel_error(0.5, 0.25), 0.25);
        // Normalized by max(|x|, |y|) = 2.00000002e10, so the error is
        // 1e-8/1.00000001 — within one part in 1e8 of 1e-8.
        assert!((rel_error(2e10, 2.00000002e10) - 1e-8).abs() < 1e-15);
    }

    #[test]
    fn nan_is_never_close() {
        assert!(!rel_close(f64::NAN, 1.0, 1e-9));
        assert!(!rel_close(1.0, f64::NAN, 1e-9));
    }
}

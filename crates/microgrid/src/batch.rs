//! The batched, structure-of-arrays evaluation engine.
//!
//! [`simulate_year`](crate::simulate_year) walks the year once per
//! composition: every candidate re-streams the site's PV / wind / CI /
//! price arrays and pays a `Box<dyn Storage>` virtual call on every step.
//! That is fine for a handful of candidates and wasteful for a sweep: the
//! paper's exhaustive baseline alone is 1,089 full-year simulations, and
//! NSGA-II / successive halving evaluate cohorts of the same shape.
//!
//! This module simulates a **batch** of compositions in a single time-major
//! pass: the outer loop walks timesteps, the inner loop walks candidates,
//! so each site sample is loaded once per step instead of once per step
//! *per candidate*. Candidate state lives in flat vectors, batteries
//! dispatch through the monomorphized [`StorageKernel`] enum (no virtual
//! calls, no per-candidate allocation), and consecutive candidates sharing
//! a `(wind, solar)` pair — all 9 battery variants of a grid point, in
//! sweep order — share one generation/net-load computation per step.
//! Batches are split into chunks evaluated in parallel; chunk results are
//! reassembled in input order, so output is deterministic.
//!
//! ## Agreement guarantee
//!
//! The battery/dispatch recursion — everything that feeds back into state —
//! runs the *same arithmetic* as the scalar path (it calls the same
//! [`ClcBattery`] code), so simulated physics are bit-identical. Only the
//! pure accumulators are reorganized (raw sums scaled once at the end
//! instead of per step), which perturbs reported metrics by at most a few
//! ulps. `tests/engine_agreement.rs` pins scalar, cosim and batch to a
//! relative 1e-9 on every [`AnnualMetrics`] field, for full years and
//! partial [`simulate_period`](crate::simulate_period) windows.
//!
//! ## Evaluator abstraction
//!
//! [`Evaluator`] is the capability the search layers program against: "I
//! can score compositions at a prepared site". [`BatchEvaluator`] is the
//! engine of choice; [`ScalarEvaluator`] wraps the reference path for
//! cross-checks and one-off evaluations.

use mgopt_storage::{ClcBattery, ClcParams, Storage};
use mgopt_telemetry::{self as telemetry, Counter, Stage};
use mgopt_units::{Power, SimDuration, TimeSeries};
use rayon::prelude::*;

use crate::composition::Composition;
use crate::metrics::{AnnualMetrics, AnnualResult};
use crate::simd::{split_residual, BatchBackend, F64x4, LaneGroup, LaneParams, LanePolicy, LANES};
use crate::simulate::SimConfig;
use crate::site::SiteData;

/// Candidates per parallel chunk. A multiple of the SIMD lane width
/// ([`LANES`] = 4) lets every chunk but the last of a batch divide
/// evenly into lane groups, so the scalar remainder loop only fires on
/// the final chunk of a sweep; 64 keeps the old scheduling granularity /
/// state-locality sweet spot (±1 candidate). Shared with the fleet
/// engine ([`crate::fleet`]).
pub(crate) const CHUNK: usize = 64;

/// Monomorphized storage dispatch: an enum over the storage models a
/// composition can carry, replacing `Box<dyn Storage + Send>` in hot loops.
///
/// Methods forward to the exact same [`ClcBattery`] arithmetic the scalar
/// and cosim engines use — the kernel changes *dispatch*, not physics.
#[derive(Debug, Clone)]
pub enum StorageKernel {
    /// No battery: refuses all power, zero state.
    Null,
    /// A C/L/C lithium-ion battery.
    Clc(ClcBattery),
}

impl StorageKernel {
    /// The kernel for a composition under the given battery parameters.
    pub fn for_composition(comp: &Composition, params: &ClcParams) -> Self {
        if comp.battery_kwh > 0.0 {
            StorageKernel::Clc(ClcBattery::new(
                mgopt_units::Energy::from_kwh(comp.battery_kwh),
                params.clone(),
            ))
        } else {
            StorageKernel::Null
        }
    }

    /// Current state of charge (0 for [`StorageKernel::Null`]).
    #[inline]
    pub fn soc(&self) -> f64 {
        match self {
            StorageKernel::Null => 0.0,
            StorageKernel::Clc(b) => b.soc(),
        }
    }

    /// Request `power` for `dt`; returns the accepted/delivered power in kW.
    #[inline]
    pub fn update_kw(&mut self, power: Power, dt: SimDuration) -> f64 {
        match self {
            StorageKernel::Null => 0.0,
            StorageKernel::Clc(b) => b.update(power, dt).kw(),
        }
    }

    /// Equivalent full cycles so far.
    pub fn equivalent_full_cycles(&self) -> f64 {
        match self {
            StorageKernel::Null => 0.0,
            StorageKernel::Clc(b) => b.equivalent_full_cycles(),
        }
    }
}

/// Per-candidate raw accumulators: unscaled sums of per-step kW values.
///
/// The scalar path multiplies by `dt_h` and divides by 1e3 on every step;
/// those are pure output transforms (nothing feeds back into simulation
/// state), so the batch engine applies them once in [`BatchAcc::finish`].
/// Shared with the fleet engine ([`crate::fleet`]) so per-site fleet
/// metrics are bit-identical to single-site batch runs.
#[derive(Debug, Clone, Default)]
pub(crate) struct BatchAcc {
    pub(crate) production: f64,
    pub(crate) import: f64,
    pub(crate) export: f64,
    pub(crate) direct: f64,
    pub(crate) charge: f64,
    pub(crate) discharge: f64,
    pub(crate) unmet: f64,
    pub(crate) op_weighted: f64,
    pub(crate) cost_import: f64,
    pub(crate) cost_export: f64,
    pub(crate) self_sufficient_steps: usize,
}

impl BatchAcc {
    /// Record one step. All arguments are kW-scale except `ci` (g/kWh) and
    /// `price` ($/MWh); `demand` is the step's load.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &mut self,
        gen: f64,
        demand: f64,
        import: f64,
        export: f64,
        p_storage: f64,
        unmet: f64,
        ci: f64,
        price: f64,
    ) {
        self.production += gen;
        self.import += import;
        self.export += export;
        self.direct += gen.min(demand).max(0.0);
        if p_storage > 0.0 {
            self.charge += p_storage;
        } else {
            self.discharge += -p_storage;
        }
        self.unmet += unmet;
        self.op_weighted += import * ci;
        self.cost_import += import * price;
        self.cost_export += export * price;
        if import <= 1e-9 {
            self.self_sufficient_steps += 1;
        }
    }

    /// Scale the raw sums into [`AnnualMetrics`] (mirrors the scalar
    /// `Accumulators::finish` formulas).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        &self,
        comp: &Composition,
        cfg: &SimConfig,
        battery_cycles: f64,
        steps: usize,
        days: f64,
        demand_kwh: f64,
        dt_h: f64,
    ) -> AnnualMetrics {
        let import_kwh = self.import * dt_h;
        let op_kg = self.op_weighted * dt_h / 1e3;
        let op_t_total = op_kg / 1e3;
        let op_t_year = op_t_total * 365.0 / days.max(1e-9);
        let demand = demand_kwh.max(1e-12);
        let cost_usd = (self.cost_import - self.cost_export * cfg.export_price_factor) * dt_h / 1e3;
        AnnualMetrics {
            demand_mwh: demand_kwh / 1e3,
            production_mwh: self.production * dt_h / 1e3,
            grid_import_mwh: import_kwh / 1e3,
            grid_export_mwh: self.export * dt_h / 1e3,
            direct_use_mwh: self.direct * dt_h / 1e3,
            battery_charge_mwh: self.charge * dt_h / 1e3,
            battery_discharge_mwh: self.discharge * dt_h / 1e3,
            unmet_mwh: self.unmet * dt_h / 1e3,
            operational_t_per_day: op_t_total / days.max(1e-9),
            operational_t_per_year: op_t_year,
            embodied_t: cfg.embodied.total_t(comp),
            coverage: (1.0 - import_kwh / demand).clamp(0.0, 1.0),
            direct_coverage: (self.direct * dt_h / demand).clamp(0.0, 1.0),
            battery_cycles,
            self_sufficient_fraction: self.self_sufficient_steps as f64 / steps.max(1) as f64,
            energy_cost_usd: cost_usd,
        }
    }
}

/// Simulate a batch of compositions for a full year in one time-major pass.
///
/// Results are returned in input order and are deterministic regardless of
/// thread scheduling.
///
/// # Panics
/// Panics when `load_kw` does not match the site data's step/length.
pub fn simulate_batch(
    data: &SiteData,
    load_kw: &TimeSeries,
    comps: &[Composition],
    cfg: &SimConfig,
) -> Vec<AnnualResult> {
    simulate_batch_period(data, load_kw, comps, cfg, data.len())
}

/// [`simulate_batch`] with an explicit chunk-walk backend (the default
/// follows the `MGOPT_SIMD` toggle).
pub fn simulate_batch_with_backend(
    data: &SiteData,
    load_kw: &TimeSeries,
    comps: &[Composition],
    cfg: &SimConfig,
    backend: BatchBackend,
) -> Vec<AnnualResult> {
    simulate_batch_period_with_backend(data, load_kw, comps, cfg, data.len(), backend)
}

/// Simulate only the first `n_steps` for every composition in the batch —
/// the low-fidelity cohort evaluation used by pruning searches.
///
/// # Panics
/// Panics when `load_kw` does not match the site data's step/length or
/// `n_steps` is zero.
pub fn simulate_batch_period(
    data: &SiteData,
    load_kw: &TimeSeries,
    comps: &[Composition],
    cfg: &SimConfig,
    n_steps: usize,
) -> Vec<AnnualResult> {
    simulate_batch_period_with_backend(data, load_kw, comps, cfg, n_steps, BatchBackend::Auto)
}

/// [`simulate_batch_period`] with an explicit chunk-walk backend.
///
/// The lane-wide walk is used when the backend selects it, SoC traces
/// are off (the lane walk does not record them) and the step is
/// non-zero; otherwise the scalar walk runs. Both walks are pinned
/// bit-identical by `tests/engine_agreement.rs`.
///
/// # Panics
/// Same contract as [`simulate_batch_period`].
pub fn simulate_batch_period_with_backend(
    data: &SiteData,
    load_kw: &TimeSeries,
    comps: &[Composition],
    cfg: &SimConfig,
    n_steps: usize,
    backend: BatchBackend,
) -> Vec<AnnualResult> {
    assert_eq!(load_kw.step(), data.step(), "load step mismatch");
    assert_eq!(load_kw.len(), data.len(), "load length mismatch");
    assert!(n_steps > 0, "n_steps must be positive");
    if comps.is_empty() {
        return Vec::new();
    }

    let n = n_steps.min(data.len());
    // Demand is identical for every candidate: accumulate it once.
    let demand_kwh: f64 = load_kw.values()[..n].iter().sum::<f64>() * data.step().hours();
    let use_simd = backend.use_simd() && !cfg.record_soc && !data.step().is_zero();

    // Stage-total snapshots attribute this call's prepare/kernel time in
    // the emitted event (search layers call engines sequentially, so the
    // deltas are this call's own spans).
    let trace = telemetry::enabled().then(|| {
        (
            // mgopt-lint: allow(determinism) — wall clock feeds the batch_eval trace only, never results
            std::time::Instant::now(),
            telemetry::stage_ms(Stage::BatchPrepare),
            telemetry::stage_ms(Stage::BatchKernel),
            telemetry::counter_value(Counter::SimdRows),
            telemetry::counter_value(Counter::SimdRemainderRows),
        )
    });

    let chunks: Vec<&[Composition]> = comps.chunks(CHUNK).collect();
    let nested: Vec<Vec<AnnualResult>> = chunks
        .into_par_iter()
        .map(|chunk| {
            if use_simd {
                run_chunk_simd(data, load_kw, chunk, cfg, n, demand_kwh)
            } else {
                run_chunk(data, load_kw, chunk, cfg, n, demand_kwh)
            }
        })
        .collect();
    let out: Vec<AnnualResult> = nested.into_iter().flatten().collect();

    if let Some((t0, prep0, kern0, simd0, rem0)) = trace {
        telemetry::Event::new("batch_eval")
            .u64("candidates", comps.len() as u64)
            .u64("steps", n as u64)
            .u64("chunks", comps.len().div_ceil(CHUNK) as u64)
            .u64("rows", (comps.len() * n) as u64)
            .bool("simd", use_simd)
            .u64(
                "simd_rows",
                telemetry::counter_value(Counter::SimdRows) - simd0,
            )
            .u64(
                "simd_remainder_rows",
                telemetry::counter_value(Counter::SimdRemainderRows) - rem0,
            )
            .f64(
                "prepare_ms",
                telemetry::stage_ms(Stage::BatchPrepare) - prep0,
            )
            .f64("kernel_ms", telemetry::stage_ms(Stage::BatchKernel) - kern0)
            .f64("wall_ms", t0.elapsed().as_secs_f64() * 1e3)
            .emit();
    }
    out
}

/// Evaluate one chunk of candidates over `0..n` time-major.
fn run_chunk(
    data: &SiteData,
    load_kw: &TimeSeries,
    comps: &[Composition],
    cfg: &SimConfig,
    n: usize,
    demand_kwh: f64,
) -> Vec<AnnualResult> {
    let m = comps.len();
    let dt = data.step();
    let dt_h = dt.hours();
    let steps_per_hour = (3_600 / dt.secs()).max(1) as usize;

    let prepare_span = telemetry::span(Stage::BatchPrepare);

    let pv = data.pv_unit_kw.values();
    let wind = data.wind_unit_kw.values();
    let load = load_kw.values();
    let ci = data.ci_g_per_kwh.values();
    let price = data.price_usd_per_mwh.values();

    // Flat per-candidate state (structure of arrays).
    let solar_kw: Vec<f64> = comps.iter().map(|c| c.solar_kw).collect();
    let wind_n: Vec<f64> = comps.iter().map(|c| c.wind_turbines as f64).collect();
    let mut kernels: Vec<StorageKernel> = comps
        .iter()
        .map(|c| StorageKernel::for_composition(c, &cfg.battery))
        .collect();
    let mut accs: Vec<BatchAcc> = vec![BatchAcc::default(); m];
    let mut soc_traces: Vec<Vec<f64>> = if cfg.record_soc {
        // (Cloning a Vec drops its capacity, so build each one explicitly.)
        (0..m)
            .map(|_| Vec::with_capacity(n / steps_per_hour + 1))
            .collect()
    } else {
        Vec::new()
    };

    // Candidates with the same (wind, solar) pair share generation; in
    // sweep order these are the battery-dimension runs of the grid.
    // Membership is bitwise so group members' per-candidate generation
    // expression reproduces the shared value exactly — what pins this
    // walk bit-identical to the lane-wide walk, which computes
    // generation per lane.
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    for k in 1..=m {
        if k == m
            || solar_kw[k].to_bits() != solar_kw[start].to_bits()
            || wind_n[k].to_bits() != wind_n[start].to_bits()
        {
            groups.push((start, k));
            start = k;
        }
    }

    let policy = cfg.policy;
    let islanded = policy.is_islanded();

    drop(prepare_span);
    let kernel_span = telemetry::span(Stage::BatchKernel);

    for i in 0..n {
        let (pv_i, wind_i, load_i, ci_i, price_i) = (pv[i], wind[i], load[i], ci[i], price[i]);
        let record_hour = cfg.record_soc && i % steps_per_hour == 0;
        for &(g0, g1) in &groups {
            let gen = solar_kw[g0] * pv_i + wind_n[g0] * wind_i;
            let p_delta = gen - load_i;
            for k in g0..g1 {
                let request =
                    policy.storage_request(Power::from_kw(p_delta), kernels[k].soc(), ci_i);
                let p_storage = kernels[k].update_kw(request, dt);
                let residual = p_delta - p_storage;
                let (import, export, unmet) = if islanded && residual < 0.0 {
                    (0.0, 0.0, -residual)
                } else if residual < 0.0 {
                    (-residual, 0.0, 0.0)
                } else {
                    (0.0, residual, 0.0)
                };
                accs[k].record(gen, load_i, import, export, p_storage, unmet, ci_i, price_i);
                if record_hour {
                    soc_traces[k].push(kernels[k].soc());
                }
            }
        }
    }

    drop(kernel_span);
    telemetry::add(Counter::BatchChunks, 1);
    telemetry::add(Counter::BatchRows, (m * n) as u64);

    let cycles: Vec<f64> = kernels.iter().map(|k| k.equivalent_full_cycles()).collect();
    finish_chunk(comps, cfg, &accs, &cycles, soc_traces, n, dt_h, demand_kwh)
}

/// Evaluate one chunk of candidates over `0..n` with the lane-wide SIMD
/// kernel: full lane groups walk four candidates at once, the tail (< 4
/// candidates — only the batch's final chunk, since [`CHUNK`] is a lane
/// multiple) runs the scalar kernel. Bit-identical to [`run_chunk`]:
/// lanes are candidates, so per-candidate arithmetic order is unchanged.
fn run_chunk_simd(
    data: &SiteData,
    load_kw: &TimeSeries,
    comps: &[Composition],
    cfg: &SimConfig,
    n: usize,
    demand_kwh: f64,
) -> Vec<AnnualResult> {
    let m = comps.len();
    let dt = data.step();
    let dt_h = dt.hours();

    let prepare_span = telemetry::span(Stage::BatchPrepare);

    let pv = data.pv_unit_kw.values();
    let wind = data.wind_unit_kw.values();
    let load = load_kw.values();
    let ci = data.ci_g_per_kwh.values();
    let price = data.price_usd_per_mwh.values();

    let r0 = (m / LANES) * LANES;
    let mut lanes: Vec<LaneGroup> = comps[..r0]
        .chunks_exact(LANES)
        .map(|quad| LaneGroup::new(quad, &cfg.battery))
        .collect();
    let lane_params = LaneParams::new(&cfg.battery, dt_h);
    let lane_policy = LanePolicy::new(cfg.policy);

    // Scalar remainder state for the tail candidates.
    let rem = &comps[r0..];
    let mut rem_kernels: Vec<StorageKernel> = rem
        .iter()
        .map(|c| StorageKernel::for_composition(c, &cfg.battery))
        .collect();
    let mut rem_accs: Vec<BatchAcc> = vec![BatchAcc::default(); rem.len()];

    let policy = cfg.policy;
    let islanded = policy.is_islanded();

    drop(prepare_span);
    let kernel_span = telemetry::span(Stage::BatchKernel);

    for i in 0..n {
        let (pv_i, wind_i, load_i, ci_i, price_i) = (pv[i], wind[i], load[i], ci[i], price[i]);
        let pv_v = F64x4::splat(pv_i);
        let wind_v = F64x4::splat(wind_i);
        let load_v = F64x4::splat(load_i);
        let ci_v = F64x4::splat(ci_i);
        let price_v = F64x4::splat(price_i);
        for g in &mut lanes {
            // Per-lane generation: the same mul/mul/add as the scalar
            // walk (no mul_add — rounding must match).
            let gen = g.solar * pv_v + g.wind * wind_v;
            let p_delta = gen - load_v;
            let request = lane_policy.request(p_delta, g.kernel.soc(), ci_i);
            let p_storage = g.kernel.step(request, &lane_params);
            let residual = p_delta - p_storage;
            let (import, export, unmet) = split_residual(residual, islanded);
            g.acc
                .record(gen, load_v, import, export, p_storage, unmet, ci_v, price_v);
        }
        for (k, comp) in rem.iter().enumerate() {
            let gen = comp.solar_kw * pv_i + comp.wind_turbines as f64 * wind_i;
            let p_delta = gen - load_i;
            let request =
                policy.storage_request(Power::from_kw(p_delta), rem_kernels[k].soc(), ci_i);
            let p_storage = rem_kernels[k].update_kw(request, dt);
            let residual = p_delta - p_storage;
            let (import, export, unmet) = if islanded && residual < 0.0 {
                (0.0, 0.0, -residual)
            } else if residual < 0.0 {
                (-residual, 0.0, 0.0)
            } else {
                (0.0, residual, 0.0)
            };
            rem_accs[k].record(gen, load_i, import, export, p_storage, unmet, ci_i, price_i);
        }
    }

    drop(kernel_span);
    telemetry::add(Counter::BatchChunks, 1);
    telemetry::add(Counter::BatchRows, (m * n) as u64);
    telemetry::add(Counter::SimdRows, (r0 * n) as u64);
    telemetry::add(Counter::SimdRemainderRows, ((m - r0) * n) as u64);

    let accs: Vec<BatchAcc> = (0..m)
        .map(|k| {
            if k < r0 {
                lanes[k / LANES].acc.extract(k % LANES)
            } else {
                rem_accs[k - r0].clone()
            }
        })
        .collect();
    let cycles: Vec<f64> = (0..m)
        .map(|k| {
            if k < r0 {
                lanes[k / LANES].kernel.equivalent_full_cycles(k % LANES)
            } else {
                rem_kernels[k - r0].equivalent_full_cycles()
            }
        })
        .collect();
    finish_chunk(comps, cfg, &accs, &cycles, Vec::new(), n, dt_h, demand_kwh)
}

/// Scale one chunk's raw accumulators into results — shared by the
/// scalar and lane-wide walks so both feed the exact same formulas.
#[allow(clippy::too_many_arguments)]
fn finish_chunk(
    comps: &[Composition],
    cfg: &SimConfig,
    accs: &[BatchAcc],
    cycles: &[f64],
    mut soc_traces: Vec<Vec<f64>>,
    n: usize,
    dt_h: f64,
    demand_kwh: f64,
) -> Vec<AnnualResult> {
    let days = n as f64 * dt_h / 24.0;
    (0..comps.len())
        .map(|k| AnnualResult {
            composition: comps[k],
            metrics: accs[k].finish(&comps[k], cfg, cycles[k], n, days, demand_kwh, dt_h),
            soc_trace_hourly: if cfg.record_soc {
                std::mem::take(&mut soc_traces[k])
            } else {
                Vec::new()
            },
        })
        .collect()
}

/// The capability search layers program against: scoring compositions at a
/// prepared site. `Sync` because cohorts are evaluated in parallel.
pub trait Evaluator: Sync {
    /// Evaluate one composition over the full year.
    fn evaluate(&self, comp: &Composition) -> AnnualResult;

    /// Evaluate a batch over the full year, in input order.
    fn evaluate_batch(&self, comps: &[Composition]) -> Vec<AnnualResult>;

    /// Evaluate a batch over only the first `n_steps` (low fidelity).
    fn evaluate_batch_period(&self, comps: &[Composition], n_steps: usize) -> Vec<AnnualResult>;
}

/// The reference evaluator: one scalar [`simulate_year`](crate::simulate_year)
/// per composition.
#[derive(Debug, Clone, Copy)]
pub struct ScalarEvaluator<'a> {
    /// Prepared site data.
    pub data: &'a SiteData,
    /// The load trace.
    pub load: &'a TimeSeries,
    /// Simulation parameters.
    pub cfg: &'a SimConfig,
}

impl Evaluator for ScalarEvaluator<'_> {
    fn evaluate(&self, comp: &Composition) -> AnnualResult {
        crate::simulate::simulate_year(self.data, self.load, comp, self.cfg)
    }

    fn evaluate_batch(&self, comps: &[Composition]) -> Vec<AnnualResult> {
        comps
            .par_iter()
            .map(|c| crate::simulate::simulate_year(self.data, self.load, c, self.cfg))
            .collect()
    }

    fn evaluate_batch_period(&self, comps: &[Composition], n_steps: usize) -> Vec<AnnualResult> {
        comps
            .par_iter()
            .map(|c| crate::simulate::simulate_period(self.data, self.load, c, self.cfg, n_steps))
            .collect()
    }
}

/// The batched columnar evaluator: one time-major pass per batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchEvaluator<'a> {
    /// Prepared site data.
    pub data: &'a SiteData,
    /// The load trace.
    pub load: &'a TimeSeries,
    /// Simulation parameters.
    pub cfg: &'a SimConfig,
    backend: BatchBackend,
}

impl<'a> BatchEvaluator<'a> {
    /// Create an evaluator over prepared inputs (the chunk walk follows
    /// the `MGOPT_SIMD` toggle).
    pub fn new(data: &'a SiteData, load: &'a TimeSeries, cfg: &'a SimConfig) -> Self {
        Self {
            data,
            load,
            cfg,
            backend: BatchBackend::Auto,
        }
    }

    /// Force a chunk-walk backend (A/B benches, agreement tests).
    pub fn with_backend(mut self, backend: BatchBackend) -> Self {
        self.backend = backend;
        self
    }
}

impl Evaluator for BatchEvaluator<'_> {
    fn evaluate(&self, comp: &Composition) -> AnnualResult {
        self.evaluate_batch(std::slice::from_ref(comp))
            .pop()
            .expect("one composition in, one result out")
    }

    fn evaluate_batch(&self, comps: &[Composition]) -> Vec<AnnualResult> {
        simulate_batch_with_backend(self.data, self.load, comps, self.cfg, self.backend)
    }

    fn evaluate_batch_period(&self, comps: &[Composition], n_steps: usize) -> Vec<AnnualResult> {
        simulate_batch_period_with_backend(
            self.data,
            self.load,
            comps,
            self.cfg,
            n_steps,
            self.backend,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DispatchPolicy;
    use crate::simulate::{simulate_period, simulate_year};
    use crate::site::Site;
    use mgopt_workload::HpcWorkload;

    fn setup() -> (SiteData, TimeSeries) {
        let data = Site::houston().prepare(SimDuration::from_hours(1.0), 42);
        let load = HpcWorkload::perlmutter_like(42).generate(SimDuration::from_hours(1.0));
        (data, load)
    }

    fn assert_metrics_close(a: &AnnualMetrics, b: &AnnualMetrics, what: &str) {
        // The shared symmetric tolerance (mgopt_units::rel_error) over
        // every metrics field; embodied carbon is pure bookkeeping and
        // must match exactly.
        let (err, field) = a.max_rel_error(b);
        assert!(err <= 1e-9, "{what}: {field} rel err {err:e}");
        assert!(a.embodied_t == b.embodied_t, "{what}: embodied");
    }

    #[test]
    fn batch_of_one_matches_scalar() {
        let (data, load) = setup();
        let cfg = SimConfig::default();
        for comp in [
            Composition::BASELINE,
            Composition::new(4, 0.0, 7_500.0),
            Composition::new(3, 8_000.0, 22_500.0),
            Composition::new(0, 16_000.0, 60_000.0),
        ] {
            let scalar = simulate_year(&data, &load, &comp, &cfg);
            let batch = simulate_batch(&data, &load, &[comp], &cfg);
            assert_eq!(batch.len(), 1);
            assert_metrics_close(&scalar.metrics, &batch[0].metrics, &comp.to_string());
        }
    }

    #[test]
    fn big_batch_matches_scalar_everywhere() {
        let (data, load) = setup();
        let cfg = SimConfig::default();
        // A batch larger than one chunk, mixed shapes, sweep-like ordering.
        let mut comps = Vec::new();
        for w in [0u32, 2, 7] {
            for s in [0.0, 8_000.0, 40_000.0] {
                for b in [0.0, 7_500.0, 37_500.0, 60_000.0] {
                    comps.push(Composition::new(w, s, b));
                }
            }
        }
        let results = simulate_batch(&data, &load, &comps, &cfg);
        assert_eq!(results.len(), comps.len());
        for (comp, r) in comps.iter().zip(&results) {
            assert_eq!(r.composition, *comp, "order preserved");
            let scalar = simulate_year(&data, &load, comp, &cfg);
            assert_metrics_close(&scalar.metrics, &r.metrics, &comp.to_string());
        }
    }

    #[test]
    fn partial_periods_match_scalar() {
        let (data, load) = setup();
        let cfg = SimConfig::default();
        let comps = [
            Composition::new(4, 0.0, 7_500.0),
            Composition::new(0, 12_000.0, 37_500.0),
        ];
        for n in [1usize, 24, 1_095, 8_760] {
            let batch = simulate_batch_period(&data, &load, &comps, &cfg, n);
            for (comp, r) in comps.iter().zip(&batch) {
                let scalar = simulate_period(&data, &load, comp, &cfg, n);
                assert_metrics_close(&scalar.metrics, &r.metrics, &format!("{comp} n={n}"));
            }
        }
    }

    #[test]
    fn policies_agree_including_stateful_battery_interaction() {
        let (data, load) = setup();
        for policy in [
            DispatchPolicy::Islanded,
            DispatchPolicy::CarbonAwareGridCharge {
                ci_threshold_g_per_kwh: 330.0,
                target_soc: 0.9,
            },
            DispatchPolicy::BatterySparing {
                deficit_threshold_kw: 200.0,
            },
        ] {
            let cfg = SimConfig {
                policy,
                ..SimConfig::default()
            };
            let comp = Composition::new(3, 8_000.0, 22_500.0);
            let scalar = simulate_year(&data, &load, &comp, &cfg);
            let batch = simulate_batch(&data, &load, &[comp], &cfg);
            assert_metrics_close(&scalar.metrics, &batch[0].metrics, policy.name());
        }
    }

    #[test]
    fn soc_traces_match_scalar_exactly() {
        let (data, load) = setup();
        let cfg = SimConfig {
            record_soc: true,
            ..SimConfig::default()
        };
        let comp = Composition::new(2, 4_000.0, 15_000.0);
        let scalar = simulate_year(&data, &load, &comp, &cfg);
        let batch = simulate_batch(&data, &load, &[comp], &cfg);
        assert_eq!(scalar.soc_trace_hourly, batch[0].soc_trace_hourly);
    }

    #[test]
    fn evaluators_agree_and_preserve_order() {
        let (data, load) = setup();
        let cfg = SimConfig::default();
        let comps: Vec<Composition> = (0..10)
            .map(|i| Composition::new(i % 5, (i % 3) as f64 * 10_000.0, (i % 4) as f64 * 7_500.0))
            .collect();
        let scalar = ScalarEvaluator {
            data: &data,
            load: &load,
            cfg: &cfg,
        };
        let batch = BatchEvaluator::new(&data, &load, &cfg);
        let a = scalar.evaluate_batch(&comps);
        let b = batch.evaluate_batch(&comps);
        for ((x, y), comp) in a.iter().zip(&b).zip(&comps) {
            assert_eq!(x.composition, *comp);
            assert_eq!(y.composition, *comp);
            assert_metrics_close(&x.metrics, &y.metrics, &comp.to_string());
        }
        let single = batch.evaluate(&comps[3]);
        assert_metrics_close(&b[3].metrics, &single.metrics, "single-eval");
    }

    #[test]
    fn empty_batch_is_empty() {
        let (data, load) = setup();
        let out = simulate_batch(&data, &load, &[], &SimConfig::default());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "n_steps must be positive")]
    fn zero_step_period_panics_instead_of_reporting_garbage_rates() {
        // Regression: a zero-step window used to fall through to the
        // `days.max(1e-9)` guard in the finish formulas and report
        // near-zero-day rates; the API boundary now rejects it.
        let (data, load) = setup();
        simulate_batch_period(
            &data,
            &load,
            &[Composition::BASELINE],
            &SimConfig::default(),
            0,
        );
    }

    #[test]
    #[should_panic(expected = "n_steps must be positive")]
    fn evaluator_zero_step_period_panics() {
        let (data, load) = setup();
        let cfg = SimConfig::default();
        BatchEvaluator::new(&data, &load, &cfg).evaluate_batch_period(&[Composition::BASELINE], 0);
    }

    #[test]
    fn simd_walk_is_bit_identical_to_scalar_walk_for_every_policy() {
        let (data, load) = setup();
        for policy in [
            DispatchPolicy::SelfConsumption,
            DispatchPolicy::Islanded,
            DispatchPolicy::CarbonAwareGridCharge {
                ci_threshold_g_per_kwh: 330.0,
                target_soc: 0.9,
            },
            DispatchPolicy::BatterySparing {
                deficit_threshold_kw: 200.0,
            },
        ] {
            let cfg = SimConfig {
                policy,
                ..SimConfig::default()
            };
            // Batch sizes exercising full lanes, the remainder loop and
            // multiple chunks; null-battery lanes included.
            let comps: Vec<Composition> = (0..67)
                .map(|i| {
                    Composition::new(
                        (i % 5) as u32,
                        (i % 3) as f64 * 10_000.0,
                        (i % 4) as f64 * 7_500.0,
                    )
                })
                .collect();
            let scalar = BatchEvaluator::new(&data, &load, &cfg)
                .with_backend(BatchBackend::Scalar)
                .evaluate_batch(&comps);
            let simd = BatchEvaluator::new(&data, &load, &cfg)
                .with_backend(BatchBackend::Simd)
                .evaluate_batch(&comps);
            for (a, b) in scalar.iter().zip(&simd) {
                assert_eq!(
                    a.metrics,
                    b.metrics,
                    "{}: {} diverges",
                    policy.name(),
                    a.composition
                );
            }
        }
    }

    #[test]
    fn soc_recording_falls_back_to_the_scalar_walk() {
        // The lane walk records no SoC traces; forcing it with
        // record_soc on must still produce the scalar traces.
        let (data, load) = setup();
        let cfg = SimConfig {
            record_soc: true,
            ..SimConfig::default()
        };
        let comp = Composition::new(2, 4_000.0, 15_000.0);
        let forced = BatchEvaluator::new(&data, &load, &cfg)
            .with_backend(BatchBackend::Simd)
            .evaluate(&comp);
        assert_eq!(forced.soc_trace_hourly.len(), 8_760);
    }

    #[test]
    #[should_panic(expected = "load length mismatch")]
    fn mismatched_load_panics() {
        let (data, _) = setup();
        let short = TimeSeries::new(SimDuration::from_hours(1.0), vec![1.0; 100]);
        simulate_batch(
            &data,
            &short,
            &[Composition::BASELINE],
            &SimConfig::default(),
        );
    }
}

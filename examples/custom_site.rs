//! Extensibility: define a *custom* site from scratch — a windy North-Sea
//! coast location with a dirty grid — and run the full sizing study on it.
//! Everything the paper's two case studies use (climatology → SAM models →
//! CI → optimizer) is user-composable.
//!
//! ```bash
//! cargo run --release --example custom_site
//! ```

use microgrid_opt::gridcarbon::{CarbonIntensityModel, GridRegion, PriceModel};
use microgrid_opt::microgrid::site::{Site, SiteData};
use microgrid_opt::prelude::*;
use microgrid_opt::weather::climate::{SolarClimate, TemperatureClimate, WindClimate};
use microgrid_opt::weather::{Climate, Location};

fn north_sea_climate() -> Climate {
    Climate {
        location: Location {
            name: "Esbjerg-like coast".into(),
            latitude_deg: 55.5,
            longitude_deg: 8.5,
            elevation_m: 10.0,
            timezone_h: 1.0,
        },
        solar: SolarClimate {
            clear_kci_mean: 0.92,
            clear_kci_std: 0.06,
            cloudy_kci_mean: 0.30,
            cloudy_kci_std: 0.12,
            // North-Sea maritime: cloudy most of the year.
            monthly_cloudy_prob: [
                0.68, 0.62, 0.55, 0.48, 0.45, 0.42, 0.45, 0.45, 0.50, 0.58, 0.66, 0.70,
            ],
            cloudy_persistence_h: 18.0,
            kci_decorrelation_h: 3.0,
        },
        wind: WindClimate {
            weibull_scale_ms: 9.5, // superb coastal wind
            weibull_shape: 2.2,
            monthly_scale_factor: [
                1.18, 1.12, 1.08, 0.95, 0.88, 0.85, 0.82, 0.85, 0.98, 1.10, 1.15, 1.20,
            ],
            diurnal_amplitude: 0.08,
            diurnal_peak_hour: 14.0,
            decorrelation_h: 12.0,
            ref_height_m: 100.0,
            shear_exponent: 0.11,
        },
        temperature: TemperatureClimate {
            monthly_mean_c: [
                1.5, 1.5, 3.5, 7.0, 11.5, 14.5, 16.5, 16.5, 13.5, 9.5, 5.5, 2.5,
            ],
            diurnal_swing_c: 5.0,
            anomaly_std_c: 2.0,
        },
    }
}

fn main() {
    // Assemble the site with an ERCOT-like (gas-heavy) CI profile scaled
    // to a dirtier mean, standing in for a coal-and-gas grid.
    let mut ci_model = CarbonIntensityModel::for_region(GridRegion::Ercot);
    ci_model.annual_mean_g_per_kwh = 520.0;

    let site = Site {
        name: "Esbjerg-like coast".into(),
        climate: north_sea_climate(),
        grid_region: GridRegion::Ercot,
        price_model: PriceModel::ercot_wholesale(),
    };
    let step = SimDuration::from_hours(1.0);
    let mut data: SiteData = site.prepare(step, 42);
    // Swap the CI trace for the custom dirty-grid model.
    data.ci_g_per_kwh = ci_model.generate(step, 42);

    let load = WorkloadConfig::PerlmutterLike { mean_kw: 1_620.0 }.generate(step, 42);
    println!(
        "custom site: {}\n  solar CF {:.1} %, wind CF {:.1} %, grid CI {:.0} g/kWh",
        data.site.name,
        data.solar_capacity_factor() * 100.0,
        data.wind_capacity_factor() * 100.0,
        data.ci_g_per_kwh.mean()
    );

    let cfg = SimConfig::default();
    println!("\nsizing ladder (wind-dominated site):");
    println!(
        "  {:<34} {:>10} {:>10} {:>8}",
        "composition", "embodied t", "op t/day", "cov %"
    );
    for comp in [
        Composition::BASELINE,
        Composition::new(2, 0.0, 0.0),
        Composition::new(4, 0.0, 7_500.0),
        Composition::new(6, 4_000.0, 22_500.0),
        Composition::new(10, 8_000.0, 60_000.0),
    ] {
        let r = simulate_year(&data, &load, &comp, &cfg);
        println!(
            "  {:<34} {:>10.0} {:>10.2} {:>8.2}",
            format!("{comp}"),
            r.metrics.embodied_t,
            r.metrics.operational_t_per_day,
            r.metrics.coverage_pct()
        );
    }

    println!("\nwith a 9.5 m/s Weibull scale, even modest turbine counts decarbonize");
    println!("faster per embodied ton than any solar build at 55° N — the framework");
    println!("surfaces this directly from the user-defined climatology.");
}

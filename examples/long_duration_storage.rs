//! Storage-technology comparison: lithium-ion (C/L/C) vs hydrogen vs
//! pumped hydro riding through a multi-day wind lull — the "additional
//! technologies such as hydrogen production and storage, and long-duration
//! storage systems like pumped hydro" the paper names as extensions.
//!
//! ```bash
//! cargo run --release --example long_duration_storage
//! ```

use microgrid_opt::cosim::{Actor, MemoryMonitor, Microgrid, SelfConsumption, SignalActor};
use microgrid_opt::prelude::*;
use microgrid_opt::storage::{
    ClcBattery, HydrogenParams, HydrogenStorage, PumpedHydro, PumpedHydroParams, Storage,
};
use microgrid_opt::units::Energy;

/// Build a synthetic 10-day scenario: a 1 MW flat load, strong wind for
/// the first 4 days, then a 4-day lull, then recovery.
fn lull_profile(step: SimDuration) -> TimeSeries {
    TimeSeries::from_fn_year(step, |t| {
        let day = t.hours() / 24.0;
        if day < 4.0 {
            2_200.0 // surplus: 2.2 MW of wind vs 1 MW load
        } else if day < 8.0 {
            80.0 // becalmed
        } else {
            2_200.0
        }
    })
}

fn run_with(storage: Box<dyn Storage + Send>, name: &str) {
    let step = SimDuration::from_hours(1.0);
    let actors: Vec<Box<dyn Actor>> = vec![
        Box::new(SignalActor::producer("wind", lull_profile(step))),
        Box::new(SignalActor::consumer(
            "load",
            TimeSeries::constant_year(step, 1_000.0),
        )),
    ];
    let mut mg = Microgrid::new(actors, storage, Box::new(SelfConsumption::default()));
    let mut mon = MemoryMonitor::new();
    mg.run(
        SimTime::START,
        SimDuration::from_days(10),
        step,
        &mut [&mut mon],
    );

    let import_kwh: f64 = mon.records().iter().map(|r| r.grid_import().kw()).sum();
    let export_kwh: f64 = mon.records().iter().map(|r| r.grid_export().kw()).sum();
    // Hours during the lull (days 4-8) covered without any import.
    let lull = &mon.records()[4 * 24..8 * 24];
    let covered = lull.iter().filter(|r| r.grid_import().kw() < 1.0).count();
    println!(
        "  {:<22} import {:>8.0} kWh   export {:>8.0} kWh   lull hours covered {:>3}/96",
        name, import_kwh, export_kwh, covered
    );
}

fn main() {
    println!("10-day scenario: 4 windy days, a 4-day lull, then recovery (1 MW load)\n");

    // All three stores sized to ~90 MWh of *deliverable* energy.
    run_with(
        Box::new(ClcBattery::with_defaults(Energy::from_mwh(100.0))),
        "lithium-ion (C/L/C)",
    );
    run_with(
        Box::new(HydrogenStorage::new(
            Energy::from_mwh(165.0), // 165 MWh H2 * 0.55 fuel cell = ~91 MWh
            HydrogenParams {
                electrolyzer_kw: 2_000.0,
                fuel_cell_kw: 1_200.0,
                initial_fill: 0.2,
                ..HydrogenParams::default()
            },
        )),
        "hydrogen (PEM + tank)",
    );
    run_with(
        Box::new(PumpedHydro::new(PumpedHydroParams {
            reservoir_m3: 125_000.0, // ~102 MWh potential at 300 m head
            head_m: 300.0,
            pump_kw: 2_000.0,
            turbine_kw: 1_200.0,
            initial_fill: 0.2,
            ..PumpedHydroParams::default()
        })),
        "pumped hydro",
    );

    println!("\nnote how round-trip efficiency (Li-ion ~0.90, pumped hydro ~0.78,");
    println!("hydrogen ~0.36) trades against energy-capacity cost: hydrogen wastes");
    println!("the most surplus but is the only technology whose tank can grow to");
    println!("seasonal scale without scaling embodied battery carbon.");
}

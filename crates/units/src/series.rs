//! Fixed-step time series.
//!
//! [`TimeSeries`] is the lingua franca of the workspace: the weather
//! generators, the SAM-style performance models, the workload generator and
//! the carbon-intensity synthesizer all emit one, and the co-simulation
//! engine consumes them as step-hold signals.
//!
//! Values carry unit semantics by convention (the producer documents the
//! unit); typed wrappers in downstream crates convert at the boundary.

use serde::{Deserialize, Serialize};

use crate::stats;
use crate::time::{SimDuration, SimTime, SECONDS_PER_YEAR};

/// A uniformly sampled series starting at simulation time zero.
///
/// Sample `i` covers the half-open interval
/// `[i * step, (i + 1) * step)` — i.e. values are *step-hold* (piecewise
/// constant), matching how TMY weather files and power traces are defined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    step_s: i64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Create a series from a step size and samples.
    ///
    /// # Panics
    /// Panics if `step` is not positive or `values` is empty.
    pub fn new(step: SimDuration, values: Vec<f64>) -> Self {
        assert!(step.secs() > 0, "time series step must be positive");
        assert!(
            !values.is_empty(),
            "time series must have at least one sample"
        );
        Self {
            step_s: step.secs(),
            values,
        }
    }

    /// A constant-valued series covering one simulation year at the given step.
    pub fn constant_year(step: SimDuration, value: f64) -> Self {
        let n = (SECONDS_PER_YEAR / step.secs()) as usize;
        Self::new(step, vec![value; n])
    }

    /// Build a year-long series by evaluating `f` at the start of every step.
    pub fn from_fn_year(step: SimDuration, mut f: impl FnMut(SimTime) -> f64) -> Self {
        let n = (SECONDS_PER_YEAR / step.secs()) as usize;
        let values = (0..n)
            .map(|i| f(SimTime::from_secs(i as i64 * step.secs())))
            .collect();
        Self::new(step, values)
    }

    /// Step size.
    #[inline]
    pub fn step(&self) -> SimDuration {
        SimDuration::from_secs(self.step_s)
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the series has no samples (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total covered duration (`len * step`).
    #[inline]
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs(self.step_s * self.values.len() as i64)
    }

    /// Raw samples.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable raw samples.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consume into raw samples.
    #[inline]
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Sample index containing instant `t`, wrapping periodically.
    ///
    /// Series shorter than a full year tile periodically; a year-long
    /// series therefore also answers queries from multi-year projections.
    #[inline]
    pub fn index_of(&self, t: SimTime) -> usize {
        let span = self.step_s * self.values.len() as i64;
        let s = t.secs().rem_euclid(span);
        (s / self.step_s) as usize
    }

    /// Step-hold value at instant `t` (periodic).
    #[inline]
    pub fn at(&self, t: SimTime) -> f64 {
        self.values[self.index_of(t)]
    }

    /// Linearly interpolated value at instant `t` (periodic), treating
    /// samples as point values at step starts.
    pub fn at_lerp(&self, t: SimTime) -> f64 {
        let span = self.step_s * self.values.len() as i64;
        let s = t.secs().rem_euclid(span) as f64;
        let x = s / self.step_s as f64;
        let i = x.floor() as usize;
        let frac = x - i as f64;
        let a = self.values[i];
        let b = self.values[(i + 1) % self.values.len()];
        a + (b - a) * frac
    }

    /// Arithmetic mean of the samples.
    #[inline]
    pub fn mean(&self) -> f64 {
        stats::mean(&self.values)
    }

    /// Smallest sample.
    #[inline]
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample.
    #[inline]
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sum of the samples.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Population standard deviation.
    #[inline]
    pub fn std(&self) -> f64 {
        stats::std(&self.values)
    }

    /// When samples are powers in kW, the total energy in kWh.
    #[inline]
    pub fn energy_kwh(&self) -> f64 {
        self.sum() * self.step_s as f64 / 3_600.0
    }

    /// Map every sample through `f`, preserving the step.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            step_s: self.step_s,
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combine two series of identical shape sample-by-sample.
    ///
    /// # Panics
    /// Panics when steps or lengths differ.
    pub fn zip_with(&self, other: &Self, f: impl Fn(f64, f64) -> f64) -> Self {
        assert_eq!(self.step_s, other.step_s, "zip_with: step mismatch");
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "zip_with: length mismatch"
        );
        Self {
            step_s: self.step_s,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Scale every sample by a constant.
    pub fn scaled(&self, k: f64) -> Self {
        self.map(|v| v * k)
    }

    /// Downsample by an integer factor, averaging consecutive samples —
    /// mean-preserving, so `energy_kwh` is invariant (when the factor
    /// divides the length exactly).
    ///
    /// # Panics
    /// Panics if `factor` is zero or does not divide the length.
    pub fn downsample(&self, factor: usize) -> Self {
        assert!(factor > 0, "downsample factor must be positive");
        assert_eq!(
            self.values.len() % factor,
            0,
            "downsample factor must divide the sample count"
        );
        let values = self
            .values
            .chunks_exact(factor)
            .map(|c| c.iter().sum::<f64>() / factor as f64)
            .collect();
        Self {
            step_s: self.step_s * factor as i64,
            values,
        }
    }

    /// Upsample by an integer factor with step-hold (each sample repeated) —
    /// also mean-preserving.
    pub fn upsample(&self, factor: usize) -> Self {
        assert!(factor > 0, "upsample factor must be positive");
        let mut values = Vec::with_capacity(self.values.len() * factor);
        for &v in &self.values {
            for _ in 0..factor {
                values.push(v);
            }
        }
        Self {
            step_s: self.step_s / factor as i64,
            values,
        }
    }

    /// Resample to an arbitrary step that shares an integer ratio with the
    /// current one (either direction).
    ///
    /// # Panics
    /// Panics when neither step divides the other.
    pub fn resample(&self, step: SimDuration) -> Self {
        let target = step.secs();
        assert!(target > 0, "resample step must be positive");
        if target == self.step_s {
            self.clone()
        } else if target > self.step_s {
            assert_eq!(target % self.step_s, 0, "incompatible resample step");
            self.downsample((target / self.step_s) as usize)
        } else {
            assert_eq!(self.step_s % target, 0, "incompatible resample step");
            self.upsample((self.step_s / target) as usize)
        }
    }

    /// The sub-series for 0-based day `d` (series step must divide a day).
    pub fn day_slice(&self, d: usize) -> &[f64] {
        let per_day = (crate::time::SECONDS_PER_DAY / self.step_s) as usize;
        &self.values[d * per_day..(d + 1) * per_day]
    }

    /// Iterator over `(SimTime, value)` pairs at step starts.
    pub fn iter_timed(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        let step = self.step_s;
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (SimTime::from_secs(i as i64 * step), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SECONDS_PER_DAY, SECONDS_PER_HOUR};

    fn hourly(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(SimDuration::from_hours(1.0), values)
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_step_panics() {
        TimeSeries::new(SimDuration::ZERO, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_series_panics() {
        TimeSeries::new(SimDuration::from_secs(60), vec![]);
    }

    #[test]
    fn constant_year_shape() {
        let ts = TimeSeries::constant_year(SimDuration::from_hours(1.0), 2.5);
        assert_eq!(ts.len(), 8_760);
        assert_eq!(ts.duration().secs(), SECONDS_PER_YEAR);
        assert_eq!(ts.mean(), 2.5);
        assert_eq!(ts.min(), 2.5);
        assert_eq!(ts.max(), 2.5);
    }

    #[test]
    fn from_fn_passes_step_starts() {
        let ts = TimeSeries::from_fn_year(SimDuration::from_hours(1.0), |t| t.hours());
        assert_eq!(ts.values()[0], 0.0);
        assert_eq!(ts.values()[1], 1.0);
        assert_eq!(ts.values()[8_759], 8_759.0);
    }

    #[test]
    fn step_hold_lookup() {
        let ts = hourly(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ts.at(SimTime::from_secs(0)), 1.0);
        assert_eq!(ts.at(SimTime::from_secs(3_599)), 1.0);
        assert_eq!(ts.at(SimTime::from_secs(3_600)), 2.0);
        assert_eq!(ts.at(SimTime::from_hours(3.999)), 4.0);
    }

    #[test]
    fn periodic_wrapping_lookup() {
        let ts = hourly(vec![1.0, 2.0, 3.0, 4.0]);
        // Series spans 4 h; query at 5 h lands in sample 1.
        assert_eq!(ts.at(SimTime::from_hours(5.0)), 2.0);
        // Negative time wraps backwards.
        assert_eq!(ts.at(SimTime::from_secs(-1)), 4.0);
    }

    #[test]
    fn lerp_interpolates_and_wraps() {
        let ts = hourly(vec![0.0, 10.0]);
        assert_eq!(ts.at_lerp(SimTime::from_hours(0.5)), 5.0);
        // Between the last and (wrapped) first sample.
        assert_eq!(ts.at_lerp(SimTime::from_hours(1.5)), 5.0);
    }

    #[test]
    fn energy_of_power_series() {
        // 2 kW for 24 h = 48 kWh
        let ts = TimeSeries::new(
            SimDuration::from_hours(1.0),
            vec![2.0; (SECONDS_PER_DAY / SECONDS_PER_HOUR) as usize],
        );
        assert!((ts.energy_kwh() - 48.0).abs() < 1e-9);
    }

    #[test]
    fn downsample_preserves_mean_and_energy() {
        let ts = hourly(vec![1.0, 3.0, 5.0, 7.0]);
        let ds = ts.downsample(2);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.values(), &[2.0, 6.0]);
        assert_eq!(ds.step().secs(), 2 * 3_600);
        assert!((ds.energy_kwh() - ts.energy_kwh()).abs() < 1e-9);
        assert!((ds.mean() - ts.mean()).abs() < 1e-12);
    }

    #[test]
    fn upsample_holds_and_preserves_energy() {
        let ts = hourly(vec![2.0, 4.0]);
        let us = ts.upsample(4);
        assert_eq!(us.len(), 8);
        assert_eq!(us.step().secs(), 900);
        assert_eq!(us.values()[0..4], [2.0; 4]);
        assert!((us.energy_kwh() - ts.energy_kwh()).abs() < 1e-9);
    }

    #[test]
    fn resample_both_directions_and_identity() {
        let ts = hourly(vec![1.0, 2.0, 3.0, 4.0]);
        let same = ts.resample(SimDuration::from_hours(1.0));
        assert_eq!(same, ts);
        let coarse = ts.resample(SimDuration::from_hours(2.0));
        assert_eq!(coarse.len(), 2);
        let fine = ts.resample(SimDuration::from_minutes(30.0));
        assert_eq!(fine.len(), 8);
    }

    #[test]
    #[should_panic(expected = "incompatible resample step")]
    fn resample_incompatible_panics() {
        hourly(vec![1.0, 2.0]).resample(SimDuration::from_minutes(25.0));
    }

    #[test]
    fn zip_map_scale() {
        let a = hourly(vec![1.0, 2.0]);
        let b = hourly(vec![10.0, 20.0]);
        assert_eq!(a.zip_with(&b, |x, y| x + y).values(), &[11.0, 22.0]);
        assert_eq!(a.map(|x| x * x).values(), &[1.0, 4.0]);
        assert_eq!(a.scaled(3.0).values(), &[3.0, 6.0]);
    }

    #[test]
    fn day_slice_extracts_correct_window() {
        let ts = TimeSeries::from_fn_year(SimDuration::from_hours(1.0), |t| t.hours());
        let d1 = ts.day_slice(1);
        assert_eq!(d1.len(), 24);
        assert_eq!(d1[0], 24.0);
        assert_eq!(d1[23], 47.0);
    }

    #[test]
    fn iter_timed_yields_step_starts() {
        let ts = hourly(vec![5.0, 6.0]);
        let pairs: Vec<_> = ts.iter_timed().collect();
        assert_eq!(pairs[0], (SimTime::from_secs(0), 5.0));
        assert_eq!(pairs[1], (SimTime::from_hours(1.0), 6.0));
    }

    #[test]
    fn std_of_constant_is_zero() {
        let ts = hourly(vec![3.0; 10]);
        assert_eq!(ts.std(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn series_strategy() -> impl Strategy<Value = TimeSeries> {
        (1usize..=4, prop::collection::vec(-1e6f64..1e6, 8..64)).prop_map(|(k, mut v)| {
            // force length divisible by 8 so downsample factors 2,4,8 work
            v.truncate(v.len() / 8 * 8);
            TimeSeries::new(SimDuration::from_secs(k as i64 * 900), v)
        })
    }

    proptest! {
        #[test]
        fn downsample_preserves_energy(ts in series_strategy(), f in prop::sample::select(vec![2usize, 4, 8])) {
            let ds = ts.downsample(f);
            prop_assert!((ds.energy_kwh() - ts.energy_kwh()).abs() <= 1e-6 * ts.energy_kwh().abs().max(1.0));
        }

        #[test]
        fn upsample_preserves_energy(ts in series_strategy(), f in prop::sample::select(vec![2usize, 3, 5])) {
            // only factors dividing the step keep integer seconds
            prop_assume!(ts.step().secs() % f as i64 == 0);
            let us = ts.upsample(f);
            prop_assert!((us.energy_kwh() - ts.energy_kwh()).abs() <= 1e-6 * ts.energy_kwh().abs().max(1.0));
        }

        #[test]
        fn at_always_returns_a_sample(ts in series_strategy(), t in -1_000_000i64..1_000_000) {
            let v = ts.at(SimTime::from_secs(t));
            prop_assert!(ts.values().contains(&v));
        }

        #[test]
        fn min_le_mean_le_max(ts in series_strategy()) {
            prop_assert!(ts.min() <= ts.mean() + 1e-9);
            prop_assert!(ts.mean() <= ts.max() + 1e-9);
        }

        #[test]
        fn map_identity_is_noop(ts in series_strategy()) {
            prop_assert_eq!(ts.map(|v| v), ts.clone());
        }
    }
}

//! The exhaustive sweep: every composition in the space — the ground truth
//! the paper's §4.4 compares NSGA-II against, and the data source for
//! Figure 2 and Tables 1/2.
//!
//! Since the batched engine landed this is a thin wrapper: one columnar
//! [`BatchEvaluator`] pass over the space (time-major, chunk-parallel)
//! instead of one scalar year-simulation per composition.

use mgopt_microgrid::{
    AnnualResult, BatchBackend, BatchEvaluator, Composition, Evaluator, ScalarEvaluator,
};

use crate::scenario::PreparedScenario;

/// Simulate every composition of the scenario's space with the batched
/// columnar engine.
///
/// Results are returned in the space's flat index order.
pub fn sweep_all(scenario: &PreparedScenario) -> Vec<AnnualResult> {
    sweep_all_with_backend(scenario, BatchBackend::Auto)
}

/// [`sweep_all`] with the chunk-walk backend forced — the benchmark bins'
/// like-for-like SIMD-vs-scalar A/B (the walks are bit-identical, so
/// forcing only changes speed).
pub fn sweep_all_with_backend(
    scenario: &PreparedScenario,
    backend: BatchBackend,
) -> Vec<AnnualResult> {
    let comps: Vec<Composition> = scenario.config.space.iter().collect();
    BatchEvaluator::new(&scenario.data, &scenario.load, &scenario.config.sim)
        .with_backend(backend)
        .evaluate_batch(&comps)
}

/// The same sweep through the scalar reference engine (one simulation per
/// composition, rayon-parallel). Kept for cross-checks and benchmarks.
pub fn sweep_all_scalar(scenario: &PreparedScenario) -> Vec<AnnualResult> {
    let comps: Vec<Composition> = scenario.config.space.iter().collect();
    ScalarEvaluator {
        data: &scenario.data,
        load: &scenario.load,
        cfg: &scenario.config.sim,
    }
    .evaluate_batch(&comps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use mgopt_microgrid::CompositionSpace;

    #[test]
    fn sweep_covers_space_in_order() {
        let scenario = ScenarioConfig {
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_berkeley()
        }
        .prepare();
        let results = sweep_all(&scenario);
        assert_eq!(results.len(), 27);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.composition, scenario.config.space.at(i));
        }
        // Baseline first, max build-out last.
        assert_eq!(results[0].metrics.embodied_t, 0.0);
        assert!(results[26].metrics.embodied_t > 30_000.0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let scenario = ScenarioConfig {
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_houston()
        }
        .prepare();
        let a = sweep_all(&scenario);
        let b = sweep_all(&scenario);
        assert_eq!(a, b);
    }

    #[test]
    fn batched_sweep_matches_scalar_reference() {
        let scenario = ScenarioConfig {
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_houston()
        }
        .prepare();
        let batched = sweep_all(&scenario);
        let scalar = sweep_all_scalar(&scenario);
        assert_eq!(batched.len(), scalar.len());
        for (b, s) in batched.iter().zip(&scalar) {
            assert_eq!(b.composition, s.composition);
            // One shared, symmetric tolerance definition across every
            // engine-agreement check (mgopt_units::rel_error), over every
            // metrics field rather than a hand-picked subset.
            let (err, field) = b.metrics.max_rel_error(&s.metrics);
            assert!(err <= 1e-9, "{}: {field} rel err {err:e}", b.composition);
        }
    }
}

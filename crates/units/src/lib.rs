#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # mgopt-units
//!
//! Foundation types for the microgrid-opt workspace: strongly typed physical
//! quantities ([`Power`], [`Energy`], [`Emissions`], [`CarbonIntensity`]), a
//! fixed 365-day simulation calendar ([`SimTime`], [`CalendarTime`]), a
//! fixed-step [`TimeSeries`] container with resampling, and small descriptive
//! statistics helpers.
//!
//! ## Conventions
//!
//! * Power is stored in **kilowatts**, energy in **kilowatt-hours**,
//!   emissions in **kilograms of CO2**, and carbon intensity in
//!   **grams of CO2 per kilowatt-hour** (the unit used by Electricity Maps
//!   and by the paper).
//! * Simulation time is measured in whole seconds since the start of a
//!   365-day, no-leap year (8,760 hours). This mirrors how NREL's System
//!   Advisor Model treats typical-meteorological-year data.
//! * Sign convention for power flows follows Vessim: producers are
//!   positive, consumers negative.

pub mod approx;
pub mod quantity;
pub mod series;
pub mod stats;
pub mod time;

pub use approx::{rel_close, rel_error};
pub use quantity::{CarbonIntensity, Emissions, Energy, Power};
pub use series::TimeSeries;
pub use time::{
    CalendarTime, SimDuration, SimTime, HOURS_PER_YEAR, SECONDS_PER_DAY, SECONDS_PER_HOUR,
    SECONDS_PER_YEAR,
};

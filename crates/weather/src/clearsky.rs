//! Clear-sky global horizontal irradiance.
//!
//! Uses the Haurwitz (1945) model — GHI as a simple function of the solar
//! zenith angle — which is accurate to a few percent for cloudless skies and
//! is the reference model pvlib recommends when only zenith is available.
//! The stochastic cloud layer ([`crate::cloud`]) multiplies this by a
//! clear-sky index to produce all-sky irradiance.

use mgopt_units::SimTime;

use crate::location::Location;
use crate::solar_pos::{sun_position, SunPosition};

/// Clear-sky GHI in W/m² from a precomputed sun position (Haurwitz).
pub fn clearsky_ghi_from_position(pos: &SunPosition) -> f64 {
    let cos_z = pos.cos_zenith();
    if cos_z <= 0.0 {
        return 0.0;
    }
    1_098.0 * cos_z * (-0.059 / cos_z).exp()
}

/// Clear-sky GHI in W/m² for a site at an instant.
pub fn clearsky_ghi(loc: &Location, t: SimTime) -> f64 {
    clearsky_ghi_from_position(&sun_position(loc, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::{SimTime, SECONDS_PER_DAY, SECONDS_PER_HOUR};

    #[test]
    fn zero_at_night_peak_at_noon() {
        let h = Location::houston();
        let midnight = SimTime::from_secs(150 * SECONDS_PER_DAY);
        assert_eq!(clearsky_ghi(&h, midnight), 0.0);

        let mut peak: f64 = 0.0;
        for hr in 0..24 {
            let t = SimTime::from_secs(171 * SECONDS_PER_DAY + hr * SECONDS_PER_HOUR);
            peak = peak.max(clearsky_ghi(&h, t));
        }
        // Summer-solstice clear-sky noon in Houston: ~1000 W/m².
        assert!((900.0..1_100.0).contains(&peak), "peak {peak}");
    }

    #[test]
    fn winter_peak_lower_than_summer_peak() {
        let b = Location::berkeley();
        let peak_on = |day: i64| {
            (0..24)
                .map(|hr| {
                    clearsky_ghi(
                        &b,
                        SimTime::from_secs(day * SECONDS_PER_DAY + hr * SECONDS_PER_HOUR),
                    )
                })
                .fold(0.0f64, f64::max)
        };
        assert!(peak_on(354) < 0.75 * peak_on(171));
    }

    #[test]
    fn never_exceeds_extraterrestrial() {
        let b = Location::berkeley();
        for day in (0..365).step_by(30) {
            for hr in 0..24 {
                let t = SimTime::from_secs(day * SECONDS_PER_DAY + hr * SECONDS_PER_HOUR);
                let ghi = clearsky_ghi(&b, t);
                let ext = crate::solar_pos::extraterrestrial_horizontal_w_m2(&b, t);
                assert!(ghi <= ext + 1e-9, "day {day} hr {hr}: {ghi} > {ext}");
            }
        }
    }

    #[test]
    fn annual_clear_sky_energy_plausible() {
        // Clear-sky annual insolation at mid latitudes: ~2.3-2.9 MWh/m²/yr.
        let b = Location::berkeley();
        let mut wh = 0.0;
        for day in 0..365i64 {
            for hr in 0..24 {
                wh += clearsky_ghi(
                    &b,
                    SimTime::from_secs(day * SECONDS_PER_DAY + hr * SECONDS_PER_HOUR),
                );
            }
        }
        let mwh_per_m2 = wh / 1e6;
        assert!(
            (2.0..3.2).contains(&mwh_per_m2),
            "annual {mwh_per_m2} MWh/m²"
        );
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # mgopt-gridcarbon
//!
//! Synthetic grid carbon-intensity and electricity-price signals — the
//! workspace's substitute for the proprietary Electricity Maps hourly data
//! the paper uses (CAISO and ERCOT, 2024).
//!
//! The carbon model captures the structure that matters for microgrid
//! sizing:
//!
//! * **CAISO** (Berkeley): the solar "duck curve" — deep midday dips, steep
//!   evening ramps — with an annual mean calibrated to ≈240 gCO2/kWh so the
//!   paper's no-microgrid Berkeley baseline (9.33 tCO2/day at 1.62 MW)
//!   reproduces exactly.
//! * **ERCOT** (Houston): wind-at-night structure — lower intensity
//!   overnight, afternoon peaks — with a mean of ≈400 gCO2/kWh matching the
//!   Houston baseline of 15.54 tCO2/day.
//!
//! Generated series are *exactly* mean-calibrated: after synthesis the
//! series is rescaled so its annual mean equals the configured target.

pub mod accounting;
pub mod intensity;
pub mod io;
pub mod marginal;
pub mod price;

pub use intensity::{CarbonIntensityModel, GridRegion};
pub use price::{PriceModel, TariffKind};

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::SimDuration;

    #[test]
    fn crate_level_smoke() {
        let ci = CarbonIntensityModel::for_region(GridRegion::Caiso)
            .generate(SimDuration::from_hours(1.0), 1);
        assert_eq!(ci.len(), 8_760);
    }
}

//! Geo-distributed fleet: both paper sites in one co-simulation
//! environment with a fleet-level carbon account — the multi-microgrid
//! setting the paper's related work (SHIELD, geo-distributed allocation)
//! motivates.
//!
//! ```bash
//! cargo run --release --example geo_distributed
//! ```

use microgrid_opt::cosim::Environment;
use microgrid_opt::microgrid::build_cosim_microgrid;
use microgrid_opt::prelude::*;

fn main() {
    let houston = ScenarioConfig::paper_houston().prepare();
    let berkeley = ScenarioConfig::paper_berkeley().prepare();

    // Site-appropriate builds: wind in Houston, solar in Berkeley.
    let houston_comp = Composition::new(4, 0.0, 7_500.0);
    let berkeley_comp = Composition::new(0, 12_000.0, 37_500.0);
    let cfg = SimConfig::default();

    let mut env = Environment::new();
    env.add_microgrid(
        "houston",
        build_cosim_microgrid(&houston.data, &houston.load, &houston_comp, &cfg),
    );
    env.add_microgrid(
        "berkeley",
        build_cosim_microgrid(&berkeley.data, &berkeley.load, &berkeley_comp, &cfg),
    );

    // Fleet-level accounting: per-site emissions use each site's CI trace.
    let step = houston.data.step();
    let ci = [&houston.data.ci_g_per_kwh, &berkeley.data.ci_g_per_kwh];
    let mut site_kg = [0.0f64; 2];
    let mut site_import_mwh = [0.0f64; 2];
    let mut fleet_peak_import = 0.0f64;

    let results = env.run(
        SimTime::START,
        SimDuration::from_days(365),
        step,
        |i, rec| {
            let kwh = rec.grid_import().kw() * rec.dt.hours();
            site_import_mwh[i] += kwh / 1e3;
            site_kg[i] += kwh * ci[i].at(rec.t) / 1e3;
        },
        |fleet| {
            fleet_peak_import = fleet_peak_import.max(fleet.total_import.kw());
        },
    );

    println!("geo-distributed fleet, one simulated year:\n");
    println!(
        "  {:<10} {:<28} {:>12} {:>14} {:>10}",
        "site", "build", "import MWh", "op tCO2/day", "final SoC"
    );
    for (i, (name, comp)) in [("houston", houston_comp), ("berkeley", berkeley_comp)]
        .iter()
        .enumerate()
    {
        println!(
            "  {:<10} {:<28} {:>12.0} {:>14.2} {:>9.0}%",
            name,
            comp.label(),
            site_import_mwh[i],
            site_kg[i] / 1e3 / 365.0,
            results[i].final_soc * 100.0
        );
    }
    let fleet_t_day = (site_kg[0] + site_kg[1]) / 1e3 / 365.0;
    println!("\n  fleet operational total: {fleet_t_day:.2} tCO2/day");
    println!(
        "  fleet peak concurrent grid import: {:.2} MW",
        fleet_peak_import / 1e3
    );
    println!("\nthe fleet view is what a 24/7 carbon-free-energy program reports on:");
    println!(
        "site-level microgrids cut the fleet account from ~24.9 to ~{fleet_t_day:.0} tCO2/day."
    );
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # mgopt-sam
//!
//! Renewable-generation performance models in the style of NREL's System
//! Advisor Model (SAM) — the two SSC compute modules the paper uses:
//!
//! * [`pvwatts`] — the PVWatts v5 photovoltaic chain: plane-of-array
//!   transposition (isotropic or HDKR), NOCT cell temperature, linear DC
//!   power with temperature derate, system losses, and the PVWatts
//!   part-load inverter curve.
//! * [`windpower`] — the Windpower module: hub-height shear extrapolation,
//!   air-density correction, turbine power curve, and farm-level wake /
//!   availability losses.
//!
//! Both consume a [`mgopt_weather::WeatherYear`] and produce an AC power
//! [`TimeSeries`] (kW) on the same step — exactly how the paper maps SAM
//! output onto Vessim's actor/signal interface.

pub mod pvwatts;
pub mod windpower;

pub use pvwatts::{PvSystem, PvSystemParams, TranspositionModel};
pub use windpower::{PowerCurve, WindFarm, WindFarmParams, WindTurbineParams};

use mgopt_units::TimeSeries;
use mgopt_weather::WeatherYear;

/// A renewable generation system that converts weather into AC power.
pub trait GenerationModel {
    /// Simulate one year; returns AC power in kW at the weather's step.
    fn simulate(&self, weather: &WeatherYear) -> TimeSeries;

    /// Nameplate AC-side rating in kW (for capacity-factor reporting).
    fn rated_kw(&self) -> f64;

    /// Capacity factor of a simulated year.
    fn capacity_factor(&self, weather: &WeatherYear) -> f64 {
        let ts = self.simulate(weather);
        if self.rated_kw() <= 0.0 {
            0.0
        } else {
            ts.mean() / self.rated_kw()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::SimDuration;
    use mgopt_weather::{Climate, WeatherGenerator};

    #[test]
    fn trait_objects_compose() {
        let weather =
            WeatherGenerator::new(Climate::berkeley(), 1).generate(SimDuration::from_hours(1.0));
        let systems: Vec<Box<dyn GenerationModel>> = vec![
            Box::new(PvSystem::with_capacity_kw(
                4_000.0,
                weather.location.latitude_deg,
            )),
            Box::new(WindFarm::with_turbines(2)),
        ];
        for s in &systems {
            let ts = s.simulate(&weather);
            assert_eq!(ts.len(), weather.len());
            let cf = s.capacity_factor(&weather);
            assert!((0.0..1.0).contains(&cf));
        }
    }
}

//! Sites: geography + grid region + the precomputed per-site data that all
//! optimization trials share.
//!
//! The expensive work — synthesizing a weather year and pushing it through
//! the SAM-style performance models — happens **once per site** in
//! [`Site::prepare`]. Both generation technologies are linear in installed
//! capacity (PVWatts scales with DC nameplate at fixed DC/AC ratio; a farm
//! of identical turbines scales with the turbine count), so the sweep only
//! needs *unit profiles*: AC output per kW of solar and per turbine.

use mgopt_gridcarbon::{CarbonIntensityModel, GridRegion, PriceModel};
use mgopt_sam::{GenerationModel, PvSystem, WindFarm};
use mgopt_units::{SimDuration, TimeSeries};
use mgopt_weather::{Climate, WeatherGenerator, WeatherYear};
use serde::{Deserialize, Serialize};

/// A data-center site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Site name.
    pub name: String,
    /// Weather climatology.
    pub climate: Climate,
    /// Grid region for carbon intensity.
    pub grid_region: GridRegion,
    /// Electricity tariff.
    pub price_model: PriceModel,
}

impl Site {
    /// Berkeley, CA on the CAISO grid (paper case study 1).
    pub fn berkeley() -> Self {
        Self {
            name: "Berkeley, CA".into(),
            climate: Climate::berkeley(),
            grid_region: GridRegion::Caiso,
            price_model: PriceModel::caiso_tou(),
        }
    }

    /// Houston, TX on the ERCOT grid (paper case study 2).
    pub fn houston() -> Self {
        Self {
            name: "Houston, TX".into(),
            climate: Climate::houston(),
            grid_region: GridRegion::Ercot,
            price_model: PriceModel::ercot_wholesale(),
        }
    }

    /// Precompute everything the sweep needs at the given step.
    pub fn prepare(&self, step: SimDuration, seed: u64) -> SiteData {
        let weather = WeatherGenerator::new(self.climate.clone(), seed).generate(step);

        let pv = PvSystem::with_capacity_kw(1_000.0, self.climate.location.latitude_deg);
        let pv_unit_kw = pv.simulate(&weather).scaled(1.0 / 1_000.0);

        let wind = WindFarm::with_turbines(1);
        let wind_unit_kw = wind.simulate(&weather);

        let ci = CarbonIntensityModel::for_region(self.grid_region).generate(step, seed);
        let ci = couple_ci_to_weather(self.grid_region, &ci, &pv_unit_kw, &wind_unit_kw);
        let price = self.price_model.generate(step, seed);

        SiteData {
            site: self.clone(),
            weather,
            pv_unit_kw,
            wind_unit_kw,
            ci_g_per_kwh: ci,
            price_usd_per_mwh: price,
        }
    }
}

/// Couple grid carbon intensity to the site's weather.
///
/// The grid's own renewable fleet experiences the same weather systems as
/// the co-located microgrid: a becalmed week in ERCOT means both the
/// microgrid's turbines *and* the grid's wind fleet are down, so imports
/// during local lulls are dirtier than the annual mean. Without this
/// coupling, a co-simulated microgrid would import mostly at average CI and
/// partial-coverage operational emissions would come out unrealistically
/// low (the paper's Table 1/2 rows imply import-weighted CI ~20-30 % above
/// the mean).
///
/// ERCOT couples to wind (hourly); CAISO couples to daily solar yield
/// relative to a 31-day seasonal expectation (an overcast *anomaly* — a
/// normal winter day is already priced into the diurnal template). The
/// result is rescaled so the annual mean stays exactly calibrated.
fn couple_ci_to_weather(
    region: GridRegion,
    ci: &TimeSeries,
    pv_unit_kw: &TimeSeries,
    wind_unit_kw: &TimeSeries,
) -> TimeSeries {
    let n = ci.len();
    let mut values = ci.values().to_vec();
    match region {
        GridRegion::Ercot => {
            // Hourly coupling to the wind resource.
            const ALPHA: f64 = 0.35;
            let mean_wind = wind_unit_kw.mean().max(1e-9);
            for (v, &w) in values.iter_mut().zip(wind_unit_kw.values()) {
                let rel = (w / mean_wind).min(2.0);
                *v *= 1.0 + ALPHA * (1.0 - rel);
            }
        }
        GridRegion::Caiso => {
            // Daily coupling to the solar anomaly vs seasonal expectation.
            const ALPHA: f64 = 0.30;
            let steps_per_day = (mgopt_units::SECONDS_PER_DAY / ci.step().secs()) as usize;
            let days = n / steps_per_day;
            let daily: Vec<f64> = (0..days)
                .map(|d| {
                    pv_unit_kw.values()[d * steps_per_day..(d + 1) * steps_per_day]
                        .iter()
                        .sum::<f64>()
                })
                .collect();
            // 31-day centered rolling mean (periodic) as the seasonal norm.
            let seasonal: Vec<f64> = (0..days)
                .map(|d| {
                    let mut s = 0.0;
                    for k in 0..31 {
                        let idx = (d + days + k - 15) % days;
                        s += daily[idx];
                    }
                    (s / 31.0).max(1e-9)
                })
                .collect();
            for d in 0..days {
                let rel = (daily[d] / seasonal[d]).min(2.0);
                let factor = 1.0 + ALPHA * (1.0 - rel);
                for v in values[d * steps_per_day..(d + 1) * steps_per_day].iter_mut() {
                    *v *= factor;
                }
            }
        }
    }
    // Exact mean re-calibration and a positivity floor.
    let target = ci.mean();
    let mean: f64 = values.iter().sum::<f64>() / n as f64;
    let scale = target / mean;
    for v in values.iter_mut() {
        *v = (*v * scale).max(20.0);
    }
    TimeSeries::new(ci.step(), values)
}

/// Precomputed per-site simulation inputs.
#[derive(Debug, Clone)]
pub struct SiteData {
    /// The site definition.
    pub site: Site,
    /// The synthesized weather year.
    pub weather: WeatherYear,
    /// AC output of 1 kW(DC) of PVWatts solar, kW per kW.
    pub pv_unit_kw: TimeSeries,
    /// AC output of one 3 MW turbine including farm losses, kW.
    pub wind_unit_kw: TimeSeries,
    /// Grid carbon intensity, gCO2/kWh.
    pub ci_g_per_kwh: TimeSeries,
    /// Electricity price, $/MWh.
    pub price_usd_per_mwh: TimeSeries,
}

impl SiteData {
    /// The shared step of all series.
    pub fn step(&self) -> SimDuration {
        self.pv_unit_kw.step()
    }

    /// Number of samples per series.
    pub fn len(&self) -> usize {
        self.pv_unit_kw.len()
    }

    /// `true` when empty (cannot happen by construction).
    pub fn is_empty(&self) -> bool {
        self.pv_unit_kw.is_empty()
    }

    /// Solar capacity factor of the unit profile.
    pub fn solar_capacity_factor(&self) -> f64 {
        self.pv_unit_kw.mean()
    }

    /// Wind capacity factor of the unit profile (3 MW turbine).
    pub fn wind_capacity_factor(&self) -> f64 {
        self.wind_unit_kw.mean() / 3_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prep(site: Site) -> SiteData {
        site.prepare(SimDuration::from_hours(1.0), 42)
    }

    #[test]
    fn prepared_series_share_shape() {
        let d = prep(Site::berkeley());
        assert_eq!(d.len(), 8_760);
        assert_eq!(d.pv_unit_kw.len(), d.wind_unit_kw.len());
        assert_eq!(d.ci_g_per_kwh.len(), d.len());
        assert_eq!(d.price_usd_per_mwh.len(), d.len());
        assert_eq!(d.step(), SimDuration::from_hours(1.0));
    }

    #[test]
    fn unit_profiles_are_per_unit() {
        let d = prep(Site::houston());
        // pv_unit peaks below ~0.9 kW per kW DC (inverter + losses).
        assert!(
            d.pv_unit_kw.max() <= 0.95,
            "pv unit max {}",
            d.pv_unit_kw.max()
        );
        // one turbine peaks at ~3 MW derated by wake+availability.
        assert!(d.wind_unit_kw.max() <= 3_000.0 * 0.94 * 0.97 + 1.0);
    }

    #[test]
    fn site_contrast_capacity_factors() {
        let b = prep(Site::berkeley());
        let h = prep(Site::houston());
        assert!(
            b.solar_capacity_factor() > h.solar_capacity_factor(),
            "berkeley solar CF {} vs houston {}",
            b.solar_capacity_factor(),
            h.solar_capacity_factor()
        );
        assert!(
            h.wind_capacity_factor() > 1.5 * b.wind_capacity_factor(),
            "houston wind CF {} vs berkeley {}",
            h.wind_capacity_factor(),
            b.wind_capacity_factor()
        );
    }

    #[test]
    fn deterministic_preparation() {
        let a = prep(Site::berkeley());
        let b = prep(Site::berkeley());
        assert_eq!(a.pv_unit_kw, b.pv_unit_kw);
        assert_eq!(a.wind_unit_kw, b.wind_unit_kw);
        assert_eq!(a.ci_g_per_kwh, b.ci_g_per_kwh);
    }

    #[test]
    fn presets_use_right_regions() {
        assert_eq!(Site::berkeley().grid_region, GridRegion::Caiso);
        assert_eq!(Site::houston().grid_region, GridRegion::Ercot);
    }

    #[test]
    fn ci_coupling_preserves_exact_mean() {
        let h = prep(Site::houston());
        assert!((h.ci_g_per_kwh.mean() - 15_540.0 / 38.88).abs() < 1e-6);
        let b = prep(Site::berkeley());
        assert!((b.ci_g_per_kwh.mean() - 9_330.0 / 38.88).abs() < 1e-6);
    }

    #[test]
    fn ercot_ci_anticorrelates_with_wind() {
        let h = prep(Site::houston());
        // Split hours by wind output; low-wind hours must be dirtier.
        let mean_wind = h.wind_unit_kw.mean();
        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        for (&w, &c) in h.wind_unit_kw.values().iter().zip(h.ci_g_per_kwh.values()) {
            if w < 0.5 * mean_wind {
                lo.push(c);
            } else if w > 1.5 * mean_wind {
                hi.push(c);
            }
        }
        let lo_mean: f64 = lo.iter().sum::<f64>() / lo.len() as f64;
        let hi_mean: f64 = hi.iter().sum::<f64>() / hi.len() as f64;
        assert!(
            lo_mean > 1.15 * hi_mean,
            "calm hours should be dirtier: {lo_mean} vs {hi_mean}"
        );
    }

    #[test]
    fn caiso_ci_dirtier_on_overcast_days() {
        let b = prep(Site::berkeley());
        // Compare the cleanest vs cloudiest summer days by PV yield.
        let day_pv: Vec<f64> = (150..240)
            .map(|d| b.pv_unit_kw.day_slice(d).iter().sum::<f64>())
            .collect();
        let day_ci: Vec<f64> = (150..240)
            .map(|d| b.ci_g_per_kwh.day_slice(d).iter().sum::<f64>() / 24.0)
            .collect();
        let max_pv = day_pv.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let cloudy: Vec<f64> = day_pv
            .iter()
            .zip(&day_ci)
            .filter(|(&p, _)| p < 0.6 * max_pv)
            .map(|(_, &c)| c)
            .collect();
        let sunny: Vec<f64> = day_pv
            .iter()
            .zip(&day_ci)
            .filter(|(&p, _)| p > 0.9 * max_pv)
            .map(|(_, &c)| c)
            .collect();
        if !cloudy.is_empty() && !sunny.is_empty() {
            let cm: f64 = cloudy.iter().sum::<f64>() / cloudy.len() as f64;
            let sm: f64 = sunny.iter().sum::<f64>() / sunny.len() as f64;
            assert!(cm > sm, "cloudy days dirtier: {cm} vs {sm}");
        }
    }
}

//! Long-term planning (paper §4.2 / Figure 3): project cumulative
//! emissions of candidate compositions over a 20-year horizon and find
//! when ambitious builds pay back their embodied carbon.
//!
//! ```bash
//! cargo run --release --example lifetime_projection
//! ```

use microgrid_opt::core::experiments::{fig3, CandidateRow};
use microgrid_opt::core::report;
use microgrid_opt::prelude::*;

fn main() {
    let scenario = ScenarioConfig::paper_houston().prepare();

    // Simulate a small ladder of increasingly ambitious builds.
    let ladder = [
        Composition::BASELINE,
        Composition::new(4, 0.0, 7_500.0),
        Composition::new(3, 8_000.0, 22_500.0),
        Composition::new(4, 12_000.0, 52_500.0),
        Composition::new(10, 40_000.0, 60_000.0),
    ];
    let rows: Vec<CandidateRow> = ladder
        .iter()
        .map(|c| {
            let r = simulate_year(&scenario.data, &scenario.load, c, &scenario.config.sim);
            CandidateRow::from_result(&r)
        })
        .collect();

    let out = fig3::run(scenario.site_name(), &rows, 20);
    print!("{}", report::render_fig3(&out));

    // Pairwise payback: when does each build beat the grid-only baseline?
    println!("\npayback vs grid-only baseline:");
    let base = &rows[0];
    for row in &rows[1..] {
        let years =
            row.embodied_t / ((base.operational_t_per_day - row.operational_t_per_day) * 365.0);
        println!(
            "  {:<14} embodied {:>7.0} t  pays back in {:>5.1} years",
            row.label(),
            row.embodied_t,
            years
        );
    }
    println!("\nnote: minimizing operational emissions at all costs is not optimal");
    println!("over the system lifetime — the largest build stays carbon-negative");
    println!("against the baseline only after many years of operation.");
}

//! Cross-engine agreement: the fast sweep path, the cosim fixed-step bus,
//! the mosaik-style event engine and the batched columnar engine must all
//! tell the same physical story.

use std::sync::OnceLock;

use microgrid_opt::cosim::engine as cosim_engine;
use microgrid_opt::cosim::{EventEngine, MemoryMonitor};
use microgrid_opt::microgrid::{
    build_cosim_microgrid, simulate_batch, simulate_batch_period,
    simulate_batch_period_with_backend, simulate_period, simulate_year_cosim, AnnualMetrics,
    BatchBackend,
};
use microgrid_opt::prelude::*;
use proptest::prelude::*;

fn scenario() -> PreparedScenario {
    ScenarioConfig {
        space: CompositionSpace::tiny(),
        ..ScenarioConfig::paper_houston()
    }
    .prepare()
}

#[test]
fn fast_path_matches_cosim_across_compositions() {
    let s = scenario();
    for comp in [
        Composition::BASELINE,
        Composition::new(2, 0.0, 0.0),
        Composition::new(0, 16_000.0, 22_500.0),
        Composition::new(6, 24_000.0, 60_000.0),
    ] {
        let fast = simulate_year(&s.data, &s.load, &comp, &s.config.sim);
        let cosim = simulate_year_cosim(&s.data, &s.load, &comp, &s.config.sim);
        let (a, b) = (&fast.metrics, &cosim.metrics);
        assert!(
            (a.operational_t_per_day - b.operational_t_per_day).abs() < 1e-9,
            "{comp}: {} vs {}",
            a.operational_t_per_day,
            b.operational_t_per_day
        );
        assert!((a.coverage - b.coverage).abs() < 1e-9, "{comp}");
        assert!(
            (a.grid_export_mwh - b.grid_export_mwh).abs() < 1e-6,
            "{comp}"
        );
        assert!((a.battery_cycles - b.battery_cycles).abs() < 1e-9, "{comp}");
    }
}

#[test]
fn event_engine_matches_fixed_step_on_microgrid() {
    let s = scenario();
    let comp = Composition::new(4, 8_000.0, 22_500.0);
    let dt = s.data.step();
    let horizon = SimDuration::from_days(14);

    let mut fixed_mg = build_cosim_microgrid(&s.data, &s.load, &comp, &s.config.sim);
    let mut fixed_mon = MemoryMonitor::new();
    fixed_mg.run(SimTime::START, horizon, dt, &mut [&mut fixed_mon]);

    let mut event_mg = build_cosim_microgrid(&s.data, &s.load, &comp, &s.config.sim);
    let mut event_mon = MemoryMonitor::new();
    cosim_engine::EventEngine::new(dt).run(
        &mut event_mg,
        SimTime::START,
        horizon,
        &mut [&mut event_mon],
    );

    assert_eq!(fixed_mon.records(), event_mon.records());
}

#[test]
fn event_engine_with_coarse_actor_conserves_energy() {
    // A producer evaluated every 3 h on a 1 h bus: total produced energy
    // equals the step-hold integral of its trace.
    use microgrid_opt::cosim::{Actor, Microgrid, SelfConsumption, SignalActor};
    use microgrid_opt::storage::NullStorage;

    let s = scenario();
    let coarse = SimDuration::from_hours(3.0);
    let pv = s.data.pv_unit_kw.scaled(10_000.0);
    let actors: Vec<Box<dyn Actor>> = vec![Box::new(
        SignalActor::producer("pv", pv.clone()).with_step_size(coarse),
    )];
    let mut mg = Microgrid::new(
        actors,
        Box::new(NullStorage::new()),
        Box::new(SelfConsumption::default()),
    );
    let mut mon = MemoryMonitor::new();
    EventEngine::new(SimDuration::from_hours(1.0)).run(
        &mut mg,
        SimTime::START,
        SimDuration::from_days(30),
        &mut [&mut mon],
    );
    let simulated_kwh: f64 = mon
        .records()
        .iter()
        .map(|r| r.p_production.kw() * r.dt.hours())
        .sum();
    // Expected: the trace held at 3 h cadence.
    let mut expected = 0.0;
    for i in (0..(30 * 24)).step_by(3) {
        expected += pv.at(SimTime::from_hours(i as f64)) * 3.0;
    }
    assert!(
        (simulated_kwh - expected).abs() < 1e-6,
        "{simulated_kwh} vs {expected}"
    );
}

// ---------------------------------------------------------------------
// Three-engine property: scalar, cosim and batch agree on random
// compositions across both paper scenarios, including partial-fidelity
// simulate_period windows (scalar vs batch).
// ---------------------------------------------------------------------

fn houston() -> &'static PreparedScenario {
    static S: OnceLock<PreparedScenario> = OnceLock::new();
    S.get_or_init(|| ScenarioConfig::paper_houston().prepare())
}

fn berkeley() -> &'static PreparedScenario {
    static S: OnceLock<PreparedScenario> = OnceLock::new();
    S.get_or_init(|| ScenarioConfig::paper_berkeley().prepare())
}

fn arbitrary_composition() -> impl Strategy<Value = Composition> {
    // The paper grid: wind 0-10 turbines, solar 0-40 MW, battery 0-60 MWh.
    (0u32..=10, 0usize..=10, 0usize..=8)
        .prop_map(|(w, s, b)| Composition::new(w, s as f64 * 4_000.0, b as f64 * 7_500.0))
}

/// Relative 1e-9 agreement on every metrics field, through the one shared
/// symmetric tolerance definition (`mgopt_units::rel_error` via
/// `AnnualMetrics::max_rel_error`) — the old per-test copies scaled the
/// tolerance by whichever argument came first.
fn assert_all_fields_close(a: &AnnualMetrics, b: &AnnualMetrics, what: &str) {
    let (err, field) = a.max_rel_error(b);
    assert!(err <= 1e-9, "{what}: {field} rel err {err:e}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn three_engines_agree_on_random_compositions(comp in arbitrary_composition()) {
        for s in [houston(), berkeley()] {
            let scalar = simulate_year(&s.data, &s.load, &comp, &s.config.sim);
            let batch = simulate_batch(&s.data, &s.load, &[comp], &s.config.sim)
                .pop()
                .unwrap();
            let cosim = simulate_year_cosim(&s.data, &s.load, &comp, &s.config.sim);
            assert_all_fields_close(
                &scalar.metrics,
                &batch.metrics,
                &format!("{} scalar-vs-batch {comp}", s.site_name()),
            );
            // The cosim bus accumulates in a different per-step order, so
            // its agreement bound is the looser pre-existing guarantee.
            prop_assert!(
                (scalar.metrics.operational_t_per_day - cosim.metrics.operational_t_per_day).abs()
                    < 1e-9
            );
            prop_assert!((scalar.metrics.coverage - cosim.metrics.coverage).abs() < 1e-9);
            prop_assert!((scalar.metrics.battery_cycles - cosim.metrics.battery_cycles).abs() < 1e-9);
        }
    }

    #[test]
    fn batch_period_windows_agree_with_scalar(
        comp in arbitrary_composition(),
        n_steps in prop::sample::select(vec![1usize, 24, 168, 1_095, 4_380, 8_760]),
    ) {
        for s in [houston(), berkeley()] {
            let scalar = simulate_period(&s.data, &s.load, &comp, &s.config.sim, n_steps);
            let batch = simulate_batch_period(&s.data, &s.load, &[comp], &s.config.sim, n_steps)
                .pop()
                .unwrap();
            assert_all_fields_close(
                &scalar.metrics,
                &batch.metrics,
                &format!("{} period={n_steps} {comp}", s.site_name()),
            );
        }
    }

    /// The SIMD chunk walk is **bit-identical** to the scalar chunk walk —
    /// not ≤1e-9 — on both paper sites, across partial windows and batch
    /// sizes straddling the lane width (4) and the chunk size (64): lanes
    /// hold different candidates, so per-candidate arithmetic order never
    /// changes.
    #[test]
    fn simd_batch_is_bit_identical_to_scalar_batch(
        comps in prop::collection::vec(arbitrary_composition(), 65),
        size in prop::sample::select(vec![1usize, 3, 4, 5, 63, 64, 65]),
        n_steps in prop::sample::select(vec![1usize, 24, 168, 1_095, 8_760]),
    ) {
        let cohort = &comps[..size];
        for s in [houston(), berkeley()] {
            let scalar = simulate_batch_period_with_backend(
                &s.data, &s.load, cohort, &s.config.sim, n_steps, BatchBackend::Scalar,
            );
            let simd = simulate_batch_period_with_backend(
                &s.data, &s.load, cohort, &s.config.sim, n_steps, BatchBackend::Simd,
            );
            for (a, b) in scalar.iter().zip(&simd) {
                prop_assert_eq!(a.composition, b.composition);
                for ((name, va), (_, vb)) in
                    a.metrics.fields().into_iter().zip(b.metrics.fields())
                {
                    prop_assert_eq!(
                        va.to_bits(),
                        vb.to_bits(),
                        "{} size={} n={} {}: {name} {va:e} vs {vb:e}",
                        s.site_name(), size, n_steps, a.composition,
                    );
                }
            }
        }
    }
}

#[test]
fn batched_tiny_sweep_agrees_with_scalar_engine_on_both_sites() {
    for site in [SitePreset::Houston, SitePreset::Berkeley] {
        let s = ScenarioConfig {
            site,
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_houston()
        }
        .prepare();
        let comps: Vec<Composition> = s.config.space.iter().collect();
        let batch = simulate_batch(&s.data, &s.load, &comps, &s.config.sim);
        for (comp, b) in comps.iter().zip(&batch) {
            let scalar = simulate_year(&s.data, &s.load, comp, &s.config.sim);
            assert_all_fields_close(&scalar.metrics, &b.metrics, &format!("{comp}"));
        }
    }
}

#[test]
fn subhourly_and_hourly_agree_on_annual_statistics() {
    // 15-minute and hourly simulation of the same composition should agree
    // on annual energy statistics within a small tolerance (the weather
    // process differs in sampling, both exactly calibrated in the mean).
    let hourly = ScenarioConfig {
        step_minutes: 60,
        space: CompositionSpace::tiny(),
        ..ScenarioConfig::paper_houston()
    }
    .prepare();
    let quarter = ScenarioConfig {
        step_minutes: 15,
        space: CompositionSpace::tiny(),
        ..ScenarioConfig::paper_houston()
    }
    .prepare();

    let comp = Composition::new(4, 8_000.0, 22_500.0);
    let rh = simulate_year(&hourly.data, &hourly.load, &comp, &hourly.config.sim);
    let rq = simulate_year(&quarter.data, &quarter.load, &comp, &quarter.config.sim);

    let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1e-9);
    assert!(
        rel(rh.metrics.coverage, rq.metrics.coverage) < 0.05,
        "coverage {} vs {}",
        rh.metrics.coverage,
        rq.metrics.coverage
    );
    assert!(
        rel(rh.metrics.demand_mwh, rq.metrics.demand_mwh) < 0.01,
        "demand {} vs {}",
        rh.metrics.demand_mwh,
        rq.metrics.demand_mwh
    );
}

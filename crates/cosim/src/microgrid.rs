//! The microgrid bus: power-balance resolution and the fixed-step engine.

use mgopt_storage::Storage;
use mgopt_units::{Power, SimDuration, SimTime};

use crate::actor::Actor;
use crate::dispatch::{BusState, DispatchStrategy};
use crate::record::{Monitor, StepRecord};

/// A microgrid: actors + storage + dispatch strategy on one bus.
pub struct Microgrid {
    pub(crate) actors: Vec<Box<dyn Actor>>,
    pub(crate) storage: Box<dyn Storage + Send>,
    pub(crate) strategy: Box<dyn DispatchStrategy>,
}

/// Aggregate outcome of a run (mirrors the fields of
/// [`crate::record::AggregateMonitor`]; produced by [`Microgrid::run`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimResult {
    /// Steps resolved.
    pub steps: usize,
    /// Final storage state of charge.
    pub final_soc: f64,
    /// Total storage terminal charge throughput, kWh.
    pub storage_charged_kwh: f64,
    /// Total storage terminal discharge throughput, kWh.
    pub storage_discharged_kwh: f64,
}

impl Microgrid {
    /// Assemble a microgrid.
    pub fn new(
        actors: Vec<Box<dyn Actor>>,
        storage: Box<dyn Storage + Send>,
        strategy: Box<dyn DispatchStrategy>,
    ) -> Self {
        Self {
            actors,
            storage,
            strategy,
        }
    }

    /// Immutable access to the storage (SoC inspection etc.).
    pub fn storage(&self) -> &(dyn Storage + Send) {
        self.storage.as_ref()
    }

    /// Number of actors on the bus.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Resolve one step at `t` over `dt` and report the record.
    pub fn step(&mut self, t: SimTime, dt: SimDuration) -> StepRecord {
        let mut production = Power::ZERO;
        let mut consumption = Power::ZERO;
        for a in self.actors.iter_mut() {
            let p = a.power(t);
            if p.kw() >= 0.0 {
                production += p;
            } else {
                consumption += p;
            }
        }
        self.resolve(t, dt, production, consumption)
    }

    /// Resolve the bus balance given already-collected actor powers.
    ///
    /// Exposed for the event-driven engine, which caches actor powers
    /// between their evaluation events.
    pub fn resolve(
        &mut self,
        t: SimTime,
        dt: SimDuration,
        production: Power,
        consumption: Power,
    ) -> StepRecord {
        let p_delta = production + consumption;
        let state = BusState {
            t,
            dt,
            p_delta,
            soc: self.storage.soc(),
            capacity: self.storage.capacity(),
        };
        let request = self.strategy.storage_request(&state);
        let p_storage = self.storage.update(request, dt);

        // Residual after storage: positive = surplus to export,
        // negative = deficit to import.
        let residual = p_delta - p_storage;
        let (p_grid, p_unmet) = match self.strategy.grid_import_limit(&state) {
            Some(limit) if residual < -limit => {
                // Import capped: the rest is unmet load.
                let unmet = -residual - limit;
                (-limit, unmet)
            }
            _ => (residual, Power::ZERO),
        };

        StepRecord {
            t,
            dt,
            p_production: production,
            p_consumption: consumption,
            p_delta,
            p_storage,
            p_grid,
            p_unmet,
            soc: self.storage.soc(),
        }
    }

    /// Fixed-step run from `start` for `duration`, reporting every step to
    /// the monitors.
    ///
    /// # Panics
    /// Panics when `dt` is non-positive or does not divide `duration`.
    pub fn run(
        &mut self,
        start: SimTime,
        duration: SimDuration,
        dt: SimDuration,
        monitors: &mut [&mut dyn Monitor],
    ) -> SimResult {
        assert!(dt.secs() > 0, "dt must be positive");
        assert_eq!(
            duration.secs() % dt.secs(),
            0,
            "dt must divide the run duration"
        );
        let steps = (duration.secs() / dt.secs()) as usize;
        let mut t = start;
        for _ in 0..steps {
            let rec = self.step(t, dt);
            for m in monitors.iter_mut() {
                m.record(&rec);
            }
            t += dt;
        }
        SimResult {
            steps,
            final_soc: self.storage.soc(),
            storage_charged_kwh: self.storage.charged_total().kwh(),
            storage_discharged_kwh: self.storage.discharged_total().kwh(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::SignalActor;
    use crate::dispatch::{Islanded, SelfConsumption};
    use crate::record::MemoryMonitor;
    use crate::signal::ConstantSignal;
    use mgopt_storage::{NullStorage, SimpleBattery};
    use mgopt_units::Energy;

    fn grid_only(load_kw: f64, gen_kw: f64) -> Microgrid {
        Microgrid::new(
            vec![
                Box::new(SignalActor::producer("gen", ConstantSignal::new(gen_kw))),
                Box::new(SignalActor::consumer("load", ConstantSignal::new(load_kw))),
            ],
            Box::new(NullStorage::new()),
            Box::new(SelfConsumption::default()),
        )
    }

    const DT: SimDuration = SimDuration(3_600);

    #[test]
    fn deficit_imports_from_grid() {
        let mut mg = grid_only(100.0, 30.0);
        let rec = mg.step(SimTime::START, DT);
        assert_eq!(rec.p_grid.kw(), -70.0);
        assert_eq!(rec.grid_import().kw(), 70.0);
        assert_eq!(rec.p_unmet, Power::ZERO);
        assert_eq!(rec.balance_residual().kw(), 0.0);
    }

    #[test]
    fn surplus_exports_to_grid() {
        let mut mg = grid_only(30.0, 100.0);
        let rec = mg.step(SimTime::START, DT);
        assert_eq!(rec.p_grid.kw(), 70.0);
        assert_eq!(rec.grid_export().kw(), 70.0);
    }

    #[test]
    fn battery_absorbs_surplus_before_export() {
        let battery = SimpleBattery::new(
            Energy::from_kwh(1_000.0),
            0.5,
            0.1,
            Power::from_kw(50.0),
            Power::from_kw(50.0),
            1.0,
        );
        let mut mg = Microgrid::new(
            vec![
                Box::new(SignalActor::producer("gen", ConstantSignal::new(100.0))),
                Box::new(SignalActor::consumer("load", ConstantSignal::new(30.0))),
            ],
            Box::new(battery),
            Box::new(SelfConsumption::default()),
        );
        let rec = mg.step(SimTime::START, DT);
        // Surplus 70, battery takes its 50 kW limit, 20 exported.
        assert_eq!(rec.p_storage.kw(), 50.0);
        assert_eq!(rec.p_grid.kw(), 20.0);
        assert_eq!(rec.balance_residual().kw(), 0.0);
    }

    #[test]
    fn battery_covers_deficit_before_import() {
        let battery = SimpleBattery::new(
            Energy::from_kwh(1_000.0),
            0.9,
            0.1,
            Power::from_kw(50.0),
            Power::from_kw(50.0),
            1.0,
        );
        let mut mg = Microgrid::new(
            vec![
                Box::new(SignalActor::producer("gen", ConstantSignal::new(30.0))),
                Box::new(SignalActor::consumer("load", ConstantSignal::new(100.0))),
            ],
            Box::new(battery),
            Box::new(SelfConsumption::default()),
        );
        let rec = mg.step(SimTime::START, DT);
        assert_eq!(rec.p_storage.kw(), -50.0);
        assert_eq!(rec.p_grid.kw(), -20.0);
    }

    #[test]
    fn islanded_sheds_load_when_battery_empty() {
        let battery = SimpleBattery::new(
            Energy::from_kwh(100.0),
            0.1,
            0.1,
            Power::from_kw(50.0),
            Power::from_kw(50.0),
            1.0,
        );
        let mut mg = Microgrid::new(
            vec![Box::new(SignalActor::consumer(
                "load",
                ConstantSignal::new(80.0),
            ))],
            Box::new(battery),
            Box::new(Islanded::default()),
        );
        let rec = mg.step(SimTime::START, DT);
        assert_eq!(rec.p_grid, Power::ZERO, "no import when islanded");
        assert_eq!(rec.p_unmet.kw(), 80.0);
        assert_eq!(rec.balance_residual().kw(), 0.0);
    }

    #[test]
    fn run_reports_every_step() {
        let mut mg = grid_only(10.0, 0.0);
        let mut mon = MemoryMonitor::new();
        let result = mg.run(
            SimTime::START,
            SimDuration::from_hours(24.0),
            DT,
            &mut [&mut mon],
        );
        assert_eq!(result.steps, 24);
        assert_eq!(mon.records().len(), 24);
        assert_eq!(result.final_soc, 0.0);
    }

    #[test]
    #[should_panic(expected = "dt must divide")]
    fn non_dividing_dt_panics() {
        grid_only(1.0, 0.0).run(
            SimTime::START,
            SimDuration::from_hours(1.0),
            SimDuration::from_minutes(7.0),
            &mut [],
        );
    }

    #[test]
    fn actor_count_reported() {
        assert_eq!(grid_only(1.0, 1.0).actor_count(), 2);
    }
}

// mgopt-lint-fixture: crate=microgrid
use std::collections::BTreeMap;

pub fn accumulate(values: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut ordered = BTreeMap::new();
    for (i, v) in values.iter().enumerate() {
        ordered.insert(i, *v);
        total += v;
    }
    total
}

// A hash map in type position (no import, no call) is keyed access the
// caller owns — only `use` declarations and `HashMap::...` calls fire.
pub fn lookup(map: &std::collections::HashMap<u32, f64>, key: u32) -> Option<f64> {
    map.get(&key).copied()
}

// mgopt-lint-fixture: role=env-table
//! | Variable | Effect |
//! | --- | --- |
//! | `MGOPT_FAST` | documented here but read by nothing in this set |

pub fn read_undocumented() -> bool {
    std::env::var("MGOPT_TURBO").is_ok()
}

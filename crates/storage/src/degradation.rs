//! Battery capacity-fade estimation.
//!
//! The paper's §4.3 lists *battery degradation minimization* as an
//! additional optimization objective ("reduce wear and prolong battery
//! lifespan, e.g., by avoiding frequent deep cycling"). This module provides
//! the objective function: a semi-empirical fade model combining cycle
//! aging (depth-weighted rainflow cycles, Wöhler-style exponent) and
//! calendar aging, in the spirit of NREL's BLAST-Lite degradation suite.

use serde::{Deserialize, Serialize};

use crate::rainflow;

/// Parameters of the semi-empirical fade model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationParams {
    /// Fractional capacity fade per *full-depth* equivalent cycle.
    ///
    /// LFP cells survive ~4,000-6,000 full cycles to 80 %; the default of
    /// `0.2 / 5000` reflects that.
    pub fade_per_full_cycle: f64,
    /// Wöhler exponent: fade of a cycle of depth `d` scales as `d^exponent`.
    /// Values > 1 penalize deep cycling, matching observed LFP behaviour.
    pub depth_exponent: f64,
    /// Fractional capacity fade per year of calendar aging.
    pub calendar_fade_per_year: f64,
    /// End-of-life threshold as remaining capacity fraction (0.8 = 80 %).
    pub end_of_life_capacity: f64,
}

impl Default for DegradationParams {
    fn default() -> Self {
        Self {
            fade_per_full_cycle: 0.2 / 5_000.0,
            depth_exponent: 1.3,
            calendar_fade_per_year: 0.01,
            end_of_life_capacity: 0.8,
        }
    }
}

/// Degradation assessment of one simulated year.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Depth-weighted cycle fade accrued over the year (fraction).
    pub cycle_fade_per_year: f64,
    /// Calendar fade per year (fraction).
    pub calendar_fade_per_year: f64,
    /// Total annual fade (fraction).
    pub total_fade_per_year: f64,
    /// Projected years until the end-of-life threshold.
    pub projected_lifetime_years: f64,
    /// Plain equivalent full cycles counted by rainflow.
    pub equivalent_full_cycles: f64,
}

/// Assess one year of operation from the SoC trace.
///
/// `soc_trace` holds the state of charge (0..1) sampled over exactly one
/// simulated year.
pub fn assess_year(soc_trace: &[f64], params: &DegradationParams) -> DegradationReport {
    let cycles = rainflow::count_cycles(soc_trace);
    let cycle_fade: f64 = cycles
        .iter()
        .map(|c| c.count * c.range.powf(params.depth_exponent) * params.fade_per_full_cycle)
        .sum();
    let efc: f64 = cycles.iter().map(|c| c.count * c.range).sum();

    let total = cycle_fade + params.calendar_fade_per_year;
    let budget = 1.0 - params.end_of_life_capacity;
    let lifetime = if total <= 0.0 {
        f64::INFINITY
    } else {
        budget / total
    };

    DegradationReport {
        cycle_fade_per_year: cycle_fade,
        calendar_fade_per_year: params.calendar_fade_per_year,
        total_fade_per_year: total,
        projected_lifetime_years: lifetime,
        equivalent_full_cycles: efc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daily_cycling_trace(days: usize, hi: f64, lo: f64) -> Vec<f64> {
        let mut t = Vec::with_capacity(days * 2 + 1);
        for _ in 0..days {
            t.push(hi);
            t.push(lo);
        }
        t.push(hi);
        t
    }

    #[test]
    fn idle_battery_only_calendar_ages() {
        let report = assess_year(&[0.8; 8_760], &DegradationParams::default());
        assert_eq!(report.cycle_fade_per_year, 0.0);
        assert_eq!(report.equivalent_full_cycles, 0.0);
        assert!((report.total_fade_per_year - 0.01).abs() < 1e-12);
        // 20% budget / 1% per year = 20 years
        assert!((report.projected_lifetime_years - 20.0).abs() < 1e-9);
    }

    #[test]
    fn daily_full_cycling_shortens_life() {
        let trace = daily_cycling_trace(365, 1.0, 0.1);
        let report = assess_year(&trace, &DegradationParams::default());
        assert!(report.equivalent_full_cycles > 300.0);
        assert!(report.projected_lifetime_years < 15.0);
        assert!(report.cycle_fade_per_year > report.calendar_fade_per_year);
    }

    #[test]
    fn deep_cycling_worse_than_shallow_at_same_throughput() {
        // Same total energy throughput: 365 deep cycles of 0.8 vs
        // 4*365 shallow cycles of 0.2.
        let deep = daily_cycling_trace(365, 0.9, 0.1);
        let mut shallow = Vec::new();
        for _ in 0..(4 * 365) {
            shallow.push(0.6);
            shallow.push(0.4);
        }
        shallow.push(0.6);
        let p = DegradationParams::default();
        let rd = assess_year(&deep, &p);
        let rs = assess_year(&shallow, &p);
        assert!(
            (rd.equivalent_full_cycles - rs.equivalent_full_cycles).abs() < 2.0,
            "throughput should match: {} vs {}",
            rd.equivalent_full_cycles,
            rs.equivalent_full_cycles
        );
        assert!(
            rd.cycle_fade_per_year > 1.2 * rs.cycle_fade_per_year,
            "deep {:.6} should exceed shallow {:.6}",
            rd.cycle_fade_per_year,
            rs.cycle_fade_per_year
        );
    }

    #[test]
    fn lifetime_monotone_in_cycling_intensity() {
        let p = DegradationParams::default();
        let light = assess_year(&daily_cycling_trace(100, 0.9, 0.4), &p);
        let heavy = assess_year(&daily_cycling_trace(365, 0.9, 0.4), &p);
        assert!(light.projected_lifetime_years > heavy.projected_lifetime_years);
    }

    #[test]
    fn default_parameters_give_plausible_lfp_life() {
        // One full cycle per day: LFP should land roughly in the 8-16 year
        // range the paper quotes ("batteries may require replacement within
        // 10-15 years").
        let trace = daily_cycling_trace(365, 1.0, 0.1);
        let report = assess_year(&trace, &DegradationParams::default());
        assert!(
            (6.0..18.0).contains(&report.projected_lifetime_years),
            "lifetime {}",
            report.projected_lifetime_years
        );
    }
}

//! End-to-end checks for `mgopt_lint`: the fixture self-test (every
//! rule fires on its bad snippet, stays quiet on its good one), the
//! binary's exit codes, and the workspace itself staying clean.

use std::path::PathBuf;
use std::process::Command;

use mgopt_analysis::report::Rule;
use mgopt_analysis::{lint_dir, run, self_test, workspace_from_sources, FIXTURE_CASES};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/analysis sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn every_rule_fires_on_bad_and_stays_quiet_on_good() {
    match self_test(&fixtures_root()) {
        Ok(log) => {
            for (dir, _) in FIXTURE_CASES {
                assert!(log.contains(dir), "self-test log missing case {dir}");
            }
        }
        Err(msg) => panic!("self-test failed: {msg}"),
    }
}

#[test]
fn bad_fixtures_report_their_rule_with_locations() {
    let report = lint_dir(&fixtures_root().join("r2_panic_free/bad")).expect("fixture dir");
    assert!(!report.is_clean());
    assert!(report.findings.iter().all(|f| f.rule == Rule::PanicFree));
    let first = &report.findings[0];
    assert_eq!(first.file, "server.rs");
    assert!(first.line > 0);
    let json = report.render_json();
    assert!(json.contains(r#""rule":"panic_free""#));
    assert!(json.contains(r#""clean":false"#));
}

#[test]
fn suppressions_silence_targets_but_hygiene_is_enforced() {
    let report = run(workspace_from_sources(&[(
        "crates/microgrid/src/x.rs",
        "pub fn t() -> u128 {\n    // mgopt-lint: allow(determinism) — timing feeds a log, not results\n    std::time::Instant::now().elapsed().as_millis()\n}\n",
    )]));
    assert!(
        report.is_clean(),
        "justified allow must silence:\n{}",
        report.render_human()
    );
    assert_eq!(report.suppressed, 1);

    let report = run(workspace_from_sources(&[(
        "crates/microgrid/src/x.rs",
        "pub fn t() -> u128 {\n    // mgopt-lint: allow(determinism)\n    std::time::Instant::now().elapsed().as_millis()\n}\n",
    )]));
    assert_eq!(report.findings.len(), 1, "{}", report.render_human());
    assert_eq!(report.findings[0].rule, Rule::Suppression);
}

#[test]
fn test_regions_are_exempt_from_engine_rules() {
    let report = run(workspace_from_sources(&[(
        "crates/optimizer/src/x.rs",
        "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() {\n        let mut m = HashMap::new();\n        m.insert(1, std::time::Instant::now());\n    }\n}\n",
    )]));
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn binary_self_test_passes() {
    let out = Command::new(env!("CARGO_BIN_EXE_mgopt_lint"))
        .args(["--self-test", "--fixtures"])
        .arg(fixtures_root())
        .output()
        .expect("run mgopt_lint");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn binary_exit_codes_distinguish_clean_from_dirty() {
    let dirty = Command::new(env!("CARGO_BIN_EXE_mgopt_lint"))
        .arg("--dir")
        .arg(fixtures_root().join("r5_unsafe/bad"))
        .output()
        .expect("run mgopt_lint");
    assert_eq!(dirty.status.code(), Some(1));
    let clean = Command::new(env!("CARGO_BIN_EXE_mgopt_lint"))
        .arg("--dir")
        .arg(fixtures_root().join("r5_unsafe/good"))
        .output()
        .expect("run mgopt_lint");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&clean.stdout)
    );
    // The inventory lists the documented unsafe site even on a clean run.
    assert!(String::from_utf8_lossy(&clean.stdout).contains("SAFETY comment: yes"));
}

#[test]
fn the_workspace_itself_is_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_mgopt_lint"))
        .args(["--json", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run mgopt_lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace not lint-clean:\n{stdout}"
    );
    assert!(stdout.contains(r#""clean":true"#));
}

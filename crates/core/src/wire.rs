//! Versioned request/response wire format for the optimization daemon.
//!
//! The daemon in `crates/server` speaks newline-delimited JSON: one
//! [`RequestFrame`] per line in, one or more [`ResponseFrame`]s per line
//! out. This module owns the frame types, the **strict-reject** request
//! parser, and the pure validation that turns a study request into a
//! ready-to-prepare [`FleetScenario`] — everything protocol-shaped that
//! does not need a socket.
//!
//! ## Frame shapes
//!
//! A request line is an object with exactly three fields:
//!
//! ```json
//! {"v": 1, "id": "job-7", "req": {"Study": {
//!     "fleet": {"Preset": "paper-tiny"},
//!     "budget": {"population_size": 16, "max_trials": 64, "seed": 42},
//!     "peak_cap_kw": 2500.0,
//!     "stream": true}}}
//! ```
//!
//! `req` is externally tagged: `"Ping"` and `"Shutdown"` are bare strings,
//! `Study` wraps a [`StudyRequest`], and `Cancel` wraps the correlation
//! id of an in-flight study (`{"Cancel": "job-7"}`). Responses mirror the
//! envelope (`{"v": 1, "id": ..., "resp": ...}`) and echo the request
//! `id`, so clients can multiplex concurrent studies over one connection.
//!
//! ## Study lifecycle: queueing and cancellation
//!
//! A validated study answers, in order: an optional [`Response::Queued`]
//! (only when the daemon's process-wide concurrency cap is saturated and
//! the study must wait for admission), then [`Response::Accepted`], zero
//! or more [`Response::Front`] frames (when streaming), and exactly one
//! terminal frame — [`Response::Done`], [`Response::Cancelled`], or
//! [`Response::Error`]. A [`Request::Cancel`] naming an in-flight study
//! stops it cooperatively at the next generation boundary; the
//! acknowledgement is the `Cancelled` frame on the *target* id. A cancel
//! naming nothing in flight (unknown id, or a study that already sent its
//! terminal frame) answers [`ErrorCode::UnknownStudy`] on the cancel
//! frame's own id. A cancelled study never also answers `Done`.
//!
//! ## Strict rejection and the versioning rule
//!
//! [`parse_request`] validates the frame against the exact field sets
//! documented here *before* typed deserialization: an unknown or missing
//! field in the envelope, the study body, or the budget is a
//! [`ErrorCode::MalformedFrame`], and any `v` other than [`WIRE_VERSION`]
//! is [`ErrorCode::UnsupportedVersion`]. The flip side is the versioning
//! rule: **any** field added to (or removed from) the envelope,
//! [`StudyRequest`], or [`StudyBudget`] must bump [`WIRE_VERSION`].
//! Adding a *new* externally tagged [`Request`] or [`Response`] variant
//! is additive — every frame an old client could produce still parses
//! byte-identically — so new variants (like `Cancel`) do not bump the
//! version; old servers answer them with a structured unknown-variant
//! error rather than misbehaving.
//! Fields *inside* an inline [`FleetScenario`] follow ordinary serde
//! semantics (they are config-layer types shared with files on disk), so
//! scenario evolution does not force protocol bumps.
//!
//! Every failure mode maps to a structured [`WireError`] — the daemon
//! turns these into [`Response::Error`] frames and never crashes on bad
//! input.

use mgopt_microgrid::{Composition, CompositionSpace};
use serde::{Deserialize, Serialize, Value};

use crate::fleet::FleetScenario;

/// Protocol version spoken by this build. Bump on **any** change to the
/// envelope, [`StudyRequest`], or [`StudyBudget`] field sets — strict
/// parsing means old servers reject new fields, so there are no silent
/// partial upgrades.
pub const WIRE_VERSION: u32 = 1;

/// Objective names accepted in [`StudyRequest::objectives`], in order.
/// This is the paper pair lifted to the fleet account; requests may omit
/// the field (same default) or spell it out, but cannot reorder or
/// substitute it.
pub const PAPER_OBJECTIVES: [&str; 2] = ["operational_tco2_per_day", "embodied_tco2"];

/// Fleet presets resolvable by name via [`FleetSpec::Preset`].
pub const KNOWN_PRESETS: [&str; 2] = ["paper", "paper-tiny"];

/// Stable machine-readable error category carried by [`WireError`] and
/// [`Response::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The line was not a valid frame: bad JSON, wrong envelope shape,
    /// unknown/missing/duplicate fields, or a type mismatch.
    MalformedFrame,
    /// The frame's `v` is not [`WIRE_VERSION`].
    UnsupportedVersion,
    /// [`FleetSpec::Preset`] named none of [`KNOWN_PRESETS`].
    UnknownPreset,
    /// The frame parsed but the study is unrunnable: empty fleet, step
    /// mismatch, oversized space, bad budget, infeasible cap, or an
    /// unsupported objective set.
    InvalidRequest,
    /// A request line exceeded the server's frame-size limit. Terminal
    /// for the connection (framing is lost mid-line).
    Oversized,
    /// The server hit an internal failure running the study.
    Internal,
    /// A [`Request::Cancel`] named a study that is not in flight on this
    /// connection: the id is unknown, or the study already sent its
    /// terminal frame (`Done`, `Cancelled`, or `Error`).
    UnknownStudy,
}

/// A structured protocol error: stable [`ErrorCode`] plus human-readable
/// detail. Doubles as the payload of [`Response::Error`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail (not part of the stability contract).
    pub message: String,
}

impl WireError {
    /// Construct an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    fn malformed(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::MalformedFrame, message)
    }

    fn invalid(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::InvalidRequest, message)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// One request line: version, client-chosen correlation id, payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestFrame {
    /// Protocol version; must equal [`WIRE_VERSION`].
    pub v: u32,
    /// Correlation id echoed on every response to this request.
    pub id: String,
    /// The request payload.
    pub req: Request,
}

/// Request payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Drain in-flight studies, answer [`Response::Bye`], close down.
    Shutdown,
    /// Run an NSGA-II composition study.
    Study(StudyRequest),
    /// Cooperatively cancel the in-flight study whose request id is the
    /// payload. Acknowledged by [`Response::Cancelled`] on the *target*
    /// id; answers [`ErrorCode::UnknownStudy`] on this frame's id when
    /// nothing with that id is in flight.
    Cancel(String),
}

/// Which fleet a study runs over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetSpec {
    /// A named built-in fleet (one of [`KNOWN_PRESETS`]).
    Preset(String),
    /// A full inline fleet scenario.
    Inline(FleetScenario),
}

/// Generation/evaluation budget for one study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyBudget {
    /// NSGA-II population size (≥ 2).
    pub population_size: usize,
    /// Total evaluation budget (≥ `population_size`).
    pub max_trials: usize,
    /// Search seed — same seed, same fleet, same budget ⇒ bit-identical
    /// fronts, regardless of how studies interleave on the server.
    pub seed: u64,
}

/// A study request: fleet, optional overrides, budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyRequest {
    /// The fleet to optimize.
    pub fleet: FleetSpec,
    /// Replace every member's composition space (e.g. shrink a preset for
    /// a fast interactive query). `null`/absent keeps member spaces.
    #[serde(default)]
    pub space: Option<CompositionSpace>,
    /// Objective names. Only [`PAPER_OBJECTIVES`] (in order) is accepted;
    /// absent means the same.
    #[serde(default)]
    pub objectives: Option<Vec<String>>,
    /// Search budget.
    pub budget: StudyBudget,
    /// Cap on the fleet's peak concurrent grid import, kW (must be finite
    /// and positive). Handled as an NSGA-II constraint.
    #[serde(default)]
    pub peak_cap_kw: Option<f64>,
    /// Stream one [`Response::Front`] per generation before the final
    /// [`Response::Done`]. Off by default.
    #[serde(default)]
    pub stream: bool,
}

impl StudyRequest {
    /// Resolve the preset / inline fleet, apply the space override, and
    /// validate everything [`FleetScenario::prepare`],
    /// [`FleetProblem`](crate::problem::FleetProblem) construction, or the
    /// optimizer would otherwise panic on. Returns the ready-to-prepare
    /// scenario, or the structured error the daemon should answer with.
    pub fn resolved_scenario(&self) -> Result<FleetScenario, WireError> {
        if let Some(objs) = &self.objectives {
            if objs.len() != PAPER_OBJECTIVES.len()
                || objs.iter().zip(PAPER_OBJECTIVES).any(|(a, b)| a != b)
            {
                return Err(WireError::invalid(format!(
                    "unsupported objectives {objs:?}; this build serves exactly {PAPER_OBJECTIVES:?}"
                )));
            }
        }
        if self.budget.population_size < 2 {
            return Err(WireError::invalid(format!(
                "population_size {} < 2",
                self.budget.population_size
            )));
        }
        if self.budget.max_trials < self.budget.population_size {
            return Err(WireError::invalid(format!(
                "max_trials {} < population_size {}",
                self.budget.max_trials, self.budget.population_size
            )));
        }
        if let Some(cap) = self.peak_cap_kw {
            if !(cap.is_finite() && cap > 0.0) {
                return Err(WireError::invalid(format!(
                    "infeasible peak_cap_kw {cap}: must be finite and positive"
                )));
            }
        }
        let mut scenario = match &self.fleet {
            FleetSpec::Preset(name) => resolve_preset(name)?,
            FleetSpec::Inline(s) => s.clone(),
        };
        if let Some(space) = &self.space {
            for m in &mut scenario.members {
                m.scenario.space = space.clone();
            }
        }
        validate_scenario(&scenario)?;
        Ok(scenario)
    }
}

/// Resolve a [`FleetSpec::Preset`] name.
pub fn resolve_preset(name: &str) -> Result<FleetScenario, WireError> {
    match name {
        "paper" => Ok(FleetScenario::paper()),
        "paper-tiny" => {
            let mut f = FleetScenario::paper();
            for m in &mut f.members {
                m.scenario.space = CompositionSpace::tiny();
            }
            Ok(f)
        }
        other => Err(WireError::new(
            ErrorCode::UnknownPreset,
            format!("unknown fleet preset `{other}`; known: {KNOWN_PRESETS:?}"),
        )),
    }
}

/// The checks `prepare()` / `FleetProblem::new` enforce by panicking,
/// rephrased as a structured error for untrusted input.
fn validate_scenario(scenario: &FleetScenario) -> Result<(), WireError> {
    let Some(first) = scenario.members.first() else {
        return Err(WireError::invalid("fleet has no members"));
    };
    let step = first.scenario.step_minutes;
    for m in &scenario.members {
        if m.scenario.step_minutes == 0 {
            return Err(WireError::invalid(format!(
                "member {}: step_minutes must be positive",
                m.name
            )));
        }
        if m.scenario.step_minutes != step {
            return Err(WireError::invalid(format!(
                "member {}: step {} != fleet step {step} (one shared clock)",
                m.name, m.scenario.step_minutes
            )));
        }
        let n = m.scenario.space.len();
        if n == 0 {
            return Err(WireError::invalid(format!(
                "member {}: empty composition space",
                m.name
            )));
        }
        if n > u16::MAX as usize + 1 {
            return Err(WireError::invalid(format!(
                "member {}: {n} compositions exceed the u16 genome",
                m.name
            )));
        }
    }
    Ok(())
}

/// One response line; echoes the request's `id`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseFrame {
    /// Protocol version ([`WIRE_VERSION`]).
    pub v: u32,
    /// The originating request's correlation id (empty when the request
    /// was too malformed to carry one).
    pub id: String,
    /// The response payload.
    pub resp: Response,
}

/// Response payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Last frame before the server side closes after a
    /// [`Request::Shutdown`].
    Bye,
    /// The study was validated, its fleet prepared (or fetched from the
    /// prepared cache), and a worker started.
    Accepted(StudyAccepted),
    /// The study is valid but waits in the process-wide admission queue:
    /// the daemon's global concurrency cap is saturated. Followed by the
    /// normal `Accepted` lifecycle once a slot frees, or by `Cancelled`
    /// if the client cancels while it is still queued.
    Queued(StudyQueued),
    /// One generation's current first front (streamed when
    /// [`StudyRequest::stream`] is set).
    Front(FrontUpdate),
    /// Final study result.
    Done(StudyDone),
    /// The study stopped at a generation boundary after a
    /// [`Request::Cancel`] (or a client disconnect). Terminal for that
    /// request `id`; a cancelled study never also answers `Done`.
    Cancelled(StudyCancelled),
    /// Structured failure; terminal for that request `id`.
    Error(WireError),
}

/// Payload of [`Response::Accepted`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyAccepted {
    /// Member site names, in evaluation order.
    pub sites: Vec<String>,
    /// Cross-product plan-space size (saturating).
    pub plan_space: u64,
    /// Members whose prepared inputs were served from the shared cache.
    pub prep_cache_hits: u32,
    /// Members synthesized from scratch for this request.
    pub prep_cache_misses: u32,
}

/// Payload of [`Response::Queued`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyQueued {
    /// Studies admitted or queued ahead of this one at enqueue time.
    pub ahead: u64,
}

/// Payload of [`Response::Cancelled`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyCancelled {
    /// Generations completed before the stop (including generation 0);
    /// zero when the study was cancelled while still queued.
    pub generations: u32,
    /// Trials sampled before the stop.
    pub sampled_trials: u64,
    /// Wall time from admission to the stop, milliseconds.
    pub wall_ms: u64,
}

/// Payload of [`Response::Front`]: one generation's snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontUpdate {
    /// Generation index (0 = the evaluated initial population).
    pub generation: u32,
    /// Trials sampled so far.
    pub sampled: u64,
    /// The current non-dominated (and feasible-first) front.
    pub front: Vec<PlanPoint>,
}

/// Payload of [`Response::Done`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyDone {
    /// Generations run (including generation 0).
    pub generations: u32,
    /// Trials sampled (genome draws, including memoized repeats).
    pub sampled_trials: u64,
    /// Distinct genomes actually simulated.
    pub unique_evaluations: u64,
    /// Genome-memo cache hits inside the search.
    pub cache_hits: u64,
    /// Genome-memo cache misses inside the search.
    pub cache_misses: u64,
    /// Study wall time, milliseconds.
    pub wall_ms: u64,
    /// The final front.
    pub front: Vec<PlanPoint>,
}

/// One plan on a reported front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanPoint {
    /// Genome (one composition index per member).
    pub genome: Vec<u16>,
    /// The decoded plan, one composition per member.
    pub plan: Vec<Composition>,
    /// Objective values, in [`PAPER_OBJECTIVES`] order.
    pub objectives: Vec<f64>,
    /// Total constraint violation (0 = feasible).
    pub violation: f64,
}

/// Encode a request frame as one wire line (no trailing newline).
pub fn encode_request(frame: &RequestFrame) -> String {
    // mgopt-lint: allow(panic_free) — serializing an owned frame struct cannot fail
    serde_json::to_string(frame).expect("request frames always encode")
}

/// Encode a response frame as one wire line (no trailing newline).
pub fn encode_response(frame: &ResponseFrame) -> String {
    // mgopt-lint: allow(panic_free) — serializing an owned frame struct cannot fail
    serde_json::to_string(frame).expect("response frames always encode")
}

/// Parse one request line with strict rejection.
///
/// Order of checks: JSON validity → envelope is an object carrying an
/// integer `v` → `v == `[`WIRE_VERSION`] → exact envelope/body/budget
/// field sets → typed deserialization. The version check runs *before*
/// the envelope's unknown-field check so that frames from a future
/// protocol version fail with [`ErrorCode::UnsupportedVersion`] rather
/// than a confusing unknown-field complaint.
pub fn parse_request(line: &str) -> Result<RequestFrame, WireError> {
    let value: Value = serde_json::from_str(line)
        .map_err(|e| WireError::malformed(format!("invalid JSON: {e}")))?;
    let map = value
        .as_map()
        .ok_or_else(|| WireError::malformed("request frame must be a JSON object"))?;
    match value.get("v") {
        Some(Value::Int(v)) if *v == i64::from(WIRE_VERSION) => {}
        Some(Value::Int(v)) => {
            return Err(WireError::new(
                ErrorCode::UnsupportedVersion,
                format!("protocol version {v} not supported; this server speaks v{WIRE_VERSION}"),
            ));
        }
        Some(_) => return Err(WireError::malformed("field `v` must be an integer")),
        None => return Err(WireError::malformed("missing field `v` in request frame")),
    }
    strict_keys(
        map,
        &["v", "id", "req"],
        &["v", "id", "req"],
        "request frame",
    )?;
    let req = map
        .iter()
        .find(|(k, _)| k == "req")
        .map(|(_, v)| v)
        .ok_or_else(|| WireError::malformed("missing field `req` in request frame"))?;
    validate_req_shape(req)?;
    RequestFrame::from_value(&value).map_err(|e| WireError::malformed(e.to_string()))
}

/// Shape-check the `req` payload before typed deserialization so unknown
/// variants and unknown/missing study fields produce precise errors.
fn validate_req_shape(req: &Value) -> Result<(), WireError> {
    match req {
        Value::Str(s) if s == "Ping" || s == "Shutdown" => Ok(()),
        Value::Str(s) => Err(WireError::malformed(format!(
            "unknown request variant `{s}`"
        ))),
        Value::Map(m) if m.len() == 1 => {
            let [(tag, body)] = m.as_slice() else {
                return Err(WireError::malformed(
                    "field `req` must be a variant string or a single-variant object",
                ));
            };
            if tag == "Cancel" {
                return match body {
                    Value::Str(_) => Ok(()),
                    _ => Err(WireError::malformed(
                        "`Cancel` carries the target study id as a string",
                    )),
                };
            }
            if tag != "Study" {
                return Err(WireError::malformed(format!(
                    "unknown request variant `{tag}`"
                )));
            }
            let body_map = body
                .as_map()
                .ok_or_else(|| WireError::malformed("study request must be a JSON object"))?;
            strict_keys(
                body_map,
                &[
                    "fleet",
                    "space",
                    "objectives",
                    "budget",
                    "peak_cap_kw",
                    "stream",
                ],
                &["fleet", "budget"],
                "study request",
            )?;
            if let Some(budget) = body.get("budget") {
                let budget_map = budget
                    .as_map()
                    .ok_or_else(|| WireError::malformed("study budget must be a JSON object"))?;
                strict_keys(
                    budget_map,
                    &["population_size", "max_trials", "seed"],
                    &["population_size", "max_trials", "seed"],
                    "study budget",
                )?;
            }
            if let Some(fleet) = body.get("fleet") {
                validate_fleet_shape(fleet)?;
            }
            Ok(())
        }
        _ => Err(WireError::malformed(
            "field `req` must be a variant string or a single-variant object",
        )),
    }
}

fn validate_fleet_shape(fleet: &Value) -> Result<(), WireError> {
    let [(tag, _)] = fleet.as_map().unwrap_or(&[]) else {
        return Err(WireError::malformed(
            "field `fleet` must be a single-variant object (`Preset` or `Inline`)",
        ));
    };
    match tag.as_str() {
        "Preset" | "Inline" => Ok(()),
        other => Err(WireError::malformed(format!(
            "unknown fleet variant `{other}`"
        ))),
    }
}

/// Reject unknown, missing, and duplicate keys against an exact schema.
fn strict_keys(
    map: &[(String, Value)],
    allowed: &[&str],
    required: &[&str],
    ctx: &str,
) -> Result<(), WireError> {
    for (i, (key, _)) in map.iter().enumerate() {
        if !allowed.contains(&key.as_str()) {
            return Err(WireError::malformed(format!(
                "unknown field `{key}` in {ctx}"
            )));
        }
        if map.iter().take(i).any(|(k, _)| k == key) {
            return Err(WireError::malformed(format!(
                "duplicate field `{key}` in {ctx}"
            )));
        }
    }
    for key in required {
        if !map.iter().any(|(k, _)| k == key) {
            return Err(WireError::malformed(format!(
                "missing field `{key}` in {ctx}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study_frame() -> RequestFrame {
        RequestFrame {
            v: WIRE_VERSION,
            id: "t1".into(),
            req: Request::Study(StudyRequest {
                fleet: FleetSpec::Preset("paper-tiny".into()),
                space: None,
                objectives: None,
                budget: StudyBudget {
                    population_size: 8,
                    max_trials: 24,
                    seed: 7,
                },
                peak_cap_kw: Some(4_000.0),
                stream: true,
            }),
        }
    }

    #[test]
    fn frames_round_trip() {
        for frame in [
            RequestFrame {
                v: WIRE_VERSION,
                id: "p".into(),
                req: Request::Ping,
            },
            RequestFrame {
                v: WIRE_VERSION,
                id: "c1".into(),
                req: Request::Cancel("t1".into()),
            },
            study_frame(),
        ] {
            let line = encode_request(&frame);
            assert_eq!(parse_request(&line).unwrap(), frame);
        }
    }

    #[test]
    fn response_frames_round_trip() {
        let frame = ResponseFrame {
            v: WIRE_VERSION,
            id: "t1".into(),
            resp: Response::Done(StudyDone {
                generations: 3,
                sampled_trials: 24,
                unique_evaluations: 20,
                cache_hits: 4,
                cache_misses: 20,
                wall_ms: 12,
                front: vec![PlanPoint {
                    genome: vec![0, 1],
                    plan: vec![Composition::BASELINE, Composition::new(1, 4_000.0, 0.0)],
                    objectives: vec![30.0, 1.5],
                    violation: 0.0,
                }],
            }),
        };
        let line = encode_response(&frame);
        let back: ResponseFrame = serde_json::from_str(&line).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn rejects_bad_json_and_shapes() {
        for (line, want) in [
            ("{not json", ErrorCode::MalformedFrame),
            ("[1,2]", ErrorCode::MalformedFrame),
            (r#"{"id":"x","req":"Ping"}"#, ErrorCode::MalformedFrame),
            (
                r#"{"v":"1","id":"x","req":"Ping"}"#,
                ErrorCode::MalformedFrame,
            ),
            (
                r#"{"v":2,"id":"x","req":"Ping"}"#,
                ErrorCode::UnsupportedVersion,
            ),
            (
                r#"{"v":1,"id":"x","req":"Ping","extra":0}"#,
                ErrorCode::MalformedFrame,
            ),
            (r#"{"v":1,"req":"Ping"}"#, ErrorCode::MalformedFrame),
            (
                r#"{"v":1,"id":"x","req":"Pong"}"#,
                ErrorCode::MalformedFrame,
            ),
            (
                r#"{"v":1,"id":"x","req":{"Study":{"fleet":{"Preset":"paper"},"budget":{"population_size":4,"max_trials":8,"seed":1},"bogus":true}}}"#,
                ErrorCode::MalformedFrame,
            ),
            (
                r#"{"v":1,"id":"x","req":{"Study":{"budget":{"population_size":4,"max_trials":8,"seed":1}}}}"#,
                ErrorCode::MalformedFrame,
            ),
            (
                r#"{"v":1,"id":"x","req":{"Study":{"fleet":{"Preset":"paper"},"budget":{"population_size":4,"seed":1}}}}"#,
                ErrorCode::MalformedFrame,
            ),
            (
                r#"{"v":1,"id":"x","req":{"Study":{"fleet":{"Sites":["paper"]},"budget":{"population_size":4,"max_trials":8,"seed":1}}}}"#,
                ErrorCode::MalformedFrame,
            ),
            (
                r#"{"v":1,"id":"x","req":{"Cancel":5}}"#,
                ErrorCode::MalformedFrame,
            ),
            (
                r#"{"v":1,"id":"x","req":{"Cancel":{"target":"t1"}}}"#,
                ErrorCode::MalformedFrame,
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, want, "line {line}: {}", err.message);
        }
    }

    #[test]
    fn cancel_and_cancellation_responses_round_trip() {
        let cancel = parse_request(r#"{"v":1,"id":"c1","req":{"Cancel":"job-7"}}"#).unwrap();
        assert_eq!(cancel.req, Request::Cancel("job-7".into()));

        for resp in [
            Response::Queued(StudyQueued { ahead: 3 }),
            Response::Cancelled(StudyCancelled {
                generations: 2,
                sampled_trials: 16,
                wall_ms: 5,
            }),
            Response::Error(WireError::new(ErrorCode::UnknownStudy, "no such study")),
        ] {
            let frame = ResponseFrame {
                v: WIRE_VERSION,
                id: "c1".into(),
                resp,
            };
            let line = encode_response(&frame);
            let back: ResponseFrame = serde_json::from_str(&line).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn version_check_precedes_strict_fields() {
        // A future-version frame with fields this build doesn't know must
        // report the version, not the unknown field.
        let err = parse_request(r#"{"v":9,"id":"x","req":"Ping","deadline_ms":5}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnsupportedVersion);
    }

    #[test]
    fn study_validation_catches_unrunnable_requests() {
        let ok = match study_frame().req {
            Request::Study(s) => s,
            _ => unreachable!(),
        };
        assert!(ok.resolved_scenario().is_ok());

        let mut bad = ok.clone();
        bad.budget.population_size = 1;
        assert_eq!(
            bad.resolved_scenario().unwrap_err().code,
            ErrorCode::InvalidRequest
        );

        let mut bad = ok.clone();
        bad.budget.max_trials = 4;
        assert_eq!(
            bad.resolved_scenario().unwrap_err().code,
            ErrorCode::InvalidRequest
        );

        let mut bad = ok.clone();
        bad.peak_cap_kw = Some(-1.0);
        assert_eq!(
            bad.resolved_scenario().unwrap_err().code,
            ErrorCode::InvalidRequest
        );

        let mut bad = ok.clone();
        bad.objectives = Some(vec!["cost_usd".into()]);
        assert_eq!(
            bad.resolved_scenario().unwrap_err().code,
            ErrorCode::InvalidRequest
        );

        let mut bad = ok.clone();
        bad.fleet = FleetSpec::Preset("atlantis".into());
        assert_eq!(
            bad.resolved_scenario().unwrap_err().code,
            ErrorCode::UnknownPreset
        );

        let mut bad = ok.clone();
        bad.space = Some(CompositionSpace {
            wind_choices: vec![],
            solar_choices_kw: vec![],
            battery_choices_kwh: vec![],
        });
        assert_eq!(
            bad.resolved_scenario().unwrap_err().code,
            ErrorCode::InvalidRequest
        );

        let mut bad = ok;
        bad.fleet = FleetSpec::Inline(FleetScenario { members: vec![] });
        assert_eq!(
            bad.resolved_scenario().unwrap_err().code,
            ErrorCode::InvalidRequest
        );
    }

    #[test]
    fn objectives_accept_exactly_the_paper_pair() {
        let mut s = match study_frame().req {
            Request::Study(s) => s,
            _ => unreachable!(),
        };
        s.objectives = Some(PAPER_OBJECTIVES.iter().map(|o| o.to_string()).collect());
        assert!(s.resolved_scenario().is_ok());
        s.objectives = Some(vec![
            PAPER_OBJECTIVES[1].to_string(),
            PAPER_OBJECTIVES[0].to_string(),
        ]);
        assert_eq!(
            s.resolved_scenario().unwrap_err().code,
            ErrorCode::InvalidRequest
        );
    }

    #[test]
    fn inline_fleet_round_trips_and_space_override_applies() {
        let frame = RequestFrame {
            v: WIRE_VERSION,
            id: "inline".into(),
            req: Request::Study(StudyRequest {
                fleet: FleetSpec::Inline(FleetScenario::paper()),
                space: Some(CompositionSpace::tiny()),
                objectives: None,
                budget: StudyBudget {
                    population_size: 4,
                    max_trials: 8,
                    seed: 1,
                },
                peak_cap_kw: None,
                stream: false,
            }),
        };
        let parsed = parse_request(&encode_request(&frame)).unwrap();
        assert_eq!(parsed, frame);
        let Request::Study(s) = parsed.req else {
            unreachable!()
        };
        let scenario = s.resolved_scenario().unwrap();
        for m in &scenario.members {
            assert_eq!(m.scenario.space, CompositionSpace::tiny());
        }
    }
}

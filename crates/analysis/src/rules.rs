//! Per-file rules: R1 determinism, R2 panic-free service paths, R5
//! unsafe inventory, plus the suppression-comment machinery shared by
//! every rule.

use crate::lexer::{in_regions, Comment, Tok, Token};
use crate::report::{Finding, Rule, UnsafeSite};
use crate::{Role, SourceFile};

/// Crates whose results are bit-pinned: wall-clock reads and hash-order
/// iteration there can perturb reproduced fronts. `bench` and
/// `telemetry` are deliberately absent (timing is their job).
pub const ENGINE_CRATES: [&str; 5] = ["microgrid", "optimizer", "core", "storage", "weather"];

/// One parsed `// mgopt-lint: allow(rule) — justification` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The named rule, if it parsed to a known id.
    pub rule: Option<Rule>,
    /// The raw text between `allow(` and `)`.
    pub rule_name: String,
    /// 1-based line the comment starts on (for diagnostics).
    pub line: u32,
    /// 1-based line the comment ends on: the suppression covers this
    /// line and the next one.
    pub anchor: u32,
    /// Whether a justification (≥ 8 chars after the closing paren)
    /// was given.
    pub justified: bool,
    /// `mgopt-lint:` marker present but not followed by `allow(rule)`.
    pub malformed: bool,
}

const MARKER: &str = "mgopt-lint:";

/// Extract every suppression directive from a file's comment stream.
pub fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments may *describe* the syntax (the crate docs and the
        // src/lib.rs layer map do); only plain comments direct the linter.
        if c.doc {
            continue;
        }
        let Some(idx) = c.text.find(MARKER) else {
            continue;
        };
        let rest = c.text[idx + MARKER.len()..].trim_start();
        let mut sup = Suppression {
            rule: None,
            rule_name: String::new(),
            line: c.line,
            anchor: c.end_line,
            justified: false,
            malformed: true,
        };
        if let Some(args) = rest.strip_prefix("allow(") {
            if let Some(close) = args.find(')') {
                let id = args[..close].trim();
                sup.malformed = false;
                sup.rule_name = id.to_string();
                sup.rule = Rule::from_id(id);
                let just: String = args[close + 1..]
                    .trim_start_matches(['—', '–', '-', ':', ' '])
                    .trim()
                    .to_string();
                sup.justified = just.chars().count() >= 8;
            }
        }
        out.push(sup);
    }
    out
}

/// Does `sup` silence a finding of `rule` at `line`? An allow covers its
/// own line and the line below it, and always silences its target —
/// hygiene problems (no justification, unknown rule) are reported
/// separately by [`suppression_hygiene`] so a sloppy allow is a
/// violation rather than a silent hole.
pub fn suppresses(sup: &Suppression, rule: Rule, line: u32) -> bool {
    sup.rule == Some(rule) && (sup.anchor == line || sup.anchor + 1 == line)
}

/// Meta-rule: malformed directives, unknown rule ids, and missing
/// justifications are themselves findings (never suppressible).
pub fn suppression_hygiene(file: &SourceFile, out: &mut Vec<Finding>) {
    for sup in &file.suppressions {
        if sup.malformed {
            out.push(Finding {
                file: file.rel.clone(),
                line: sup.line,
                rule: Rule::Suppression,
                message: "malformed directive; expected `mgopt-lint: allow(rule) — justification`"
                    .into(),
            });
        } else if sup.rule.is_none() {
            out.push(Finding {
                file: file.rel.clone(),
                line: sup.line,
                rule: Rule::Suppression,
                message: format!(
                    "unknown rule `{}` in allow(...); known rules: {}",
                    sup.rule_name,
                    Rule::ALL.map(|r| r.id()).join(", ")
                ),
            });
        } else if !sup.justified {
            out.push(Finding {
                file: file.rel.clone(),
                line: sup.line,
                rule: Rule::Suppression,
                message: format!(
                    "allow({}) needs a justification (≥ 8 chars) after the closing paren",
                    sup.rule_name
                ),
            });
        }
    }
}

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(t: &Token, c: char) -> bool {
    matches!(t.tok, Tok::Punct(p) if p == c)
}

/// `toks[i]` is followed by `::` (two colon puncts).
fn followed_by_path_sep(toks: &[Token], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|t| punct(t, ':')) && toks.get(i + 2).is_some_and(|t| punct(t, ':'))
}

/// R1: no `Instant::now` / `SystemTime::now` / `thread_rng`, and no
/// `HashMap`/`HashSet` imported or called (type-annotation positions
/// pass) in engine crates. Keyed-only hash use is fine — suppress with
/// a justification saying so.
pub fn determinism(file: &SourceFile, out: &mut Vec<Finding>) {
    let Some(name) = &file.crate_name else {
        return;
    };
    if !ENGINE_CRATES.contains(&name.as_str()) {
        return;
    }
    let toks = &file.lexed.tokens;
    let mut in_use = false;
    for (i, t) in toks.iter().enumerate() {
        match ident(t) {
            Some("use") => in_use = true,
            _ if punct(t, ';') => in_use = false,
            _ => {}
        }
        if in_regions(&file.test_regions, t.line) {
            continue;
        }
        let message = match ident(t) {
            Some("thread_rng") => Some(
                "ambient RNG in an engine crate; thread seeds are not reproducible — \
                 use the study's seeded RNG"
                    .to_string(),
            ),
            Some(clock @ ("Instant" | "SystemTime"))
                if followed_by_path_sep(toks, i)
                    && toks.get(i + 3).and_then(ident) == Some("now") =>
            {
                Some(format!(
                    "`{clock}::now()` in engine crate `{name}`; wall-clock reads make runs \
                     irreproducible — keep timing in bench/telemetry"
                ))
            }
            Some(hash @ ("HashMap" | "HashSet")) if in_use || followed_by_path_sep(toks, i) => {
                Some(format!(
                    "`{hash}` in engine crate `{name}`; iteration order is nondeterministic — \
                     use BTreeMap/BTreeSet, or suppress if access is keyed-only"
                ))
            }
            _ => None,
        };
        if let Some(message) = message {
            out.push(Finding {
                file: file.rel.clone(),
                line: t.line,
                rule: Rule::Determinism,
                message,
            });
        }
    }
}

/// Identifiers that legitimately precede `[` without indexing
/// (`for x in [..]`, `let [a, b] = ..`, `&mut [T]`, …).
const NON_INDEX_KEYWORDS: [&str; 30] = [
    "if", "else", "match", "return", "in", "mut", "ref", "move", "loop", "while", "for", "break",
    "continue", "let", "as", "impl", "fn", "where", "use", "pub", "const", "static", "type",
    "struct", "enum", "trait", "mod", "dyn", "async", "await",
];

/// R2: service paths (`core::wire`, `crates/server`) must degrade to
/// structured error frames — no `unwrap`/`expect`, no panic-class
/// macros, no direct indexing/slicing.
pub fn panic_free(file: &SourceFile, out: &mut Vec<Finding>) {
    if !file.has_role(Role::Wire) && !file.has_role(Role::Server) {
        return;
    }
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if in_regions(&file.test_regions, t.line) {
            continue;
        }
        let message = match &t.tok {
            Tok::Ident(s)
                if (s == "unwrap" || s == "expect")
                    && i > 0
                    && punct(&toks[i - 1], '.')
                    && toks.get(i + 1).is_some_and(|n| punct(n, '(')) =>
            {
                Some(format!(
                    "`.{s}(...)` on a service path; return a structured error instead"
                ))
            }
            Tok::Ident(s)
                if matches!(
                    s.as_str(),
                    "panic" | "todo" | "unimplemented" | "unreachable"
                ) && toks.get(i + 1).is_some_and(|n| punct(n, '!')) =>
            {
                Some(format!(
                    "`{s}!` on a service path; the connection must answer with an error frame"
                ))
            }
            Tok::Punct('[') if i > 0 && is_index_base(&toks[i - 1]) => Some(
                "direct indexing/slicing can panic on a service path; \
                 use `.get(..)` / `.first()` / slice patterns"
                    .to_string(),
            ),
            _ => None,
        };
        if let Some(message) = message {
            out.push(Finding {
                file: file.rel.clone(),
                line: t.line,
                rule: Rule::PanicFree,
                message,
            });
        }
    }
}

/// Is the token before `[` an expression that makes the bracket an
/// index/slice (rather than an array literal, slice pattern, type, or
/// attribute)?
fn is_index_base(prev: &Token) -> bool {
    match &prev.tok {
        Tok::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
        Tok::Punct(')') | Tok::Punct(']') => true,
        _ => false,
    }
}

/// R5: every `unsafe` keyword needs a `// SAFETY:` comment on the same
/// line or within the three lines above; every occurrence lands in the
/// machine-readable inventory either way.
pub fn unsafe_safety(file: &SourceFile, out: &mut Vec<Finding>, inventory: &mut Vec<UnsafeSite>) {
    for t in &file.lexed.tokens {
        if ident(t) != Some("unsafe") {
            continue;
        }
        let covered = file.lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:")
                && c.end_line <= t.line
                && c.end_line >= t.line.saturating_sub(3)
        });
        inventory.push(UnsafeSite {
            file: file.rel.clone(),
            line: t.line,
            has_safety_comment: covered,
        });
        if !covered {
            out.push(Finding {
                file: file.rel.clone(),
                line: t.line,
                rule: Rule::UnsafeSafety,
                message: "`unsafe` without a `// SAFETY:` comment (same line or ≤ 3 lines above)"
                    .into(),
            });
        }
    }
}

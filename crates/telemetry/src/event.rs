//! Builder for one flat JSONL trace event.
//!
//! Events are single-level JSON objects: an `ev` kind, a `t_ms` timestamp
//! (milliseconds since the process's trace epoch), and scalar fields. The
//! JSON writer is hand-rolled — this crate deliberately has no
//! dependencies — and covers exactly the value shapes the telemetry layer
//! emits: strings, unsigned integers, finite floats and booleans.
//!
//! When telemetry is disabled, [`Event::new`] returns an inert builder:
//! every method is a no-op and no allocation, clock read or lock happens.

use crate::{emit_line, enabled, now_ms};

/// One structured trace event under construction.
///
/// ```
/// mgopt_telemetry::Event::new("batch_eval")
///     .u64("candidates", 63)
///     .f64("wall_ms", 1.25)
///     .emit();
/// ```
#[must_use = "an event does nothing until emitted"]
pub struct Event {
    /// `None` when telemetry is disabled — the inert fast path.
    buf: Option<String>,
}

impl Event {
    /// Start an event of the given kind. Inert when telemetry is disabled.
    pub fn new(kind: &str) -> Self {
        if !enabled() {
            return Self { buf: None };
        }
        let mut buf = String::with_capacity(128);
        buf.push_str("{\"ev\":");
        push_json_str(&mut buf, kind);
        buf.push_str(",\"t_ms\":");
        push_json_f64(&mut buf, now_ms());
        Self { buf: Some(buf) }
    }

    /// Attach a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            push_key(buf, key);
            push_json_str(buf, value);
        }
        self
    }

    /// Attach an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            push_key(buf, key);
            buf.push_str(&value.to_string());
        }
        self
    }

    /// Attach a float field. Non-finite values serialize as `null` (JSON
    /// has no NaN/inf).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            push_key(buf, key);
            push_json_f64(buf, value);
        }
        self
    }

    /// Attach a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            push_key(buf, key);
            buf.push_str(if value { "true" } else { "false" });
        }
        self
    }

    /// Finish the object and hand it to the installed sink (if any).
    pub fn emit(self) {
        if let Some(mut buf) = self.buf {
            buf.push('}');
            emit_line(&buf);
        }
    }
}

fn push_key(buf: &mut String, key: &str) {
    buf.push(',');
    push_json_str(buf, key);
    buf.push(':');
}

fn push_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

fn push_json_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        // `{v}` prints integral floats without a dot; keep them
        // re-parseable as floats either way (the parser accepts both).
        buf.push_str(&format!("{v}"));
    } else {
        buf.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_control_chars() {
        let mut buf = String::new();
        push_json_str(&mut buf, "a\"b\\c\nd\u{1}");
        assert_eq!(buf, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut buf = String::new();
        push_json_f64(&mut buf, f64::NAN);
        assert_eq!(buf, "null");
        buf.clear();
        push_json_f64(&mut buf, 2.5);
        assert_eq!(buf, "2.5");
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # mgopt-telemetry
//!
//! Zero-dependency observability for the evaluation engines and search
//! layers: scoped span timers with thread-aware aggregation, atomic
//! counters, and an optional structured JSONL event sink.
//!
//! ## Design constraints
//!
//! The instrumented code is the workspace's hottest: the columnar batch
//! kernel walks hundreds of millions of candidate-steps per sweep. The
//! rules that keep instrumentation honest:
//!
//! * **Disabled means free.** Every entry point checks [`enabled`] first —
//!   a single relaxed atomic load — and returns immediately when tracing
//!   is off. No allocation, no time syscall, no lock is ever taken on the
//!   disabled path. `tests/telemetry_determinism.rs` pins the disabled
//!   path to zero recorded events and unchanged counters, and the
//!   `fleet_search` bench bin records the measured enabled/disabled A/B.
//! * **Instrument at chunk granularity, never per step.** Spans and
//!   counters are recorded once per evaluation chunk (64 candidates × a
//!   year of steps), so even the *enabled* overhead is thousands of
//!   instructions amortized over ~10⁶ candidate-steps.
//! * **No dependencies.** The crate is std-only: the JSONL writer and the
//!   line parser in [`parse`] are hand-rolled for the flat events this
//!   layer emits, so nothing heavier than `std::sync` enters the engine
//!   dependency graph.
//!
//! ## Pieces
//!
//! * [`enabled`] / [`set_enabled`] — the master switch. The first check
//!   initializes from the `MGOPT_TRACE=<path>` environment variable
//!   (opening the JSONL sink); tests and bench harnesses flip it
//!   programmatically.
//! * [`span`] — a scoped timer: the returned guard adds its elapsed time
//!   to a per-[`Stage`] atomic aggregate on drop. Spans from concurrent
//!   worker threads sum, so stage totals have CPU-time semantics (they
//!   can exceed wall clock on multi-core runs).
//! * [`Counter`] / [`add`] — named atomic counters (chunks walked,
//!   candidate-rows evaluated, memo-cache hits…).
//! * [`event::Event`] — a builder for one flat JSONL event, written to the
//!   installed [`Sink`].
//! * [`stage_totals`] / [`counters`] / [`reset_stats`] — snapshots for
//!   reports, bench artifacts and tests.
//!
//! ## Event stream
//!
//! With `MGOPT_TRACE=trace.jsonl` set, the instrumented layers emit one
//! JSON object per line. Kinds currently written: `trace_start`,
//! `batch_eval` and `fleet_eval` (engine passes: candidates, steps,
//! chunks, rows, prepare/kernel/wall ms), `generation` (NSGA-II: cohort,
//! cache hits/misses, feasible count, front size, 2-D hypervolume, best
//! objectives), `rung` (successive halving) and `sampler` (exhaustive /
//! random cohorts). `trace_report` in `mgopt-bench` summarizes and
//! schema-checks a trace.

pub mod event;
pub mod parse;

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub use event::Event;

/// The tracing switch: uninitialized until the first [`enabled`] call or
/// an explicit [`set_enabled`].
const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// Serializes sink installation and lazy env initialization.
static SETUP: Mutex<()> = Mutex::new(());

/// `true` when telemetry is collecting. This is the hot-path check: a
/// single relaxed atomic load once initialized.
///
/// The first call initializes from the environment: `MGOPT_TRACE=<path>`
/// enables collection and installs a JSONL file sink at `path` (an
/// unwritable path warns once and disables). Unset or empty disables.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

/// Flip collection on or off, overriding (or preempting) the environment.
/// Enabling without an installed sink collects spans and counters only —
/// events are dropped; bench harnesses use exactly that mode.
pub fn set_enabled(on: bool) {
    let _guard = SETUP.lock().unwrap_or_else(|e| e.into_inner());
    trace_epoch(); // pin the timestamp origin before events can race it
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Cold path of [`enabled`]: resolve `MGOPT_TRACE` exactly once.
#[cold]
fn init_from_env() -> bool {
    let _guard = SETUP.lock().unwrap_or_else(|e| e.into_inner());
    let state = STATE.load(Ordering::Relaxed);
    if state != UNINIT {
        return state == ON;
    }
    trace_epoch();
    let on = match std::env::var("MGOPT_TRACE") {
        Ok(path) if !path.is_empty() => match std::fs::File::create(&path) {
            Ok(file) => {
                *sink_slot().lock().unwrap_or_else(|e| e.into_inner()) =
                    Some(Box::new(FileSink(std::io::BufWriter::new(file))));
                true
            }
            Err(e) => {
                eprintln!("mgopt-telemetry: cannot open MGOPT_TRACE={path}: {e}; tracing disabled");
                false
            }
        },
        _ => false,
    };
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    if on {
        Event::new("trace_start")
            .str("crate", "mgopt-telemetry")
            .u64("pid", std::process::id() as u64)
            .emit();
    }
    on
}

/// Where a line of structured trace output goes.
pub trait Sink: Send {
    /// Write one complete JSONL line (no trailing newline).
    fn line(&mut self, line: &str);
    /// Flush any buffering (called when the sink is removed).
    fn flush(&mut self) {}
}

/// A [`Sink`] appending newline-terminated lines to a buffered file,
/// flushing per line so a crashed process still leaves a readable trace.
struct FileSink(std::io::BufWriter<std::fs::File>);

impl Sink for FileSink {
    fn line(&mut self, line: &str) {
        let _ = writeln!(self.0, "{line}");
        let _ = self.0.flush();
    }

    fn flush(&mut self) {
        let _ = self.0.flush();
    }
}

/// A [`Sink`] capturing lines in memory — the test oracle.
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// Create a sink plus the shared handle its captured lines can be read
    /// through after installation.
    pub fn new() -> (Self, Arc<Mutex<Vec<String>>>) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        (
            Self {
                lines: Arc::clone(&lines),
            },
            lines,
        )
    }
}

impl Sink for MemorySink {
    fn line(&mut self, line: &str) {
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line.to_string());
    }
}

fn sink_slot() -> &'static Mutex<Option<Box<dyn Sink>>> {
    static SINK: OnceLock<Mutex<Option<Box<dyn Sink>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Install (or replace) the event sink. Does not flip [`enabled`] — a
/// sink only receives events while collection is on.
pub fn install_sink(sink: Box<dyn Sink>) {
    let _guard = SETUP.lock().unwrap_or_else(|e| e.into_inner());
    let mut slot = sink_slot().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(mut old) = slot.replace(sink) {
        old.flush();
    }
}

/// Remove the installed sink (flushed), if any.
pub fn take_sink() -> Option<Box<dyn Sink>> {
    let _guard = SETUP.lock().unwrap_or_else(|e| e.into_inner());
    let mut sink = sink_slot().lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(s) = sink.as_mut() {
        s.flush();
    }
    sink
}

/// Hand a finished line to the sink, if collection is on and one is
/// installed. Crate-internal: [`Event::emit`] is the public entry.
pub(crate) fn emit_line(line: &str) {
    if !enabled() {
        return;
    }
    if let Some(s) = sink_slot()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_mut()
    {
        s.line(line);
    }
}

/// Milliseconds since the process's trace epoch (first telemetry touch).
pub(crate) fn now_ms() -> f64 {
    trace_epoch().elapsed().as_secs_f64() * 1e3
}

fn trace_epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

// ---------------------------------------------------------------------------
// Stages and spans
// ---------------------------------------------------------------------------

/// The named hot-path stages spans aggregate into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Single-site batch engine: per-chunk state setup (SoA vectors,
    /// storage kernels, shared-generation groups).
    BatchPrepare,
    /// Single-site batch engine: the time-major candidate loop.
    BatchKernel,
    /// Fleet engine: per-chunk state setup across all member sites.
    FleetPrepare,
    /// Fleet engine: the interleaved time-major loop (incl. peak fold).
    FleetKernel,
    /// Search-layer bookkeeping: non-dominated sorting and selection.
    SearchSort,
    /// Optimization daemon: one whole study request, from accepted frame
    /// to final result frame (worker-thread CPU time; concurrent studies
    /// sum).
    ServerStudy,
}

impl Stage {
    /// Every stage, in display order.
    pub const ALL: [Stage; 6] = [
        Stage::BatchPrepare,
        Stage::BatchKernel,
        Stage::FleetPrepare,
        Stage::FleetKernel,
        Stage::SearchSort,
        Stage::ServerStudy,
    ];

    /// Stable display / event name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::BatchPrepare => "batch.prepare",
            Stage::BatchKernel => "batch.kernel",
            Stage::FleetPrepare => "fleet.prepare",
            Stage::FleetKernel => "fleet.kernel",
            Stage::SearchSort => "search.sort",
            Stage::ServerStudy => "server.study",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::BatchPrepare => 0,
            Stage::BatchKernel => 1,
            Stage::FleetPrepare => 2,
            Stage::FleetKernel => 3,
            Stage::SearchSort => 4,
            Stage::ServerStudy => 5,
        }
    }
}

struct StageStat {
    calls: AtomicU64,
    nanos: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const STAGE_STAT_INIT: StageStat = StageStat {
    calls: AtomicU64::new(0),
    nanos: AtomicU64::new(0),
};

static STAGES: [StageStat; Stage::ALL.len()] = [STAGE_STAT_INIT; Stage::ALL.len()];

/// A scoped span: adds its elapsed time to the stage's aggregate on drop.
/// Inert (no clock read) when telemetry is disabled.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    stage: Stage,
    start: Option<Instant>,
}

/// Open a span over `stage`. Threads time independently; their elapsed
/// times sum into the same aggregate (CPU-time semantics).
#[inline]
pub fn span(stage: Stage) -> Span {
    Span {
        stage,
        start: enabled().then(Instant::now),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let stat = &STAGES[self.stage.index()];
            stat.calls.fetch_add(1, Ordering::Relaxed);
            stat.nanos
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// One stage's aggregate at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTotal {
    /// Stable stage name (e.g. `"batch.kernel"`).
    pub name: &'static str,
    /// Completed spans.
    pub calls: u64,
    /// Summed span time, milliseconds (CPU-time semantics across threads).
    pub total_ms: f64,
}

/// Summed span time for one stage so far, in milliseconds. Cheap enough
/// to snapshot before/after an engine call for per-call attribution.
pub fn stage_ms(stage: Stage) -> f64 {
    STAGES[stage.index()].nanos.load(Ordering::Relaxed) as f64 / 1e6
}

/// Snapshot every stage aggregate, in [`Stage::ALL`] order.
pub fn stage_totals() -> Vec<StageTotal> {
    Stage::ALL
        .iter()
        .map(|&s| {
            let stat = &STAGES[s.index()];
            StageTotal {
                name: s.name(),
                calls: stat.calls.load(Ordering::Relaxed),
                total_ms: stat.nanos.load(Ordering::Relaxed) as f64 / 1e6,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// The named atomic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Chunks walked by the single-site batch engine.
    BatchChunks,
    /// Candidate-rows (candidates × steps) evaluated by the batch engine.
    BatchRows,
    /// Chunks walked by the fleet engine.
    FleetChunks,
    /// Candidate-rows (plans × sites × steps) evaluated by the fleet
    /// engine.
    FleetRows,
    /// NSGA-II memo-cache hits (sampled genomes answered from the cache).
    CacheHits,
    /// NSGA-II memo-cache misses (genomes actually evaluated).
    CacheMisses,
    /// Candidate-rows evaluated lane-wide by the SIMD chunk walk (both
    /// engines). With the remainder counter this makes lane utilization
    /// observable: `simd.rows / (simd.rows + simd.remainder_rows)`.
    SimdRows,
    /// Candidate-rows the SIMD chunk walk handed to its scalar remainder
    /// loop (tail candidates that don't fill a lane group).
    SimdRemainderRows,
    /// Prepared-scenario cache hits (study requests answered from an
    /// already-synthesized `Arc<PreparedScenario>`).
    PrepCacheHits,
    /// Prepared-scenario cache misses (scenarios synthesized from scratch).
    PrepCacheMisses,
}

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; 10] = [
        Counter::BatchChunks,
        Counter::BatchRows,
        Counter::FleetChunks,
        Counter::FleetRows,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::SimdRows,
        Counter::SimdRemainderRows,
        Counter::PrepCacheHits,
        Counter::PrepCacheMisses,
    ];

    /// Stable display / event name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::BatchChunks => "batch.chunks",
            Counter::BatchRows => "batch.rows",
            Counter::FleetChunks => "fleet.chunks",
            Counter::FleetRows => "fleet.rows",
            Counter::CacheHits => "cache.hits",
            Counter::CacheMisses => "cache.misses",
            Counter::SimdRows => "simd.rows",
            Counter::SimdRemainderRows => "simd.remainder_rows",
            Counter::PrepCacheHits => "prep_cache.hits",
            Counter::PrepCacheMisses => "prep_cache.misses",
        }
    }

    fn index(self) -> usize {
        match self {
            Counter::BatchChunks => 0,
            Counter::BatchRows => 1,
            Counter::FleetChunks => 2,
            Counter::FleetRows => 3,
            Counter::CacheHits => 4,
            Counter::CacheMisses => 5,
            Counter::SimdRows => 6,
            Counter::SimdRemainderRows => 7,
            Counter::PrepCacheHits => 8,
            Counter::PrepCacheMisses => 9,
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const COUNTER_INIT: AtomicU64 = AtomicU64::new(0);

static COUNTERS: [AtomicU64; Counter::ALL.len()] = [COUNTER_INIT; Counter::ALL.len()];

/// Add to a counter. A no-op (after the flag check) when disabled.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if enabled() {
        COUNTERS[counter.index()].fetch_add(n, Ordering::Relaxed);
    }
}

/// Current value of one counter.
pub fn counter_value(counter: Counter) -> u64 {
    COUNTERS[counter.index()].load(Ordering::Relaxed)
}

/// Snapshot every counter, in [`Counter::ALL`] order.
pub fn counters() -> Vec<(&'static str, u64)> {
    Counter::ALL
        .iter()
        .map(|&c| (c.name(), counter_value(c)))
        .collect()
}

/// Zero every stage aggregate and counter (bench sections isolate their
/// measurement windows with this; the sink and flag are untouched).
pub fn reset_stats() {
    for stat in &STAGES {
        stat.calls.store(0, Ordering::Relaxed);
        stat.nanos.store(0, Ordering::Relaxed);
    }
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests share one lock (the test harness is threaded).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_and_counters_record_nothing() {
        let _l = lock();
        set_enabled(false);
        reset_stats();
        {
            let _s = span(Stage::BatchKernel);
            add(Counter::BatchRows, 1_000);
        }
        assert_eq!(counter_value(Counter::BatchRows), 0);
        assert!(stage_totals().iter().all(|s| s.calls == 0));
    }

    #[test]
    fn enabled_spans_aggregate_and_counters_count() {
        let _l = lock();
        set_enabled(true);
        reset_stats();
        {
            let _s = span(Stage::FleetKernel);
            add(Counter::FleetChunks, 2);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let totals = stage_totals();
        let fleet = totals.iter().find(|s| s.name == "fleet.kernel").unwrap();
        assert_eq!(fleet.calls, 1);
        assert!(fleet.total_ms >= 1.0, "span too short: {}", fleet.total_ms);
        assert_eq!(counter_value(Counter::FleetChunks), 2);
        set_enabled(false);
        reset_stats();
    }

    #[test]
    fn spans_from_threads_sum_into_one_aggregate() {
        let _l = lock();
        set_enabled(true);
        reset_stats();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _s = span(Stage::BatchPrepare);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                });
            }
        });
        let totals = stage_totals();
        let prep = totals.iter().find(|s| s.name == "batch.prepare").unwrap();
        assert_eq!(prep.calls, 4);
        assert!(prep.total_ms >= 3.0, "CPU-time sum: {}", prep.total_ms);
        set_enabled(false);
        reset_stats();
    }

    #[test]
    fn memory_sink_receives_events_only_while_enabled() {
        let _l = lock();
        let (sink, lines) = MemorySink::new();
        install_sink(Box::new(sink));
        set_enabled(false);
        Event::new("should_not_appear").emit();
        assert!(lines.lock().unwrap().is_empty());
        set_enabled(true);
        Event::new("probe").u64("k", 7).emit();
        set_enabled(false);
        let captured = lines.lock().unwrap().clone();
        assert_eq!(captured.len(), 1);
        assert!(captured[0].contains("\"ev\":\"probe\""));
        assert!(captured[0].contains("\"k\":7"));
        take_sink();
    }

    #[test]
    fn stage_and_counter_names_are_unique() {
        let names: std::collections::BTreeSet<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Stage::ALL.len());
        let names: std::collections::BTreeSet<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Counter::ALL.len());
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}

//! Component-model benchmarks: the SAM-style generation chains, the C/L/C
//! battery, the weather synthesizer and rainflow counting.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mgopt_sam::{GenerationModel, PvSystem, WindFarm};
use mgopt_storage::{rainflow, ClcBattery, Storage};
use mgopt_units::{Energy, Power, SimDuration};
use mgopt_weather::{Climate, WeatherGenerator};

fn bench_weather_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("weather");
    group.sample_size(10);
    group.bench_function("generate_year_hourly", |b| {
        let gen = WeatherGenerator::new(Climate::houston(), 42);
        b.iter(|| black_box(gen.generate(SimDuration::from_hours(1.0))))
    });
    group.finish();
}

fn bench_generation_models(c: &mut Criterion) {
    let weather =
        WeatherGenerator::new(Climate::houston(), 42).generate(SimDuration::from_hours(1.0));
    let mut group = c.benchmark_group("generation_models");
    group.sample_size(20);

    group.bench_function("pvwatts_year", |b| {
        let pv = PvSystem::with_capacity_kw(4_000.0, 29.76);
        b.iter(|| black_box(pv.simulate(black_box(&weather))))
    });
    group.bench_function("windpower_year", |b| {
        let farm = WindFarm::with_turbines(4);
        b.iter(|| black_box(farm.simulate(black_box(&weather))))
    });
    group.finish();
}

fn bench_battery(c: &mut Criterion) {
    let mut group = c.benchmark_group("battery");
    group.bench_function("clc_update_8760_steps", |b| {
        b.iter(|| {
            let mut bat = ClcBattery::with_defaults(Energy::from_mwh(7.5));
            let dt = SimDuration::from_hours(1.0);
            let mut acc = 0.0;
            for i in 0..8_760i64 {
                let p = if i % 24 < 12 { 2_000.0 } else { -2_000.0 };
                acc += bat.update(Power::from_kw(p), dt).kw();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_rainflow(c: &mut Criterion) {
    // A realistic SoC trace: daily cycling with noise-like jitter.
    let trace: Vec<f64> = (0..8_760)
        .map(|i| {
            let day = (i % 24) as f64 / 24.0;
            0.55 + 0.4 * (day * std::f64::consts::TAU).sin() * ((i / 24) % 3 + 1) as f64 / 3.0
        })
        .collect();
    c.bench_function("rainflow_count_8760", |b| {
        b.iter(|| black_box(rainflow::count_cycles(black_box(&trace))))
    });
}

criterion_group!(
    benches,
    bench_weather_generation,
    bench_generation_models,
    bench_battery,
    bench_rainflow
);
criterion_main!(benches);

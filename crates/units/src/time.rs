//! Simulation time and the fixed 365-day calendar.
//!
//! Simulations run over a synthetic, no-leap year of exactly 8,760 hours —
//! the same convention NREL's System Advisor Model uses for typical
//! meteorological year (TMY) inputs. [`SimTime`] counts whole seconds since
//! year start (midnight, January 1, local standard time); [`CalendarTime`]
//! is its broken-down view used by the weather and carbon-intensity models.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Seconds in an hour.
pub const SECONDS_PER_HOUR: i64 = 3_600;
/// Seconds in a day.
pub const SECONDS_PER_DAY: i64 = 86_400;
/// Hours in the simulation year.
pub const HOURS_PER_YEAR: i64 = 8_760;
/// Days in the simulation year (no leap days).
pub const DAYS_PER_YEAR: i64 = 365;
/// Seconds in the simulation year.
pub const SECONDS_PER_YEAR: i64 = HOURS_PER_YEAR * SECONDS_PER_HOUR;

/// Month lengths of the no-leap calendar.
pub const MONTH_LENGTHS: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Cumulative day-of-year at the start of each month (0-based).
pub const MONTH_STARTS: [u32; 12] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];

/// A span of simulation time, in whole seconds. Always non-negative in
/// practice, but stored signed so differences are well defined.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub i64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: Self = Self(0);

    /// Duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        Self(s)
    }

    /// Duration from (possibly fractional) minutes, rounded to seconds.
    #[inline]
    pub fn from_minutes(m: f64) -> Self {
        Self((m * 60.0).round() as i64)
    }

    /// Duration from (possibly fractional) hours, rounded to seconds.
    #[inline]
    pub fn from_hours(h: f64) -> Self {
        Self((h * 3_600.0).round() as i64)
    }

    /// Duration from whole days.
    #[inline]
    pub const fn from_days(d: i64) -> Self {
        Self(d * SECONDS_PER_DAY)
    }

    /// Whole seconds.
    #[inline]
    pub const fn secs(self) -> i64 {
        self.0
    }

    /// Fractional hours.
    #[inline]
    pub fn hours(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    /// Fractional days.
    #[inline]
    pub fn days(self) -> f64 {
        self.0 as f64 / SECONDS_PER_DAY as f64
    }

    /// `true` if this duration is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

/// An instant of simulation time: whole seconds since year start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub i64);

impl SimTime {
    /// Year start (t = 0).
    pub const START: Self = Self(0);

    /// Instant from whole seconds since year start.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        Self(s)
    }

    /// Instant from fractional hours since year start.
    #[inline]
    pub fn from_hours(h: f64) -> Self {
        Self((h * 3_600.0).round() as i64)
    }

    /// Instant at the start of day `d` (0-based).
    #[inline]
    pub const fn from_day(d: i64) -> Self {
        Self(d * SECONDS_PER_DAY)
    }

    /// Whole seconds since year start.
    #[inline]
    pub const fn secs(self) -> i64 {
        self.0
    }

    /// Fractional hours since year start.
    #[inline]
    pub fn hours(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    /// Seconds since year start, wrapped into `[0, SECONDS_PER_YEAR)`.
    ///
    /// Multi-year projections reuse the single simulated year, so signals
    /// index with the wrapped time.
    #[inline]
    pub fn wrapped_secs(self) -> i64 {
        self.0.rem_euclid(SECONDS_PER_YEAR)
    }

    /// Broken-down calendar view of this instant (wrapped into the year).
    #[inline]
    pub fn calendar(self) -> CalendarTime {
        CalendarTime::from_sim_time(self)
    }

    /// Duration elapsed since `earlier`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = Self;
    #[inline]
    fn add(self, rhs: SimDuration) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.calendar();
        write!(
            f,
            "d{:03} {:02}:{:02}:{:02}",
            c.day_of_year, c.hour, c.minute, c.second
        )
    }
}

/// Broken-down view of a [`SimTime`] in the no-leap calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CalendarTime {
    /// Day of year, `0..=364`.
    pub day_of_year: u32,
    /// Month, `0..=11`.
    pub month: u32,
    /// Day of month, `0..` (0-based).
    pub day_of_month: u32,
    /// Hour of day, `0..=23`.
    pub hour: u32,
    /// Minute of hour, `0..=59`.
    pub minute: u32,
    /// Second of minute, `0..=59`.
    pub second: u32,
}

impl CalendarTime {
    /// Break a [`SimTime`] down, wrapping into the simulated year.
    pub fn from_sim_time(t: SimTime) -> Self {
        let s = t.wrapped_secs();
        let day_of_year = (s / SECONDS_PER_DAY) as u32;
        let rem = s % SECONDS_PER_DAY;
        let hour = (rem / SECONDS_PER_HOUR) as u32;
        let rem = rem % SECONDS_PER_HOUR;
        let minute = (rem / 60) as u32;
        let second = (rem % 60) as u32;
        let month = month_of_day(day_of_year);
        let day_of_month = day_of_year - MONTH_STARTS[month as usize];
        Self {
            day_of_year,
            month,
            day_of_month,
            hour,
            minute,
            second,
        }
    }

    /// Fractional hour of day in `[0, 24)`.
    #[inline]
    pub fn hour_of_day(&self) -> f64 {
        self.hour as f64 + self.minute as f64 / 60.0 + self.second as f64 / 3_600.0
    }

    /// Fraction of the year elapsed, in `[0, 1)`.
    #[inline]
    pub fn fraction_of_year(&self) -> f64 {
        (self.day_of_year as f64 + self.hour_of_day() / 24.0) / DAYS_PER_YEAR as f64
    }

    /// Day of week in `0..=6` with day 0 of the year defined as a Monday.
    #[inline]
    pub fn day_of_week(&self) -> u32 {
        self.day_of_year % 7
    }

    /// `true` on Saturday/Sunday of the synthetic calendar.
    #[inline]
    pub fn is_weekend(&self) -> bool {
        self.day_of_week() >= 5
    }
}

/// Month index (`0..=11`) containing a 0-based day of year.
pub fn month_of_day(day_of_year: u32) -> u32 {
    debug_assert!(day_of_year < DAYS_PER_YEAR as u32);
    // MONTH_STARTS is sorted; linear scan over 12 entries beats a binary
    // search at this size and is branch-predictor friendly.
    let mut month = 11;
    for (m, &start) in MONTH_STARTS.iter().enumerate().skip(1) {
        if day_of_year < start {
            month = m - 1;
            break;
        }
    }
    month as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn year_constants_consistent() {
        assert_eq!(SECONDS_PER_YEAR, 31_536_000);
        assert_eq!(MONTH_LENGTHS.iter().sum::<u32>(), 365);
        for m in 1..12 {
            assert_eq!(
                MONTH_STARTS[m],
                MONTH_STARTS[m - 1] + MONTH_LENGTHS[m - 1],
                "month starts must be cumulative"
            );
        }
    }

    #[test]
    fn calendar_at_year_start() {
        let c = SimTime::START.calendar();
        assert_eq!(c.day_of_year, 0);
        assert_eq!(c.month, 0);
        assert_eq!(c.day_of_month, 0);
        assert_eq!(c.hour, 0);
        assert_eq!((c.minute, c.second), (0, 0));
    }

    #[test]
    fn calendar_mid_year() {
        // Noon on July 2 (day 182): 182 * 86400 + 12 * 3600
        let t = SimTime::from_secs(182 * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR);
        let c = t.calendar();
        assert_eq!(c.day_of_year, 182);
        assert_eq!(c.month, 6); // July
        assert_eq!(c.day_of_month, 1); // July 2nd, 0-based
        assert_eq!(c.hour, 12);
        assert!((c.hour_of_day() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn calendar_last_second_of_year() {
        let t = SimTime::from_secs(SECONDS_PER_YEAR - 1);
        let c = t.calendar();
        assert_eq!(c.day_of_year, 364);
        assert_eq!(c.month, 11);
        assert_eq!(c.day_of_month, 30); // Dec 31st
        assert_eq!((c.hour, c.minute, c.second), (23, 59, 59));
    }

    #[test]
    fn wrapping_into_next_year() {
        let t = SimTime::from_secs(SECONDS_PER_YEAR + 42);
        assert_eq!(t.wrapped_secs(), 42);
        assert_eq!(t.calendar().day_of_year, 0);
        let neg = SimTime::from_secs(-1);
        assert_eq!(neg.wrapped_secs(), SECONDS_PER_YEAR - 1);
    }

    #[test]
    fn month_of_day_boundaries() {
        assert_eq!(month_of_day(0), 0);
        assert_eq!(month_of_day(30), 0); // Jan 31
        assert_eq!(month_of_day(31), 1); // Feb 1
        assert_eq!(month_of_day(58), 1); // Feb 28
        assert_eq!(month_of_day(59), 2); // Mar 1
        assert_eq!(month_of_day(334), 11); // Dec 1
        assert_eq!(month_of_day(364), 11); // Dec 31
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_minutes(1.0).secs(), 60);
        assert_eq!(SimDuration::from_hours(1.0).secs(), 3_600);
        assert_eq!(SimDuration::from_days(1).secs(), 86_400);
        assert!((SimDuration::from_hours(2.5).hours() - 2.5).abs() < 1e-12);
        assert!((SimDuration::from_days(2).days() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_hours(5.0);
        let t1 = t0 + SimDuration::from_hours(2.0);
        assert_eq!((t1 - t0).secs(), 2 * 3_600);
        assert_eq!(t1.since(t0), SimDuration::from_hours(2.0));
        let mut t = t0;
        t += SimDuration::from_secs(30);
        assert_eq!(t.secs(), t0.secs() + 30);
    }

    #[test]
    fn fraction_of_year_monotone() {
        let mut last = -1.0;
        for d in (0..365).step_by(30) {
            let f = SimTime::from_day(d).calendar().fraction_of_year();
            assert!(f > last);
            assert!((0.0..1.0).contains(&f));
            last = f;
        }
    }

    #[test]
    fn weekend_pattern() {
        // day 0 is Monday => days 5, 6 are the first weekend
        assert!(!SimTime::from_day(0).calendar().is_weekend());
        assert!(!SimTime::from_day(4).calendar().is_weekend());
        assert!(SimTime::from_day(5).calendar().is_weekend());
        assert!(SimTime::from_day(6).calendar().is_weekend());
        assert!(!SimTime::from_day(7).calendar().is_weekend());
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_secs(SECONDS_PER_DAY + 3_661);
        assert_eq!(format!("{t}"), "d001 01:01:01");
        assert_eq!(format!("{}", SimDuration::from_secs(90)), "90s");
    }
}

// mgopt-lint-fixture: crate=microgrid

pub fn ticks() -> u128 {
    // mgopt-lint: allow(determinism) — wall-clock feeds a progress log only, never results
    std::time::Instant::now().elapsed().as_millis()
}

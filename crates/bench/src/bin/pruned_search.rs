//! Regenerates the **§4.4 future-work** study: multi-fidelity successive
//! halving ("dynamic pruning / early stopping for non-promising simulation
//! runs") vs the exhaustive baseline, on the full paper space.
//!
//! ```bash
//! cargo run --release -p mgopt-bench --bin pruned_search
//! ```

use mgopt_core::experiments::pruned;
use mgopt_optimizer::SuccessiveHalvingConfig;

fn main() {
    let cfg = if mgopt_bench::fast_mode() {
        SuccessiveHalvingConfig {
            initial_cohort: 16,
            eta: 2,
            min_fidelity: 0.25,
            seed: 42,
        }
    } else {
        SuccessiveHalvingConfig {
            initial_cohort: 512,
            eta: 2,
            min_fidelity: 1.0 / 8.0,
            seed: 42,
        }
    };
    for scenario in [mgopt_bench::houston(), mgopt_bench::berkeley()] {
        let out = pruned::run(&scenario, &cfg);
        println!("Pruned search — {}", out.site);
        println!("  space size:                 {}", out.space_size);
        println!("  initial cohort:             {}", out.initial_cohort);
        println!("  rung fidelities:            {:?}", out.rung_fidelities);
        println!("  raw evaluations:            {}", out.raw_evaluations);
        println!(
            "  full-year-equivalent cost:  {:.1}",
            out.equivalent_full_evaluations
        );
        println!(
            "  Pareto recovery:            {:.1} %",
            out.recovery * 100.0
        );
        println!("  IGD (normalized):           {:.4}", out.igd);
        println!("  speed-up (cost):            {:.2}x", out.speedup_by_cost);
        println!();
        let name = format!(
            "pruned_{}",
            if out.site.starts_with("Houston") {
                "houston"
            } else {
                "berkeley"
            }
        );
        mgopt_bench::write_artifact(&name, &out);
    }
}

//! Regenerates **Tables 1 and 2**: five representative candidate
//! compositions per site (baseline, best ≤5k/≤10k/≤15k tCO2 embodied,
//! unconstrained best) with embodied, operational, coverage and battery
//! cycle columns.
//!
//! ```bash
//! cargo run --release -p mgopt-bench --bin table1_2_candidates
//! ```

use mgopt_core::experiments::tables;
use mgopt_core::report;

fn main() {
    for (n, scenario) in [(1, mgopt_bench::houston()), (2, mgopt_bench::berkeley())] {
        let table = tables::run(&scenario);
        println!("Table {n}:");
        print!("{}", report::render_candidate_table(&table));
        println!();
        let name = format!("table{}_{}", n, if n == 1 { "houston" } else { "berkeley" });
        mgopt_bench::write_artifact(&name, &table);
    }
}

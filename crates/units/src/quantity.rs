//! Strongly typed physical quantities.
//!
//! All quantities are thin `f64` newtypes with zero runtime cost. Arithmetic
//! is defined only where it is physically meaningful: adding two powers is
//! fine, adding a power to an energy is a compile error, and multiplying a
//! power by a duration yields an energy.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamp into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the inner value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Electric power, stored in kilowatts (kW).
    ///
    /// Positive values denote production, negative values consumption
    /// (Vessim sign convention).
    Power
);

quantity!(
    /// Electric energy, stored in kilowatt-hours (kWh).
    Energy
);

quantity!(
    /// Mass of CO2-equivalent emissions, stored in kilograms (kgCO2).
    Emissions
);

quantity!(
    /// Grid carbon intensity, stored in grams of CO2 per kWh (gCO2/kWh).
    CarbonIntensity
);

impl Power {
    /// Power from watts.
    #[inline]
    pub fn from_w(w: f64) -> Self {
        Self(w / 1e3)
    }

    /// Power from kilowatts.
    #[inline]
    pub fn from_kw(kw: f64) -> Self {
        Self(kw)
    }

    /// Power from megawatts.
    #[inline]
    pub fn from_mw(mw: f64) -> Self {
        Self(mw * 1e3)
    }

    /// Value in watts.
    #[inline]
    pub fn watts(self) -> f64 {
        self.0 * 1e3
    }

    /// Value in kilowatts.
    #[inline]
    pub fn kw(self) -> f64 {
        self.0
    }

    /// Value in megawatts.
    #[inline]
    pub fn mw(self) -> f64 {
        self.0 / 1e3
    }

    /// Energy produced or consumed at this constant power over `dt`.
    #[inline]
    pub fn over(self, dt: SimDuration) -> Energy {
        Energy(self.0 * dt.hours())
    }
}

impl Energy {
    /// Energy from kilowatt-hours.
    #[inline]
    pub fn from_kwh(kwh: f64) -> Self {
        Self(kwh)
    }

    /// Energy from megawatt-hours.
    #[inline]
    pub fn from_mwh(mwh: f64) -> Self {
        Self(mwh * 1e3)
    }

    /// Value in kilowatt-hours.
    #[inline]
    pub fn kwh(self) -> f64 {
        self.0
    }

    /// Value in megawatt-hours.
    #[inline]
    pub fn mwh(self) -> f64 {
        self.0 / 1e3
    }

    /// Average power when this energy is spread over `dt`.
    #[inline]
    pub fn average_power(self, dt: SimDuration) -> Power {
        Power(self.0 / dt.hours())
    }

    /// Emissions released when this energy is drawn from a grid with the
    /// given carbon intensity. Negative energies (exports) produce negative
    /// emissions only if the caller wants them to — this method simply
    /// multiplies, callers decide whether to clamp at zero first.
    #[inline]
    pub fn emissions_at(self, ci: CarbonIntensity) -> Emissions {
        // kWh * g/kWh = g -> kg
        Emissions(self.0 * ci.0 / 1e3)
    }
}

impl Emissions {
    /// Emissions from kilograms of CO2.
    #[inline]
    pub fn from_kg(kg: f64) -> Self {
        Self(kg)
    }

    /// Emissions from (metric) tons of CO2.
    #[inline]
    pub fn from_tons(t: f64) -> Self {
        Self(t * 1e3)
    }

    /// Value in kilograms of CO2.
    #[inline]
    pub fn kg(self) -> f64 {
        self.0
    }

    /// Value in metric tons of CO2.
    #[inline]
    pub fn tons(self) -> f64 {
        self.0 / 1e3
    }
}

impl CarbonIntensity {
    /// Carbon intensity from gCO2/kWh.
    #[inline]
    pub fn from_g_per_kwh(g: f64) -> Self {
        Self(g)
    }

    /// Value in gCO2/kWh.
    #[inline]
    pub fn g_per_kwh(self) -> f64 {
        self.0
    }
}

impl std::fmt::Display for Power {
    /// Scales to W / kW / MW for readability: `1.62 MW`, `350.0 kW`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kw = self.0.abs();
        if kw >= 1e3 {
            write!(f, "{:.2} MW", self.0 / 1e3)
        } else if kw >= 1.0 || kw == 0.0 {
            write!(f, "{:.1} kW", self.0)
        } else {
            write!(f, "{:.0} W", self.0 * 1e3)
        }
    }
}

impl std::fmt::Display for Energy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kwh = self.0.abs();
        if kwh >= 1e3 {
            write!(f, "{:.2} MWh", self.0 / 1e3)
        } else {
            write!(f, "{:.1} kWh", self.0)
        }
    }
}

impl std::fmt::Display for Emissions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kg = self.0.abs();
        if kg >= 1e3 {
            write!(f, "{:.2} tCO2", self.0 / 1e3)
        } else {
            write!(f, "{:.1} kgCO2", self.0)
        }
    }
}

impl std::fmt::Display for CarbonIntensity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0} gCO2/kWh", self.0)
    }
}

impl Mul<SimDuration> for Power {
    type Output = Energy;
    #[inline]
    fn mul(self, dt: SimDuration) -> Energy {
        self.over(dt)
    }
}

impl Mul<CarbonIntensity> for Energy {
    type Output = Emissions;
    #[inline]
    fn mul(self, ci: CarbonIntensity) -> Emissions {
        self.emissions_at(ci)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn power_unit_conversions_round_trip() {
        let p = Power::from_mw(1.62);
        assert!((p.kw() - 1620.0).abs() < 1e-12);
        assert!((p.watts() - 1.62e6).abs() < 1e-6);
        assert!((p.mw() - 1.62).abs() < 1e-12);
    }

    #[test]
    fn energy_from_power_over_duration() {
        let p = Power::from_kw(100.0);
        let e = p.over(SimDuration::from_hours(2.5));
        assert!((e.kwh() - 250.0).abs() < 1e-12);
        let e2 = p * SimDuration::from_minutes(30.0);
        assert!((e2.kwh() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn average_power_inverts_over() {
        let dt = SimDuration::from_hours(4.0);
        let e = Energy::from_kwh(10.0);
        let p = e.average_power(dt);
        assert!((p.over(dt).kwh() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn emissions_from_energy_and_intensity() {
        // 38,880 kWh/day at ~399.7 g/kWh is the Houston no-microgrid
        // baseline of the paper: 15.54 tCO2/day.
        let daily = Energy::from_mwh(38.88);
        let ci = CarbonIntensity::from_g_per_kwh(399.7);
        let em = daily.emissions_at(ci);
        assert!((em.tons() - 15.54).abs() < 0.01);
    }

    #[test]
    fn emissions_ton_kg_round_trip() {
        let e = Emissions::from_tons(1046.0);
        assert!((e.kg() - 1_046_000.0).abs() < 1e-6);
        assert!((Emissions::from_kg(e.kg()).tons() - 1046.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_ops_behave() {
        let a = Power::from_kw(3.0);
        let b = Power::from_kw(4.5);
        assert_eq!((a + b).kw(), 7.5);
        assert_eq!((b - a).kw(), 1.5);
        assert_eq!((-a).kw(), -3.0);
        assert_eq!((a * 2.0).kw(), 6.0);
        assert_eq!((2.0 * a).kw(), 6.0);
        assert_eq!((b / 3.0).kw(), 1.5);
        assert!((b / a - 1.5).abs() < 1e-12);
    }

    #[test]
    fn add_assign_and_sum() {
        let mut acc = Energy::ZERO;
        acc += Energy::from_kwh(1.0);
        acc += Energy::from_kwh(2.0);
        assert_eq!(acc.kwh(), 3.0);
        let total: Energy = (1..=4).map(|i| Energy::from_kwh(i as f64)).sum();
        assert_eq!(total.kwh(), 10.0);
    }

    #[test]
    fn clamp_min_max_abs() {
        let p = Power::from_kw(-5.0);
        assert_eq!(p.abs().kw(), 5.0);
        assert_eq!(p.max(Power::ZERO).kw(), 0.0);
        assert_eq!(p.min(Power::ZERO).kw(), -5.0);
        assert_eq!(
            Power::from_kw(12.0)
                .clamp(Power::ZERO, Power::from_kw(10.0))
                .kw(),
            10.0
        );
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Power::from_kw(1.0) < Power::from_kw(2.0));
        assert!(Emissions::from_tons(1.0) > Emissions::from_kg(999.0));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", Power::from_mw(1.62)), "1.62 MW");
        assert_eq!(format!("{}", Power::from_kw(350.0)), "350.0 kW");
        assert_eq!(format!("{}", Power::from_w(500.0)), "500 W");
        assert_eq!(format!("{}", Power::ZERO), "0.0 kW");
        assert_eq!(format!("{}", Energy::from_mwh(7.5)), "7.50 MWh");
        assert_eq!(format!("{}", Energy::from_kwh(12.34)), "12.3 kWh");
        assert_eq!(format!("{}", Emissions::from_tons(4649.0)), "4649.00 tCO2");
        assert_eq!(format!("{}", Emissions::from_kg(62.0)), "62.0 kgCO2");
        assert_eq!(
            format!("{}", CarbonIntensity::from_g_per_kwh(399.7)),
            "400 gCO2/kWh"
        );
    }

    #[test]
    fn display_negative_power_scales_by_magnitude() {
        assert_eq!(format!("{}", Power::from_mw(-1.5)), "-1.50 MW");
        assert_eq!(format!("{}", Power::from_kw(-20.0)), "-20.0 kW");
    }

    #[test]
    fn serde_transparent_round_trip() {
        let p = Power::from_kw(123.5);
        let json = serde_json_like(&p);
        assert_eq!(json, "123.5");
    }

    /// Minimal serde check without pulling serde_json into this crate:
    /// the `transparent` attribute means the Display of the inner f64 is
    /// exactly what a JSON number would be.
    fn serde_json_like(p: &Power) -> String {
        format!("{}", p.0)
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # mgopt-storage
//!
//! Battery storage models for microgrid co-simulation.
//!
//! The main model is [`ClcBattery`], an implementation of the *tractable*
//! lithium-ion model family of Kazhamiaka, Rosenberg & Keshav ("Tractable
//! Lithium-Ion Storage Models for Optimizing Energy Systems", Energy
//! Informatics 2019) as shipped in Vessim: terminal power is bounded by a
//! SoC-dependent **C**onstant / **L**inear envelope (reproducing the
//! CC→CV charge taper and the low-SoC discharge taper), with a **C**onstant
//! coulombic efficiency.
//!
//! [`SimpleBattery`] is the naive fixed-bound baseline; [`rainflow`]
//! provides cycle counting for the paper's battery-cycle metric; and
//! [`degradation`] estimates capacity fade for the "optimization beyond
//! carbon" objectives (§4.3 of the paper).

pub mod clc;
pub mod degradation;
pub mod hydrogen;
pub mod pumped_hydro;
pub mod rainflow;
pub mod simple;

pub use clc::{ClcBattery, ClcParams};
pub use hydrogen::{HydrogenParams, HydrogenStorage};
pub use pumped_hydro::{PumpedHydro, PumpedHydroParams};
pub use simple::SimpleBattery;

use mgopt_units::{Energy, Power, SimDuration};

/// A dispatchable energy store attached to the microgrid bus.
///
/// Sign convention (terminal side): positive power **charges** the store,
/// negative power **discharges** it.
pub trait Storage {
    /// Nameplate capacity.
    fn capacity(&self) -> Energy;

    /// State of charge as a fraction of nameplate capacity, in `[0, 1]`.
    fn soc(&self) -> f64;

    /// Minimum allowed state of charge (reserve), in `[0, 1)`.
    fn min_soc(&self) -> f64;

    /// Energy currently stored.
    fn stored(&self) -> Energy {
        self.capacity() * self.soc()
    }

    /// Usable energy above the reserve.
    fn usable(&self) -> Energy {
        self.capacity() * (self.soc() - self.min_soc()).max(0.0)
    }

    /// Headroom to full charge (cell side).
    fn headroom(&self) -> Energy {
        self.capacity() * (1.0 - self.soc()).max(0.0)
    }

    /// Request `power` at the terminals for `dt`; returns the power the
    /// store actually accepted (charge, positive) or delivered (discharge,
    /// negative). The magnitude never exceeds the request.
    fn update(&mut self, power: Power, dt: SimDuration) -> Power;

    /// Total energy charged through the terminals so far.
    fn charged_total(&self) -> Energy;

    /// Total energy discharged through the terminals so far.
    fn discharged_total(&self) -> Energy;

    /// Equivalent full cycles so far: discharge throughput over capacity.
    fn equivalent_full_cycles(&self) -> f64 {
        if self.capacity().kwh() <= 0.0 {
            0.0
        } else {
            self.discharged_total() / self.capacity()
        }
    }
}

/// A zero-capacity stand-in used for compositions without a battery.
///
/// Always refuses power; keeps the simulation loop branch-free.
#[derive(Debug, Clone, Default)]
pub struct NullStorage {
    _private: (),
}

impl NullStorage {
    /// Create a null store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Storage for NullStorage {
    fn capacity(&self) -> Energy {
        Energy::ZERO
    }

    fn soc(&self) -> f64 {
        0.0
    }

    fn min_soc(&self) -> f64 {
        0.0
    }

    fn update(&mut self, _power: Power, _dt: SimDuration) -> Power {
        Power::ZERO
    }

    fn charged_total(&self) -> Energy {
        Energy::ZERO
    }

    fn discharged_total(&self) -> Energy {
        Energy::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_storage_refuses_everything() {
        let mut s = NullStorage::new();
        let dt = SimDuration::from_hours(1.0);
        assert_eq!(s.update(Power::from_kw(100.0), dt), Power::ZERO);
        assert_eq!(s.update(Power::from_kw(-100.0), dt), Power::ZERO);
        assert_eq!(s.capacity(), Energy::ZERO);
        assert_eq!(s.equivalent_full_cycles(), 0.0);
        assert_eq!(s.usable(), Energy::ZERO);
        assert_eq!(s.headroom(), Energy::ZERO);
    }
}

//! Candidate extraction from a Pareto front (paper §3.3): reduce a large
//! front to a small, diverse, decision-ready set.
//!
//! Three strategies, as listed in the paper:
//! * [`best_under_budgets`] — thresholds ("the best candidates within
//!   different embodied carbon budgets"), used for Tables 1 and 2;
//! * [`kmeans_representatives`] — k-means clustering in normalized
//!   objective space, one representative per cluster;
//! * [`greedy_diversity`] — greedy max-min diversity maximization.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::problem::Trial;

/// For each budget on `budget_obj`, the trial minimizing `min_obj` among
/// those with `objectives[budget_obj] <= budget`. `None` when no trial
/// fits the budget.
pub fn best_under_budgets(
    trials: &[Trial],
    budgets: &[f64],
    budget_obj: usize,
    min_obj: usize,
) -> Vec<Option<Trial>> {
    budgets
        .iter()
        .map(|&budget| {
            trials
                .iter()
                .filter(|t| t.objectives[budget_obj] <= budget)
                .min_by(|a, b| {
                    a.objectives[min_obj]
                        .partial_cmp(&b.objectives[min_obj])
                        .expect("NaN objective")
                        // Tie-break: cheapest on the budget axis.
                        .then(
                            a.objectives[budget_obj]
                                .partial_cmp(&b.objectives[budget_obj])
                                .expect("NaN objective"),
                        )
                })
                .cloned()
        })
        .collect()
}

/// Min-max normalize objective vectors into `[0, 1]^m`.
fn normalized_objectives(trials: &[Trial]) -> Vec<Vec<f64>> {
    if trials.is_empty() {
        return Vec::new();
    }
    let m = trials[0].objectives.len();
    let mut lo = vec![f64::INFINITY; m];
    let mut hi = vec![f64::NEG_INFINITY; m];
    for t in trials {
        for (d, &v) in t.objectives.iter().enumerate() {
            lo[d] = lo[d].min(v);
            hi[d] = hi[d].max(v);
        }
    }
    trials
        .iter()
        .map(|t| {
            t.objectives
                .iter()
                .enumerate()
                .map(|(d, &v)| {
                    if hi[d] > lo[d] {
                        (v - lo[d]) / (hi[d] - lo[d])
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect()
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// k-means (k-means++ init, Lloyd iterations) in normalized objective
/// space; returns the trial closest to each cluster centroid.
///
/// Deterministic given the seed. `k` is clamped to the trial count.
pub fn kmeans_representatives(trials: &[Trial], k: usize, seed: u64) -> Vec<Trial> {
    if trials.is_empty() || k == 0 {
        return Vec::new();
    }
    let k = k.min(trials.len());
    let points = normalized_objectives(trials);
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x6b6d_6e73);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| sq_dist(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centroids.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut pick = rng.gen::<f64>() * total;
        let mut chosen = points.len() - 1;
        for (i, &d) in d2.iter().enumerate() {
            pick -= d;
            if pick <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }

    // Lloyd iterations.
    let m = points[0].len();
    let mut assignment = vec![0usize; points.len()];
    for _ in 0..50 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    sq_dist(p, &centroids[a])
                        .partial_cmp(&sq_dist(p, &centroids[b]))
                        .expect("NaN distance")
                })
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0f64; m]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for d in 0..m {
                sums[assignment[i]][d] += p[d];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..m {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // One representative per non-empty cluster: nearest to centroid.
    let mut reps: Vec<Trial> = Vec::new();
    for (c, centroid) in centroids.iter().enumerate().take(k) {
        let best = points
            .iter()
            .enumerate()
            .filter(|(i, _)| assignment[*i] == c)
            .min_by(|(_, a), (_, b)| {
                sq_dist(a, centroid)
                    .partial_cmp(&sq_dist(b, centroid))
                    .expect("NaN distance")
            })
            .map(|(i, _)| i);
        if let Some(i) = best {
            reps.push(trials[i].clone());
        }
    }
    reps
}

/// Greedy max-min diversity: start from the trial with the smallest first
/// objective, then repeatedly add the trial maximizing the minimum
/// (normalized) distance to the already-selected set.
pub fn greedy_diversity(trials: &[Trial], k: usize) -> Vec<Trial> {
    if trials.is_empty() || k == 0 {
        return Vec::new();
    }
    let k = k.min(trials.len());
    let points = normalized_objectives(trials);

    let first = (0..trials.len())
        .min_by(|&a, &b| {
            trials[a].objectives[0]
                .partial_cmp(&trials[b].objectives[0])
                .expect("NaN objective")
        })
        .expect("non-empty");
    let mut selected = vec![first];

    while selected.len() < k {
        let next = (0..trials.len())
            .filter(|i| !selected.contains(i))
            .max_by(|&a, &b| {
                let da = selected
                    .iter()
                    .map(|&s| sq_dist(&points[a], &points[s]))
                    .fold(f64::INFINITY, f64::min);
                let db = selected
                    .iter()
                    .map(|&s| sq_dist(&points[b], &points[s]))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).expect("NaN distance")
            });
        match next {
            Some(i) => selected.push(i),
            None => break,
        }
    }
    selected.into_iter().map(|i| trials[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staircase_front(n: usize) -> Vec<Trial> {
        // Convex front: (i, (n-1-i)^2 / (n-1)) scaled to look like the
        // paper's (operational, embodied) trade-off.
        (0..n)
            .map(|i| {
                let x = i as f64;
                let y = ((n - 1 - i) as f64).powi(2);
                Trial::new(vec![i as u16], vec![y, x * 1_000.0])
            })
            .collect()
    }

    #[test]
    fn budgets_pick_best_within_threshold() {
        let trials = staircase_front(11);
        // objective 1 = embodied (0..10000), objective 0 = operational.
        let picks = best_under_budgets(&trials, &[0.0, 5_000.0, 20_000.0], 1, 0);
        // Budget 0: only trial 0 fits (embodied 0).
        assert_eq!(picks[0].as_ref().unwrap().genome, vec![0]);
        // Budget 5000: trials 0..=5 fit; lowest operational is trial 5.
        assert_eq!(picks[1].as_ref().unwrap().genome, vec![5]);
        // Budget 20000: all fit; trial 10 has operational 0.
        assert_eq!(picks[2].as_ref().unwrap().genome, vec![10]);
    }

    #[test]
    fn impossible_budget_yields_none() {
        let trials = staircase_front(5);
        let picks = best_under_budgets(&trials, &[-1.0], 1, 0);
        assert!(picks[0].is_none());
    }

    #[test]
    fn budget_tie_breaks_on_cheaper_embodied() {
        let trials = vec![
            Trial::new(vec![0], vec![1.0, 100.0]),
            Trial::new(vec![1], vec![1.0, 50.0]),
        ];
        let picks = best_under_budgets(&trials, &[200.0], 1, 0);
        assert_eq!(picks[0].as_ref().unwrap().genome, vec![1]);
    }

    #[test]
    fn kmeans_returns_k_distinct_representatives() {
        let trials = staircase_front(40);
        let reps = kmeans_representatives(&trials, 5, 1);
        assert_eq!(reps.len(), 5);
        let unique: std::collections::HashSet<_> = reps.iter().map(|t| t.genome.clone()).collect();
        assert_eq!(unique.len(), 5);
        // Representatives are spread: genomes shouldn't be adjacent-only.
        let mut ids: Vec<u16> = reps.iter().map(|t| t.genome[0]).collect();
        ids.sort_unstable();
        assert!(ids[4] - ids[0] > 20, "spread too small: {ids:?}");
    }

    #[test]
    fn kmeans_deterministic_per_seed() {
        let trials = staircase_front(30);
        assert_eq!(
            kmeans_representatives(&trials, 4, 9),
            kmeans_representatives(&trials, 4, 9)
        );
    }

    #[test]
    fn kmeans_handles_small_inputs() {
        let trials = staircase_front(3);
        let reps = kmeans_representatives(&trials, 10, 1);
        assert_eq!(reps.len(), 3);
        assert!(kmeans_representatives(&[], 3, 1).is_empty());
    }

    #[test]
    fn greedy_diversity_starts_at_best_first_objective() {
        let trials = staircase_front(20);
        let picks = greedy_diversity(&trials, 4);
        // Trial 19 has operational 0 (minimum objective 0).
        assert_eq!(picks[0].genome, vec![19]);
        assert_eq!(picks.len(), 4);
    }

    #[test]
    fn greedy_diversity_includes_extremes() {
        let trials = staircase_front(20);
        let picks = greedy_diversity(&trials, 3);
        let ids: Vec<u16> = picks.iter().map(|t| t.genome[0]).collect();
        // The far end (0: highest operational, lowest embodied) is the most
        // distant point and must be selected second.
        assert!(ids.contains(&0), "extreme missing: {ids:?}");
    }

    #[test]
    fn greedy_diversity_clamps_k() {
        let trials = staircase_front(2);
        assert_eq!(greedy_diversity(&trials, 10).len(), 2);
        assert!(greedy_diversity(&[], 3).is_empty());
    }
}

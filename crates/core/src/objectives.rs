//! Objective sets over simulation results.
//!
//! The paper's default objective pair is (operational tCO2/day, embodied
//! tCO2); §3.3 and §4.3 describe the framework as "fully extensible" with
//! alternatives — renewable coverage, battery degradation, electricity
//! cost, export minimization, reliability. Everything here is expressed as
//! *minimization* (coverage becomes its shortfall, lifetime becomes wear).

use mgopt_microgrid::AnnualResult;
use serde::{Deserialize, Serialize};

/// One scalar objective extracted from an [`AnnualResult`]. All minimized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectiveKind {
    /// Operational emissions, tCO2/day (paper default #1).
    OperationalEmissions,
    /// Embodied emissions, tCO2 (paper default #2).
    EmbodiedEmissions,
    /// Coverage shortfall `1 − coverage` (maximizing on-site coverage).
    CoverageShortfall,
    /// Battery equivalent full cycles (degradation minimization, §4.3).
    BatteryCycles,
    /// Net electricity cost, USD (§4.3).
    EnergyCost,
    /// Grid exports, MWh ("reducing excess energy exports", §3.3).
    GridExport,
    /// Unserved demand, MWh (reliability/resilience, §4.3).
    UnmetDemand,
}

impl ObjectiveKind {
    /// Extract the objective value.
    pub fn extract(&self, r: &AnnualResult) -> f64 {
        let m = &r.metrics;
        match self {
            ObjectiveKind::OperationalEmissions => m.operational_t_per_day,
            ObjectiveKind::EmbodiedEmissions => m.embodied_t,
            ObjectiveKind::CoverageShortfall => 1.0 - m.coverage,
            ObjectiveKind::BatteryCycles => m.battery_cycles,
            ObjectiveKind::EnergyCost => m.energy_cost_usd,
            ObjectiveKind::GridExport => m.grid_export_mwh,
            ObjectiveKind::UnmetDemand => m.unmet_mwh,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ObjectiveKind::OperationalEmissions => "operational_tCO2_per_day",
            ObjectiveKind::EmbodiedEmissions => "embodied_tCO2",
            ObjectiveKind::CoverageShortfall => "coverage_shortfall",
            ObjectiveKind::BatteryCycles => "battery_cycles",
            ObjectiveKind::EnergyCost => "energy_cost_usd",
            ObjectiveKind::GridExport => "grid_export_mwh",
            ObjectiveKind::UnmetDemand => "unmet_mwh",
        }
    }
}

/// An ordered set of objectives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveSet(pub Vec<ObjectiveKind>);

impl ObjectiveSet {
    /// The paper's default pair.
    pub fn paper() -> Self {
        Self(vec![
            ObjectiveKind::OperationalEmissions,
            ObjectiveKind::EmbodiedEmissions,
        ])
    }

    /// A three-objective carbon + cost set (§4.3 extension).
    pub fn carbon_and_cost() -> Self {
        Self(vec![
            ObjectiveKind::OperationalEmissions,
            ObjectiveKind::EmbodiedEmissions,
            ObjectiveKind::EnergyCost,
        ])
    }

    /// Number of objectives.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when no objectives are configured.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Extract the objective vector from a result.
    pub fn extract(&self, r: &AnnualResult) -> Vec<f64> {
        self.0.iter().map(|k| k.extract(r)).collect()
    }

    /// Objective names in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.0.iter().map(|k| k.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_microgrid::{AnnualMetrics, Composition};

    fn result() -> AnnualResult {
        AnnualResult {
            composition: Composition::new(4, 0.0, 7_500.0),
            metrics: AnnualMetrics {
                demand_mwh: 14_000.0,
                production_mwh: 9_000.0,
                grid_import_mwh: 4_000.0,
                grid_export_mwh: 1_500.0,
                direct_use_mwh: 8_000.0,
                battery_charge_mwh: 1_000.0,
                battery_discharge_mwh: 900.0,
                unmet_mwh: 12.0,
                operational_t_per_day: 5.88,
                operational_t_per_year: 2_146.2,
                embodied_t: 4_649.0,
                coverage: 0.7107,
                direct_coverage: 0.57,
                battery_cycles: 153.0,
                self_sufficient_fraction: 0.6,
                energy_cost_usd: 250_000.0,
            },
            soc_trace_hourly: vec![],
        }
    }

    #[test]
    fn paper_set_is_the_headline_pair() {
        let set = ObjectiveSet::paper();
        assert_eq!(set.len(), 2);
        let v = set.extract(&result());
        assert_eq!(v, vec![5.88, 4_649.0]);
        assert_eq!(
            set.names(),
            vec!["operational_tCO2_per_day", "embodied_tCO2"]
        );
    }

    #[test]
    fn coverage_becomes_shortfall() {
        let v = ObjectiveKind::CoverageShortfall.extract(&result());
        assert!((v - (1.0 - 0.7107)).abs() < 1e-12);
    }

    #[test]
    fn extended_set_extracts_cost() {
        let set = ObjectiveSet::carbon_and_cost();
        let v = set.extract(&result());
        assert_eq!(v.len(), 3);
        assert_eq!(v[2], 250_000.0);
    }

    #[test]
    fn every_kind_extracts_finite() {
        let r = result();
        for k in [
            ObjectiveKind::OperationalEmissions,
            ObjectiveKind::EmbodiedEmissions,
            ObjectiveKind::CoverageShortfall,
            ObjectiveKind::BatteryCycles,
            ObjectiveKind::EnergyCost,
            ObjectiveKind::GridExport,
            ObjectiveKind::UnmetDemand,
        ] {
            assert!(k.extract(&r).is_finite(), "{}", k.name());
        }
    }

    #[test]
    fn serde_round_trip() {
        let set = ObjectiveSet::carbon_and_cost();
        let json = serde_json::to_string(&set).unwrap();
        let back: ObjectiveSet = serde_json::from_str(&json).unwrap();
        assert_eq!(set, back);
    }
}

//! End-to-end determinism and serialization: every experiment output is a
//! pure function of its configuration, and all outputs round-trip through
//! serde JSON (the framework's artifact format).

use microgrid_opt::core::experiments::{fig2, fig4, tables};
use microgrid_opt::prelude::*;

fn tiny(site: SitePreset) -> ScenarioConfig {
    ScenarioConfig {
        site,
        space: CompositionSpace::tiny(),
        ..ScenarioConfig::paper_houston()
    }
}

#[test]
fn sweeps_are_bitwise_reproducible() {
    let cfg = tiny(SitePreset::Houston);
    let a = sweep_all(&cfg.prepare());
    let b = sweep_all(&cfg.prepare());
    assert_eq!(a, b);
}

#[test]
fn different_seeds_give_different_years_but_same_calibration() {
    let mk = |seed| {
        ScenarioConfig {
            seed,
            ..tiny(SitePreset::Houston)
        }
        .prepare()
    };
    let a = mk(42);
    let b = mk(43);
    assert_ne!(a.data.ci_g_per_kwh, b.data.ci_g_per_kwh);
    assert_ne!(a.load, b.load);
    // Exact calibrations hold for any seed.
    assert!((a.load.mean() - b.load.mean()).abs() < 1e-6);
    assert!((a.data.ci_g_per_kwh.mean() - b.data.ci_g_per_kwh.mean()).abs() < 1e-6);
}

#[test]
fn baseline_result_is_seed_robust() {
    // The zero-microgrid baseline depends only on load × CI, both exactly
    // mean-calibrated — operational emissions stay within a tight band
    // across seeds even though the traces differ.
    let mut values = Vec::new();
    for seed in [1, 7, 99] {
        let s = ScenarioConfig {
            seed,
            ..tiny(SitePreset::Houston)
        }
        .prepare();
        let r = simulate_year(&s.data, &s.load, &Composition::BASELINE, &s.config.sim);
        values.push(r.metrics.operational_t_per_day);
    }
    for v in &values {
        assert!((v - 15.54).abs() < 0.15, "baseline {v} drifted");
    }
}

#[test]
fn experiment_outputs_serde_round_trip() {
    let scenario = tiny(SitePreset::Berkeley).prepare();

    let f2 = fig2::run(&scenario);
    let json = serde_json::to_string(&f2).unwrap();
    let back: fig2::Fig2Output = serde_json::from_str(&json).unwrap();
    assert_eq!(f2, back);

    let t = tables::run(&scenario);
    let json = serde_json::to_string(&t).unwrap();
    let back: tables::CandidateTable = serde_json::from_str(&json).unwrap();
    assert_eq!(t, back);

    let f4 = fig4::run(&scenario);
    let json = serde_json::to_string(&f4).unwrap();
    let back: fig4::Fig4Output = serde_json::from_str(&json).unwrap();
    assert_eq!(f4, back);
}

#[test]
fn scenario_config_json_is_stable() {
    let cfg = tiny(SitePreset::Houston);
    let json = serde_json::to_string(&cfg).unwrap();
    let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
    // A hand-written config (the "Hydra YAML" workflow) also loads.
    let hand_written = r#"{
        "site": "Berkeley",
        "step_minutes": 60,
        "seed": 7,
        "workload": { "Constant": { "kw": 1000.0 } },
        "space": {
            "wind_choices": [0, 5],
            "solar_choices_kw": [0.0, 20000.0],
            "battery_choices_kwh": [0.0]
        },
        "sim": {
            "battery": {
                "max_charge_c_rate": 0.5,
                "max_discharge_c_rate": 0.5,
                "charge_taper_soc": 0.8,
                "discharge_taper_width": 0.1,
                "round_trip_efficiency": 0.9,
                "min_soc": 0.1,
                "initial_soc": 1.0
            },
            "policy": "SelfConsumption",
            "embodied": {
                "solar_kg_per_kw": 630.0,
                "wind_kg_per_turbine": 1046000.0,
                "battery_kg_per_kwh": 62.0
            },
            "export_price_factor": 0.3,
            "record_soc": false
        }
    }"#;
    let parsed: ScenarioConfig = serde_json::from_str(hand_written).unwrap();
    assert_eq!(parsed.site, SitePreset::Berkeley);
    assert_eq!(parsed.space.len(), 4);
    let prepared = parsed.prepare();
    let results = sweep_all(&prepared);
    assert_eq!(results.len(), 4);
}

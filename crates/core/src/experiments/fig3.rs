//! Figure 3: naive 20-year projection of total (embodied + cumulative
//! operational) emissions for the five candidate compositions per site.
//!
//! Assumptions match the paper: constant daily operational emissions, no
//! reinvestment, no degradation — embodied paid once up front.

use mgopt_gridcarbon::accounting::{
    crossover_year, project_cumulative_emissions_t, project_with_battery_reinvestment_t,
};
use serde::{Deserialize, Serialize};

use super::CandidateRow;

/// One projected trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectionSeries {
    /// Candidate label `(wind MW, solar MW, battery MWh)`.
    pub label: String,
    /// Embodied emissions, tCO2 (the year-0 intercept).
    pub embodied_t: f64,
    /// Operational emissions, tCO2/day (the slope).
    pub operational_t_per_day: f64,
    /// Cumulative tCO2 at the end of year 0..=horizon.
    pub cumulative_t: Vec<f64>,
}

/// Figure-3 output for one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Output {
    /// Site name.
    pub site: String,
    /// Projection horizon, years.
    pub horizon_years: usize,
    /// One series per candidate (same order as the table rows).
    pub series: Vec<ProjectionSeries>,
    /// Year at which the zero-investment baseline becomes the *worst*
    /// trajectory, if within the horizon (the paper: ~7 y Houston,
    /// ~12 y Berkeley).
    pub baseline_becomes_worst_year: Option<f64>,
}

/// Project candidates over a horizon.
pub fn run(site: &str, candidates: &[CandidateRow], horizon_years: usize) -> Fig3Output {
    let series: Vec<ProjectionSeries> = candidates
        .iter()
        .map(|c| ProjectionSeries {
            label: c.label(),
            embodied_t: c.embodied_t,
            operational_t_per_day: c.operational_t_per_day,
            cumulative_t: project_cumulative_emissions_t(
                c.embodied_t,
                c.operational_t_per_day,
                horizon_years,
            ),
        })
        .collect();

    // When does the baseline (first row) overtake the *last* of the other
    // candidates it is still beating?
    let baseline_becomes_worst_year = candidates.split_first().and_then(|(base, rest)| {
        rest.iter()
            .filter_map(|c| {
                crossover_year(
                    (base.embodied_t, base.operational_t_per_day),
                    (c.embodied_t, c.operational_t_per_day),
                    horizon_years as f64,
                )
            })
            .fold(None, |acc: Option<f64>, y| {
                Some(acc.map_or(y, |a| a.max(y)))
            })
    });

    Fig3Output {
        site: site.to_string(),
        horizon_years,
        series,
        baseline_becomes_worst_year,
    }
}

/// The reinvestment-aware variant of Figure 3 (the paper's stated
/// limitation: "batteries may require replacement within 10–15 years").
/// Battery embodied carbon (62 kg/kWh, the paper's constant) is re-paid
/// every `battery_lifetime_years`; generation assets persist.
pub fn run_with_reinvestment(
    site: &str,
    candidates: &[CandidateRow],
    horizon_years: usize,
    battery_lifetime_years: usize,
) -> Fig3Output {
    const BATTERY_KG_PER_KWH: f64 = 62.0;
    let series: Vec<ProjectionSeries> = candidates
        .iter()
        .map(|c| {
            let battery_t = c.battery_mwh * 1_000.0 * BATTERY_KG_PER_KWH / 1_000.0;
            let generation_t = (c.embodied_t - battery_t).max(0.0);
            ProjectionSeries {
                label: c.label(),
                embodied_t: c.embodied_t,
                operational_t_per_day: c.operational_t_per_day,
                cumulative_t: project_with_battery_reinvestment_t(
                    generation_t,
                    battery_t,
                    c.operational_t_per_day,
                    horizon_years,
                    battery_lifetime_years,
                ),
            }
        })
        .collect();

    // With reinvestment the trajectories are piecewise linear; determine
    // the "baseline becomes worst" year numerically from the series.
    let baseline_becomes_worst_year = series.split_first().and_then(|(base, rest)| {
        (0..=horizon_years)
            .find(|&y| {
                rest.iter()
                    .all(|s| base.cumulative_t[y] > s.cumulative_t[y])
            })
            .map(|y| y as f64)
    });

    Fig3Output {
        site: site.to_string(),
        horizon_years,
        series,
        baseline_becomes_worst_year,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Houston Table-1 rows, verbatim.
    fn paper_houston_rows() -> Vec<CandidateRow> {
        let mk = |w: f64, s: f64, b: f64, e: f64, o: f64| CandidateRow {
            wind_mw: w,
            solar_mw: s,
            battery_mwh: b,
            embodied_t: e,
            operational_t_per_day: o,
            coverage_pct: 0.0,
            battery_cycles: 0.0,
        };
        vec![
            mk(0.0, 0.0, 0.0, 0.0, 15.54),
            mk(12.0, 0.0, 7.5, 4_649.0, 5.88),
            mk(9.0, 8.0, 22.5, 9_573.0, 1.90),
            mk(12.0, 12.0, 52.5, 14_999.0, 0.24),
            mk(30.0, 40.0, 60.0, 39_380.0, 0.02),
        ]
    }

    #[test]
    fn paper_houston_crossover_near_seven_years() {
        let out = run("Houston, TX", &paper_houston_rows(), 20);
        let y = out.baseline_becomes_worst_year.expect("must cross");
        // The paper: "becoming the worst-performing configuration after
        // approximately 7 years in Houston".
        assert!((6.0..8.5).contains(&y), "crossover at {y} years");
    }

    #[test]
    fn series_shapes() {
        let out = run("Houston, TX", &paper_houston_rows(), 20);
        assert_eq!(out.series.len(), 5);
        for s in &out.series {
            assert_eq!(s.cumulative_t.len(), 21);
            assert_eq!(s.cumulative_t[0], s.embodied_t);
            // Monotone non-decreasing accumulation.
            for w in s.cumulative_t.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }

    #[test]
    fn baseline_starts_lowest_ends_highest() {
        let out = run("Houston, TX", &paper_houston_rows(), 20);
        let base = &out.series[0];
        for other in &out.series[1..] {
            assert!(base.cumulative_t[0] <= other.cumulative_t[0]);
            assert!(
                base.cumulative_t[20] > other.cumulative_t[20],
                "baseline must end worst: {} vs {} ({})",
                base.cumulative_t[20],
                other.cumulative_t[20],
                other.label
            );
        }
    }

    #[test]
    fn no_crossover_without_better_candidates() {
        // Single-row table: nothing to cross.
        let out = run("X", &paper_houston_rows()[..1], 20);
        assert!(out.baseline_becomes_worst_year.is_none());
    }

    #[test]
    fn reinvestment_raises_battery_heavy_trajectories() {
        let rows = paper_houston_rows();
        let naive = run("Houston, TX", &rows, 20);
        let reinvested = run_with_reinvestment("Houston, TX", &rows, 20, 12);
        // Baseline (no battery) unchanged; battery builds end higher.
        assert_eq!(
            naive.series[0].cumulative_t, reinvested.series[0].cumulative_t,
            "baseline has nothing to replace"
        );
        for (n, r) in naive.series[1..].iter().zip(&reinvested.series[1..]) {
            assert!(
                r.cumulative_t[20] > n.cumulative_t[20],
                "{}: one battery replacement must land within 20 years",
                r.label
            );
            assert_eq!(
                r.cumulative_t[0], n.cumulative_t[0],
                "initial purchase equal"
            );
        }
        // Crossover moves earlier (or stays) when investments re-pay
        // batteries: the baseline has no reinvestment burden.
        if let (Some(a), Some(b)) = (
            naive.baseline_becomes_worst_year,
            reinvested.baseline_becomes_worst_year,
        ) {
            assert!(
                b + 1.5 >= a,
                "reinvestment should not wildly shift crossover: {a} vs {b}"
            );
        }
    }

    #[test]
    fn reinvestment_step_timing_matches_lifetime() {
        let rows = vec![CandidateRow {
            wind_mw: 0.0,
            solar_mw: 0.0,
            battery_mwh: 7.5,
            embodied_t: 465.0,
            operational_t_per_day: 0.0,
            coverage_pct: 0.0,
            battery_cycles: 0.0,
        }];
        let out = run_with_reinvestment("X", &rows, 20, 10);
        let c = &out.series[0].cumulative_t;
        assert!((c[0] - 465.0).abs() < 1e-9);
        assert!(
            (c[10] - 465.0).abs() < 1e-9,
            "no replacement through year 10"
        );
        assert!((c[11] - 930.0).abs() < 1e-9, "replacement in year 11");
        assert!((c[20] - 930.0).abs() < 1e-9);
    }
}

//! Additional facility load archetypes.
//!
//! Used by the examples and by the carbon-aware-scheduling study (§4.3):
//! an interactive/web facility has a strong diurnal swing and therefore
//! much more load-shifting potential than a saturated HPC machine.

use mgopt_units::{SimDuration, TimeSeries, SECONDS_PER_YEAR};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// A perfectly constant load, kW.
pub fn constant_load(step: SimDuration, power_kw: f64) -> TimeSeries {
    assert!(power_kw >= 0.0);
    TimeSeries::constant_year(step, power_kw)
}

/// An interactive/web-style load: pronounced diurnal cycle (low at night,
/// peak in the evening), weekday/weekend contrast, and light noise. The
/// trace is exactly mean-calibrated to `mean_power_kw`.
pub fn diurnal_web_load(step: SimDuration, mean_power_kw: f64, seed: u64) -> TimeSeries {
    assert!(mean_power_kw > 0.0);
    let step_s = step.secs();
    assert!(
        step_s > 0 && SECONDS_PER_YEAR % step_s == 0,
        "step must divide the year"
    );
    let n = (SECONDS_PER_YEAR / step_s) as usize;
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0xd1f0_0d5e);

    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        let t = mgopt_units::SimTime::from_secs(i as i64 * step_s);
        let cal = t.calendar();
        let h = cal.hour_of_day();
        // Two-lobe daily shape: business-hours plateau plus evening peak.
        let daily = 0.55
            + 0.30 * (-((h - 14.0) / 5.0).powi(2)).exp()
            + 0.45 * (-((h - 20.5) / 2.5).powi(2)).exp();
        let weekday = if cal.is_weekend() { 0.8 } else { 1.05 };
        let noise = 1.0 + 0.04 * (rng.gen::<f64>() - 0.5);
        values.push(daily * weekday * noise);
    }
    let mean: f64 = values.iter().sum::<f64>() / n as f64;
    let scale = mean_power_kw / mean;
    for v in values.iter_mut() {
        *v *= scale;
    }
    TimeSeries::new(step, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::stats;

    #[test]
    fn constant_load_is_flat() {
        let ts = constant_load(SimDuration::from_hours(1.0), 1_000.0);
        assert_eq!(ts.mean(), 1_000.0);
        assert_eq!(ts.std(), 0.0);
        assert_eq!(ts.len(), 8_760);
    }

    #[test]
    fn web_load_mean_calibrated() {
        let ts = diurnal_web_load(SimDuration::from_hours(1.0), 1_620.0, 1);
        assert!((ts.mean() - 1_620.0).abs() < 1e-6);
    }

    #[test]
    fn web_load_has_diurnal_swing() {
        let ts = diurnal_web_load(SimDuration::from_hours(1.0), 1_000.0, 2);
        // Average 04:00 vs 20:00 over all weekdays.
        let mut night = Vec::new();
        let mut evening = Vec::new();
        for d in 0..365 {
            night.push(ts.values()[d * 24 + 4]);
            evening.push(ts.values()[d * 24 + 20]);
        }
        assert!(stats::mean(&evening) > 1.5 * stats::mean(&night));
    }

    #[test]
    fn web_load_weekends_quieter() {
        let ts = diurnal_web_load(SimDuration::from_hours(1.0), 1_000.0, 3);
        let mut weekday = Vec::new();
        let mut weekend = Vec::new();
        for d in 0..365usize {
            let day = mgopt_units::SimTime::from_day(d as i64).calendar();
            let slice = ts.day_slice(d);
            if day.is_weekend() {
                weekend.extend_from_slice(slice);
            } else {
                weekday.extend_from_slice(slice);
            }
        }
        assert!(stats::mean(&weekday) > 1.1 * stats::mean(&weekend));
    }

    #[test]
    fn web_load_deterministic() {
        let a = diurnal_web_load(SimDuration::from_hours(1.0), 1_000.0, 9);
        let b = diurnal_web_load(SimDuration::from_hours(1.0), 1_000.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn nonpositive_mean_panics() {
        diurnal_web_load(SimDuration::from_hours(1.0), 0.0, 1);
    }
}

//! The hand-rolled SIMD lane layer for the columnar batch engine.
//!
//! Stable Rust has no `std::simd`; this module provides an explicit
//! 4-lane `f64` vector ([`F64x4`], `#[repr(align(32))]` so a lane group
//! fills one AVX register / half a cache line) with branchless
//! `min`/`max`/`select` combinators, plus a lane-wide reimplementation of
//! the C/L/C battery envelope ([`LaneKernel`]), dispatch-policy requests
//! ([`LanePolicy`]) and the raw metric accumulators ([`LaneAcc`]).
//!
//! ## The lanes-are-candidates invariant
//!
//! Each lane holds a **different candidate composition**, never a
//! different timestep of the same candidate. Per-candidate state only
//! ever interacts with its own lane, so the arithmetic each candidate
//! sees — operand values, operation order, rounding — is exactly the
//! scalar [`StorageKernel`](crate::StorageKernel) recursion, and results
//! are **bit-identical** to the scalar chunk path, not merely close. The
//! branchy charge/idle/discharge envelope becomes select-based: both
//! envelope branches are evaluated lane-wide and the per-lane result is
//! chosen bitwise, which never perturbs the chosen value. Every
//! element-wise op lowers to the same scalar `f64` operation per lane
//! (`f64::min`, `f64::max`, `f64::clamp`, `+`, `*`, `/`), so agreement
//! does not depend on how LLVM vectorizes the fixed-width loops.
//! `mul_add` is provided for throughput-oriented callers but is **not**
//! used in the agreement-critical envelope (FMA contraction would change
//! rounding versus the scalar engine).
//!
//! ## Runtime toggle
//!
//! `MGOPT_SIMD=0` disables the lane path at runtime (resolved once, like
//! telemetry's enable flag); anything else — or the variable being unset
//! — leaves it on. The scalar chunk walk remains the always-available
//! agreement oracle, and [`BatchBackend`] lets tests and benches force
//! either path explicitly regardless of the environment.

// The element-wise ops are written as explicit `for i in 0..4` index loops
// on purpose: every lane must run the exact scalar f64 operation, and the
// fixed-width indexed form is the clearest statement of that (and what
// LLVM unrolls/vectorizes). Iterator adapters obscure the lane index the
// whole module is organized around.
#![allow(clippy::needless_range_loop)]

use std::ops::{Add, BitAnd, Div, Mul, Neg, Not, Sub};
use std::sync::atomic::{AtomicU8, Ordering};

use mgopt_storage::{ClcBattery, ClcParams, Storage};

use crate::batch::BatchAcc;
use crate::composition::Composition;
use crate::policy::DispatchPolicy;

/// Lanes per vector: four `f64`s, one 256-bit register.
pub const LANES: usize = 4;

// ---------------------------------------------------------------------
// MGOPT_SIMD runtime toggle
// ---------------------------------------------------------------------

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// `true` unless `MGOPT_SIMD=0`. Resolved from the environment once on
/// first call (one relaxed atomic load afterwards), mirroring the
/// telemetry enable flag.
#[inline]
pub fn simd_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        OFF => false,
        ON => true,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("MGOPT_SIMD")
        .map(|v| v != "0")
        .unwrap_or(true);
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Which chunk walk the batch engines use.
///
/// `Auto` follows [`simd_enabled`] (the `MGOPT_SIMD` toggle); `Scalar`
/// and `Simd` force a path regardless of the environment — benches use
/// them for A/B runs and tests for race-free agreement pinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchBackend {
    /// Follow the `MGOPT_SIMD` runtime toggle (default on).
    #[default]
    Auto,
    /// Always the scalar chunk walk (the agreement oracle).
    Scalar,
    /// Always the lane-wide walk.
    Simd,
}

impl BatchBackend {
    /// `true` when this backend selects the lane-wide walk.
    #[inline]
    pub fn use_simd(self) -> bool {
        match self {
            BatchBackend::Auto => simd_enabled(),
            BatchBackend::Scalar => false,
            BatchBackend::Simd => true,
        }
    }
}

// ---------------------------------------------------------------------
// F64x4 / Mask4
// ---------------------------------------------------------------------

/// Four `f64` lanes, register-aligned.
///
/// Every element-wise op is a fixed 4-iteration loop over the matching
/// scalar `f64` operation, so per-lane results are bit-identical to
/// scalar code whether or not LLVM emits vector instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(32))]
pub struct F64x4(pub [f64; 4]);

/// A per-lane boolean as all-ones / all-zeros bit patterns, the shape
/// hardware compare instructions produce and [`Mask4::select`] consumes
/// bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C, align(32))]
pub struct Mask4(pub [u64; 4]);

impl F64x4 {
    /// All lanes `+0.0`.
    pub const ZERO: F64x4 = F64x4([0.0; 4]);

    /// All lanes `v`.
    #[inline]
    pub fn splat(v: f64) -> Self {
        F64x4([v; 4])
    }

    /// Lane `i`.
    #[inline]
    pub fn lane(self, i: usize) -> f64 {
        self.0[i]
    }

    /// Lane-wise `f64::min` (matches the scalar engine's `min` calls).
    #[inline]
    pub fn min(self, o: Self) -> Self {
        let mut r = [0.0; 4];
        for i in 0..4 {
            r[i] = self.0[i].min(o.0[i]);
        }
        F64x4(r)
    }

    /// Lane-wise `f64::max`.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        let mut r = [0.0; 4];
        for i in 0..4 {
            r[i] = self.0[i].max(o.0[i]);
        }
        F64x4(r)
    }

    /// Lane-wise `f64::clamp(0.0, 1.0)` (the envelope's taper clamp).
    #[inline]
    pub fn clamp01(self) -> Self {
        let mut r = [0.0; 4];
        for i in 0..4 {
            r[i] = self.0[i].clamp(0.0, 1.0);
        }
        F64x4(r)
    }

    /// Lane-wise fused multiply-add `self * a + b`. Not used in the
    /// agreement-critical envelope (contraction changes rounding); here
    /// for throughput-oriented callers that tolerate it.
    #[inline]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        let mut r = [0.0; 4];
        for i in 0..4 {
            r[i] = self.0[i].mul_add(a.0[i], b.0[i]);
        }
        F64x4(r)
    }

    /// Sum of all lanes (left-to-right; only used where order is free).
    #[inline]
    pub fn reduce_add(self) -> f64 {
        self.0[0] + self.0[1] + self.0[2] + self.0[3]
    }

    #[inline]
    fn cmp(self, o: Self, f: impl Fn(f64, f64) -> bool) -> Mask4 {
        let mut r = [0u64; 4];
        for i in 0..4 {
            r[i] = if f(self.0[i], o.0[i]) { !0 } else { 0 };
        }
        Mask4(r)
    }

    /// Lane-wise `<`.
    #[inline]
    pub fn lt(self, o: Self) -> Mask4 {
        self.cmp(o, |a, b| a < b)
    }

    /// Lane-wise `>`.
    #[inline]
    pub fn gt(self, o: Self) -> Mask4 {
        self.cmp(o, |a, b| a > b)
    }

    /// Lane-wise `<=`.
    #[inline]
    pub fn le(self, o: Self) -> Mask4 {
        self.cmp(o, |a, b| a <= b)
    }

    /// Lane-wise `>=`.
    #[inline]
    pub fn ge(self, o: Self) -> Mask4 {
        self.cmp(o, |a, b| a >= b)
    }

    /// Lane-wise `!=` (IEEE: `-0.0` equals `+0.0`, `NaN != NaN`).
    #[inline]
    pub fn ne(self, o: Self) -> Mask4 {
        self.cmp(o, |a, b| a != b)
    }
}

impl Add for F64x4 {
    type Output = F64x4;
    #[inline]
    fn add(self, o: Self) -> Self {
        let mut r = [0.0; 4];
        for i in 0..4 {
            r[i] = self.0[i] + o.0[i];
        }
        F64x4(r)
    }
}

impl Sub for F64x4 {
    type Output = F64x4;
    #[inline]
    fn sub(self, o: Self) -> Self {
        let mut r = [0.0; 4];
        for i in 0..4 {
            r[i] = self.0[i] - o.0[i];
        }
        F64x4(r)
    }
}

impl Mul for F64x4 {
    type Output = F64x4;
    #[inline]
    fn mul(self, o: Self) -> Self {
        let mut r = [0.0; 4];
        for i in 0..4 {
            r[i] = self.0[i] * o.0[i];
        }
        F64x4(r)
    }
}

impl Div for F64x4 {
    type Output = F64x4;
    #[inline]
    fn div(self, o: Self) -> Self {
        let mut r = [0.0; 4];
        for i in 0..4 {
            r[i] = self.0[i] / o.0[i];
        }
        F64x4(r)
    }
}

impl Neg for F64x4 {
    type Output = F64x4;
    #[inline]
    fn neg(self) -> Self {
        let mut r = [0.0; 4];
        for i in 0..4 {
            r[i] = -self.0[i];
        }
        F64x4(r)
    }
}

impl Mask4 {
    /// All lanes true.
    pub const ALL: Mask4 = Mask4([!0; 4]);
    /// All lanes false.
    pub const NONE: Mask4 = Mask4([0; 4]);

    /// Per-lane `if mask { a } else { b }`, as a bitwise blend — the
    /// chosen lane's bits pass through unmodified, so selection never
    /// perturbs a value.
    #[inline]
    pub fn select(self, a: F64x4, b: F64x4) -> F64x4 {
        let mut r = [0.0; 4];
        for i in 0..4 {
            r[i] = f64::from_bits((a.0[i].to_bits() & self.0[i]) | (b.0[i].to_bits() & !self.0[i]));
        }
        F64x4(r)
    }

    /// `true` when any lane is set.
    #[inline]
    pub fn any(self) -> bool {
        self.0.iter().any(|&b| b != 0)
    }

    /// Lane `i` as a bool.
    #[inline]
    pub fn lane(self, i: usize) -> bool {
        self.0[i] != 0
    }
}

impl BitAnd for Mask4 {
    type Output = Mask4;
    #[inline]
    fn bitand(self, o: Self) -> Self {
        let mut r = [0u64; 4];
        for i in 0..4 {
            r[i] = self.0[i] & o.0[i];
        }
        Mask4(r)
    }
}

impl Not for Mask4 {
    type Output = Mask4;
    #[inline]
    fn not(self) -> Self {
        let mut r = [0u64; 4];
        for i in 0..4 {
            r[i] = !self.0[i];
        }
        Mask4(r)
    }
}

// ---------------------------------------------------------------------
// Lane-wide C/L/C battery envelope
// ---------------------------------------------------------------------

/// Chunk-uniform C/L/C parameters, splatted once per chunk.
///
/// Validated through [`ClcBattery::new`] when the first active lane is
/// built, so the lane path panics on invalid parameters exactly when the
/// scalar kernel would.
#[derive(Debug, Clone, Copy)]
pub struct LaneParams {
    eta: F64x4,
    min_soc: F64x4,
    charge_taper_soc: F64x4,
    charge_taper_den: F64x4,
    discharge_width: F64x4,
    discharge_taper_top: F64x4,
    hours: F64x4,
}

impl LaneParams {
    /// Splat one parameter set for a chunk stepping `dt_h` hours.
    pub fn new(p: &ClcParams, dt_h: f64) -> Self {
        LaneParams {
            eta: F64x4::splat(p.round_trip_efficiency.sqrt()),
            min_soc: F64x4::splat(p.min_soc),
            charge_taper_soc: F64x4::splat(p.charge_taper_soc),
            charge_taper_den: F64x4::splat(1.0 - p.charge_taper_soc),
            discharge_width: F64x4::splat(p.discharge_taper_width),
            discharge_taper_top: F64x4::splat(p.min_soc + p.discharge_taper_width),
            hours: F64x4::splat(dt_h),
        }
    }
}

/// Four candidates' battery state, one per lane.
///
/// Lanes whose composition has no battery are inactive: their SoC is
/// pinned at `0.0` (what [`StorageKernel::Null`](crate::StorageKernel)
/// reports to policies) and they accept no power. Inactive lanes carry a
/// capacity placeholder of `1.0` so the always-evaluated envelope never
/// divides by zero; the `active` mask discards those results.
#[derive(Debug, Clone, Copy)]
pub struct LaneKernel {
    soc: F64x4,
    discharged: F64x4,
    cap: F64x4,
    pmax_charge: F64x4,
    pmax_discharge: F64x4,
    active: Mask4,
}

impl LaneKernel {
    /// Build lane state for up to four compositions (missing trailing
    /// lanes are inactive).
    ///
    /// # Panics
    /// Panics on invalid parameters, via the same [`ClcBattery::new`]
    /// validation the scalar kernel runs.
    pub fn new(comps: &[Composition], params: &ClcParams) -> Self {
        assert!(comps.len() <= LANES, "at most {LANES} lanes");
        let mut soc = [0.0; 4];
        let mut cap = [1.0; 4];
        let mut pmax_c = [0.0; 4];
        let mut pmax_d = [0.0; 4];
        let mut active = [0u64; 4];
        for (i, c) in comps.iter().enumerate() {
            if c.battery_kwh > 0.0 {
                // Route through the scalar constructor so validation
                // panics exactly when the scalar engine would.
                let b =
                    ClcBattery::new(mgopt_units::Energy::from_kwh(c.battery_kwh), params.clone());
                soc[i] = b.soc();
                let kwh = b.capacity().kwh();
                cap[i] = kwh;
                pmax_c[i] = params.max_charge_c_rate * kwh;
                pmax_d[i] = params.max_discharge_c_rate * kwh;
                active[i] = !0;
            }
        }
        LaneKernel {
            soc: F64x4(soc),
            discharged: F64x4::ZERO,
            cap: F64x4(cap),
            pmax_charge: F64x4(pmax_c),
            pmax_discharge: F64x4(pmax_d),
            active: Mask4(active),
        }
    }

    /// Current per-lane SoC (0 on inactive lanes).
    #[inline]
    pub fn soc(&self) -> F64x4 {
        self.soc
    }

    /// One step of the C/L/C envelope, all four candidates at once:
    /// request `request` kW for the chunk's `dt`, returning the
    /// accepted/delivered power per lane.
    ///
    /// Both envelope branches run lane-wide with the scalar engine's
    /// exact expression order; per-lane results are chosen bitwise. The
    /// `moving` mask reproduces the scalar early return for zero
    /// requests and inactive (null-storage) lanes: those lanes return
    /// `+0.0` and their state is untouched.
    #[inline]
    pub fn step(&mut self, request: F64x4, p: &LaneParams) -> F64x4 {
        let one = F64x4::splat(1.0);

        // Scalar `update` returns ZERO untouched when the request is
        // zero (or the lane has no battery); `!=` treats -0.0 as zero,
        // matching `power == Power::ZERO`.
        let moving = self.active & request.ne(F64x4::ZERO);
        let charging = request.gt(F64x4::ZERO);
        let take_c = moving & charging;
        let take_d = moving & !charging;

        // Adjacent candidates see the same weather, so all four lanes
        // usually agree on the branch — skip an entirely untaken side
        // rather than always paying both. A skipped side's lanes were
        // discarded bitwise by the selects below anyway (lanes never
        // mix, so dropping dead-lane arithmetic cannot perturb a kept
        // lane), and the untaken side carries ~4 vector divides, the
        // most expensive ops in the walk. Both sides read the pre-step
        // `soc0`; the masks are disjoint, so the sequential state
        // updates equal the original three-way select.
        let soc0 = self.soc;
        let mut ret = F64x4::ZERO;

        if take_c.any() {
            // Charge side (power > 0), exactly ClcBattery::update's order.
            let frac_c = ((one - soc0) / p.charge_taper_den).clamp01();
            let limit_c = soc0
                .le(p.charge_taper_soc)
                .select(self.pmax_charge, self.pmax_charge * frac_c);
            let p_c = request.min(limit_c);
            let headroom = (one - soc0) * self.cap;
            let max_term_c = headroom / p.eta;
            let term_c = (p_c * p.hours).min(max_term_c);
            let soc_c = (soc0 + term_c * p.eta / self.cap).min(one);
            let ret_c = term_c / p.hours;
            self.soc = take_c.select(soc_c, self.soc);
            ret = take_c.select(ret_c, ret);
        }

        if take_d.any() {
            // Discharge side (power <= 0).
            let frac_d = ((soc0 - p.min_soc) / p.discharge_width).clamp01();
            let limit_d = soc0
                .ge(p.discharge_taper_top)
                .select(self.pmax_discharge, self.pmax_discharge * frac_d);
            let p_d = (-request).min(limit_d);
            let usable = (soc0 - p.min_soc).max(F64x4::ZERO) * self.cap;
            let max_term_d = usable * p.eta;
            let term_d = (p_d * p.hours).min(max_term_d);
            let soc_d = (soc0 - term_d / p.eta / self.cap).max(p.min_soc);
            let ret_d = -(term_d / p.hours);
            self.soc = take_d.select(soc_d, self.soc);
            self.discharged = take_d.select(self.discharged + term_d, self.discharged);
            ret = take_d.select(ret_d, ret);
        }

        ret
    }

    /// Equivalent full cycles of lane `i` (0 on inactive lanes), same
    /// formula as `Storage::equivalent_full_cycles`.
    pub fn equivalent_full_cycles(&self, i: usize) -> f64 {
        if self.active.lane(i) {
            self.discharged.lane(i) / self.cap.lane(i)
        } else {
            0.0
        }
    }
}

// ---------------------------------------------------------------------
// Lane-wide dispatch policy
// ---------------------------------------------------------------------

/// A [`DispatchPolicy`] resolved once per chunk into its lane-wide form.
#[derive(Debug, Clone, Copy)]
pub enum LanePolicy {
    /// SelfConsumption / Islanded: the request is the net bus power.
    Passthrough,
    /// Carbon-aware grid charging (threshold test is per-step scalar,
    /// the SoC test per lane).
    CarbonAware {
        /// Charge from the grid when CI is below this, g/kWh.
        ci_threshold: f64,
        /// Stop grid-charging at this SoC.
        target_soc: F64x4,
    },
    /// Battery-sparing: small deficits don't discharge.
    Sparing {
        /// Deficits smaller than this are served from the grid, kW.
        threshold: F64x4,
    },
}

impl LanePolicy {
    /// Resolve a scalar policy.
    pub fn new(policy: DispatchPolicy) -> Self {
        match policy {
            DispatchPolicy::SelfConsumption | DispatchPolicy::Islanded => LanePolicy::Passthrough,
            DispatchPolicy::CarbonAwareGridCharge {
                ci_threshold_g_per_kwh,
                target_soc,
            } => LanePolicy::CarbonAware {
                ci_threshold: ci_threshold_g_per_kwh,
                target_soc: F64x4::splat(target_soc),
            },
            DispatchPolicy::BatterySparing {
                deficit_threshold_kw,
            } => LanePolicy::Sparing {
                threshold: F64x4::splat(deficit_threshold_kw),
            },
        }
    }

    /// Lane-wide `DispatchPolicy::storage_request`.
    #[inline]
    pub fn request(&self, p_delta: F64x4, soc: F64x4, ci: f64) -> F64x4 {
        match *self {
            LanePolicy::Passthrough => p_delta,
            LanePolicy::CarbonAware {
                ci_threshold,
                target_soc,
            } => {
                if ci < ci_threshold {
                    soc.lt(target_soc)
                        .select(F64x4::splat(f64::MAX / 4.0).max(p_delta), p_delta)
                } else {
                    p_delta
                }
            }
            LanePolicy::Sparing { threshold } => {
                (p_delta.lt(F64x4::ZERO) & (-p_delta).lt(threshold)).select(F64x4::ZERO, p_delta)
            }
        }
    }
}

/// Split the post-storage residual into (import, export, unmet) exactly
/// like the scalar three-way branch: negative residuals import (or go
/// unmet when islanded), non-negative residuals export.
#[inline]
pub fn split_residual(residual: F64x4, islanded: bool) -> (F64x4, F64x4, F64x4) {
    let neg = residual.lt(F64x4::ZERO);
    let export = neg.select(F64x4::ZERO, residual);
    if islanded {
        (F64x4::ZERO, export, neg.select(-residual, F64x4::ZERO))
    } else {
        (neg.select(-residual, F64x4::ZERO), export, F64x4::ZERO)
    }
}

// ---------------------------------------------------------------------
// Lane-wide accumulators
// ---------------------------------------------------------------------

/// The batch engine's raw accumulator (`BatchAcc`) with one candidate
/// per lane: the same per-step adds, in the same order, per lane.
/// Inactive additions contribute `+0.0` (or the exact `-0.0` the scalar
/// else-branch adds), which never changes accumulator bits.
#[derive(Debug, Clone, Copy)]
pub struct LaneAcc {
    production: F64x4,
    import: F64x4,
    export: F64x4,
    direct: F64x4,
    charge: F64x4,
    discharge: F64x4,
    unmet: F64x4,
    op_weighted: F64x4,
    cost_import: F64x4,
    cost_export: F64x4,
    self_sufficient_steps: F64x4,
}

impl Default for LaneAcc {
    fn default() -> Self {
        LaneAcc {
            production: F64x4::ZERO,
            import: F64x4::ZERO,
            export: F64x4::ZERO,
            direct: F64x4::ZERO,
            charge: F64x4::ZERO,
            discharge: F64x4::ZERO,
            unmet: F64x4::ZERO,
            op_weighted: F64x4::ZERO,
            cost_import: F64x4::ZERO,
            cost_export: F64x4::ZERO,
            self_sufficient_steps: F64x4::ZERO,
        }
    }
}

impl LaneAcc {
    /// Record one step for all four lanes (`BatchAcc::record`, lane-wide).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        gen: F64x4,
        demand: F64x4,
        import: F64x4,
        export: F64x4,
        p_storage: F64x4,
        unmet: F64x4,
        ci: F64x4,
        price: F64x4,
    ) {
        self.production = self.production + gen;
        self.import = self.import + import;
        self.export = self.export + export;
        self.direct = self.direct + gen.min(demand).max(F64x4::ZERO);
        // Scalar: `if p_storage > 0 { charge += p } else { discharge += -p }`.
        // The uncharging lanes add +0.0 to `charge` (bit-preserving: the
        // accumulator is never -0.0) and the charging lanes add +0.0 to
        // `discharge`; the else-branch's `-p_storage` is added verbatim,
        // including the `-0.0` the scalar path adds for idle steps.
        let charging = p_storage.gt(F64x4::ZERO);
        self.charge = self.charge + charging.select(p_storage, F64x4::ZERO);
        self.discharge = self.discharge + charging.select(F64x4::ZERO, -p_storage);
        self.unmet = self.unmet + unmet;
        self.op_weighted = self.op_weighted + import * ci;
        self.cost_import = self.cost_import + import * price;
        self.cost_export = self.cost_export + export * price;
        // Exact small-integer counting in f64 (steps/year << 2^53).
        self.self_sufficient_steps = self.self_sufficient_steps
            + import
                .le(F64x4::splat(1e-9))
                .select(F64x4::splat(1.0), F64x4::ZERO);
    }

    /// Extract lane `i` as a scalar [`BatchAcc`], feeding the exact same
    /// `finish` formulas as the scalar chunk walk.
    pub(crate) fn extract(&self, i: usize) -> BatchAcc {
        BatchAcc {
            production: self.production.lane(i),
            import: self.import.lane(i),
            export: self.export.lane(i),
            direct: self.direct.lane(i),
            charge: self.charge.lane(i),
            discharge: self.discharge.lane(i),
            unmet: self.unmet.lane(i),
            op_weighted: self.op_weighted.lane(i),
            cost_import: self.cost_import.lane(i),
            cost_export: self.cost_export.lane(i),
            self_sufficient_steps: self.self_sufficient_steps.lane(i) as usize,
        }
    }
}

/// One lane-width group of candidates: generation coefficients, battery
/// state and accumulators for four consecutive chunk members.
#[derive(Debug, Clone, Copy)]
pub struct LaneGroup {
    /// Per-lane solar capacity, kW.
    pub solar: F64x4,
    /// Per-lane wind turbine count.
    pub wind: F64x4,
    /// Per-lane battery state.
    pub kernel: LaneKernel,
    /// Per-lane raw accumulators.
    pub acc: LaneAcc,
}

impl LaneGroup {
    /// Build a group from up to four compositions.
    pub fn new(comps: &[Composition], params: &ClcParams) -> Self {
        assert!(!comps.is_empty() && comps.len() <= LANES);
        let mut solar = [0.0; 4];
        let mut wind = [0.0; 4];
        for (i, c) in comps.iter().enumerate() {
            solar[i] = c.solar_kw;
            wind[i] = c.wind_turbines as f64;
        }
        LaneGroup {
            solar: F64x4(solar),
            wind: F64x4(wind),
            kernel: LaneKernel::new(comps, params),
            acc: LaneAcc::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::StorageKernel;
    use mgopt_units::{Power, SimDuration};

    #[test]
    fn arithmetic_matches_scalar_ops_bitwise() {
        let a = F64x4([1.5, -0.0, f64::MAX, 3.7e-310]);
        let b = F64x4([2.5, 0.0, 2.0, 1.1]);
        for i in 0..4 {
            assert_eq!((a + b).lane(i).to_bits(), (a.lane(i) + b.lane(i)).to_bits());
            assert_eq!((a - b).lane(i).to_bits(), (a.lane(i) - b.lane(i)).to_bits());
            assert_eq!((a * b).lane(i).to_bits(), (a.lane(i) * b.lane(i)).to_bits());
            assert_eq!((a / b).lane(i).to_bits(), (a.lane(i) / b.lane(i)).to_bits());
            assert_eq!(
                a.min(b).lane(i).to_bits(),
                a.lane(i).min(b.lane(i)).to_bits()
            );
            assert_eq!(
                a.max(b).lane(i).to_bits(),
                a.lane(i).max(b.lane(i)).to_bits()
            );
            assert_eq!(
                a.mul_add(b, b).lane(i).to_bits(),
                a.lane(i).mul_add(b.lane(i), b.lane(i)).to_bits()
            );
        }
    }

    #[test]
    fn select_is_a_bitwise_blend() {
        let a = F64x4([1.0, 2.0, -0.0, f64::NAN]);
        let b = F64x4([5.0, 6.0, 7.0, 8.0]);
        let m = Mask4([!0, 0, !0, !0]);
        let r = m.select(a, b);
        assert_eq!(r.lane(0), 1.0);
        assert_eq!(r.lane(1), 6.0);
        assert_eq!(r.lane(2).to_bits(), (-0.0f64).to_bits());
        assert!(r.lane(3).is_nan());
    }

    #[test]
    fn comparisons_treat_signed_zero_and_nan_like_ieee() {
        let z = F64x4([-0.0, 0.0, f64::NAN, 1.0]);
        let ne = z.ne(F64x4::ZERO);
        assert!(!ne.lane(0), "-0.0 == +0.0");
        assert!(!ne.lane(1));
        assert!(ne.lane(2), "NaN != NaN");
        assert!(ne.lane(3));
        assert!(!z.lt(F64x4::ZERO).lane(2), "NaN compares false");
    }

    #[test]
    fn mask_combinators() {
        let m = Mask4([!0, 0, !0, 0]);
        assert!(m.any());
        assert!(!(m & !m).any());
        assert_eq!((!m).0, [0, !0, 0, !0]);
        assert!(!Mask4::NONE.any());
        assert!(Mask4::ALL.lane(3));
    }

    #[test]
    fn lane_kernel_tracks_scalar_battery_bit_for_bit() {
        let params = ClcParams::default();
        let comps = [
            Composition::new(0, 0.0, 7_500.0),
            Composition::new(0, 0.0, 0.0), // null lane
            Composition::new(0, 0.0, 60_000.0),
            Composition::new(0, 0.0, 22_500.0),
        ];
        let dt = SimDuration::from_hours(1.0);
        let mut lanes = LaneKernel::new(&comps, &params);
        let lane_params = LaneParams::new(&params, dt.hours());
        let mut scalars: Vec<StorageKernel> = comps
            .iter()
            .map(|c| StorageKernel::for_composition(c, &params))
            .collect();
        // A request pattern hitting charge, discharge, idle and the
        // taper regions, identical across lanes.
        let reqs = [
            4_000.0, -2_000.0, 0.0, 12_000.0, 12_000.0, -9_000.0, -0.0, 800.0, -30_000.0, 5.0,
        ];
        for &r in reqs.iter().cycle().take(500) {
            let got = lanes.step(F64x4::splat(r), &lane_params);
            for (i, k) in scalars.iter_mut().enumerate() {
                let want = k.update_kw(Power::from_kw(r), dt);
                assert_eq!(
                    got.lane(i).to_bits(),
                    want.to_bits(),
                    "lane {i} request {r}"
                );
                assert_eq!(lanes.soc().lane(i).to_bits(), k.soc().to_bits(), "soc {i}");
            }
        }
        for (i, k) in scalars.iter().enumerate() {
            assert_eq!(
                lanes.equivalent_full_cycles(i).to_bits(),
                k.equivalent_full_cycles().to_bits(),
                "cycles {i}"
            );
        }
    }

    #[test]
    fn lane_policies_match_scalar_requests_bitwise() {
        let policies = [
            DispatchPolicy::SelfConsumption,
            DispatchPolicy::Islanded,
            DispatchPolicy::CarbonAwareGridCharge {
                ci_threshold_g_per_kwh: 330.0,
                target_soc: 0.9,
            },
            DispatchPolicy::BatterySparing {
                deficit_threshold_kw: 200.0,
            },
        ];
        let socs = F64x4([0.1, 0.5, 0.95, 0.0]);
        for policy in policies {
            let lane = LanePolicy::new(policy);
            for p_delta in [-500.0, -100.0, -0.0, 0.0, 50.0, 4_000.0] {
                for ci in [10.0, 400.0] {
                    let got = lane.request(F64x4::splat(p_delta), socs, ci);
                    for i in 0..4 {
                        let want = policy
                            .storage_request(Power::from_kw(p_delta), socs.lane(i), ci)
                            .kw();
                        assert_eq!(
                            got.lane(i).to_bits(),
                            want.to_bits(),
                            "{} lane {i} p_delta {p_delta} ci {ci}",
                            policy.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn split_residual_matches_scalar_branches() {
        let residuals = [-5.0, -0.0, 0.0, 3.0];
        for islanded in [false, true] {
            let (import, export, unmet) = split_residual(F64x4(residuals), islanded);
            for (i, &r) in residuals.iter().enumerate() {
                let (wi, we, wu) = if islanded && r < 0.0 {
                    (0.0, 0.0, -r)
                } else if r < 0.0 {
                    (-r, 0.0, 0.0)
                } else {
                    (0.0, r, 0.0)
                };
                assert_eq!(import.lane(i).to_bits(), wi.to_bits(), "import {r}");
                assert_eq!(export.lane(i).to_bits(), we.to_bits(), "export {r}");
                assert_eq!(unmet.lane(i).to_bits(), wu.to_bits(), "unmet {r}");
            }
        }
    }

    #[test]
    fn backend_forcing_overrides_env() {
        assert!(!BatchBackend::Scalar.use_simd());
        assert!(BatchBackend::Simd.use_simd());
        // Auto consults the env exactly once; both outcomes are legal
        // here depending on the harness environment.
        let _ = BatchBackend::Auto.use_simd();
        assert_eq!(BatchBackend::default(), BatchBackend::Auto);
    }

    #[test]
    #[should_panic(expected = "invalid C/L/C parameters")]
    fn lane_kernel_panics_on_invalid_params_like_scalar() {
        let bad = ClcParams {
            discharge_taper_width: 0.0,
            ..ClcParams::default()
        };
        LaneKernel::new(&[Composition::new(0, 0.0, 100.0)], &bad);
    }
}

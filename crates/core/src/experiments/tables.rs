//! Tables 1 & 2: five representative candidate compositions per site —
//! the baseline, the best compositions under embodied budgets of 5,000 /
//! 10,000 / 15,000 tCO2, and the unconstrained optimum.

use mgopt_microgrid::AnnualResult;
use serde::{Deserialize, Serialize};

use super::CandidateRow;
use crate::scenario::PreparedScenario;
use crate::sweep::sweep_all;

/// The paper's embodied-carbon budgets, tCO2.
pub const PAPER_BUDGETS_T: [f64; 3] = [5_000.0, 10_000.0, 15_000.0];

/// Output of the candidate-table experiment for one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateTable {
    /// Site name.
    pub site: String,
    /// The five rows: baseline, ≤5k, ≤10k, ≤15k, unconstrained best.
    pub rows: Vec<CandidateRow>,
}

/// Extract the paper's five candidates from sweep results.
///
/// Selection per row: minimal operational emissions among compositions
/// whose embodied emissions fit the budget; ties break toward lower
/// embodied. The last row is the unconstrained operational optimum.
pub fn extract_candidates(results: &[AnnualResult]) -> Vec<CandidateRow> {
    let baseline = results
        .iter()
        .find(|r| r.composition.is_baseline())
        .expect("sweep must include the baseline");

    let best_under = |budget: f64| -> &AnnualResult {
        results
            .iter()
            .filter(|r| r.metrics.embodied_t <= budget)
            .min_by(|a, b| {
                a.metrics
                    .operational_t_per_day
                    .partial_cmp(&b.metrics.operational_t_per_day)
                    .expect("NaN emissions")
                    .then(
                        a.metrics
                            .embodied_t
                            .partial_cmp(&b.metrics.embodied_t)
                            .expect("NaN embodied"),
                    )
            })
            .expect("budget always admits the baseline")
    };

    let mut rows = vec![CandidateRow::from_result(baseline)];
    for budget in PAPER_BUDGETS_T {
        rows.push(CandidateRow::from_result(best_under(budget)));
    }
    rows.push(CandidateRow::from_result(best_under(f64::INFINITY)));
    rows
}

/// Run the full experiment: sweep + extraction.
pub fn run(scenario: &PreparedScenario) -> CandidateTable {
    let results = sweep_all(scenario);
    CandidateTable {
        site: scenario.site_name().to_string(),
        rows: extract_candidates(&results),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use mgopt_microgrid::CompositionSpace;

    fn table(cfg: ScenarioConfig) -> CandidateTable {
        run(&cfg.prepare())
    }

    fn tiny_scenario(site: crate::scenario::SitePreset) -> ScenarioConfig {
        ScenarioConfig {
            site,
            space: CompositionSpace::tiny(),
            ..ScenarioConfig::paper_houston()
        }
    }

    #[test]
    fn five_rows_ordered_by_budget() {
        let t = table(tiny_scenario(crate::scenario::SitePreset::Houston));
        assert_eq!(t.rows.len(), 5);
        // Baseline row.
        assert_eq!(t.rows[0].embodied_t, 0.0);
        assert_eq!(t.rows[0].coverage_pct, 0.0);
        // Budgets respected.
        assert!(t.rows[1].embodied_t <= 5_000.0);
        assert!(t.rows[2].embodied_t <= 10_000.0);
        assert!(t.rows[3].embodied_t <= 15_000.0);
        // Operational emissions monotonically improve down the table.
        for w in t.rows.windows(2) {
            assert!(
                w[1].operational_t_per_day <= w[0].operational_t_per_day + 1e-9,
                "rows must improve: {} then {}",
                w[0].operational_t_per_day,
                w[1].operational_t_per_day
            );
        }
    }

    #[test]
    fn coverage_rises_with_investment() {
        let t = table(tiny_scenario(crate::scenario::SitePreset::Berkeley));
        assert!(t.rows[4].coverage_pct > t.rows[1].coverage_pct);
        assert!(t.rows[4].coverage_pct > 90.0);
    }

    #[test]
    fn site_name_propagates() {
        let t = table(tiny_scenario(crate::scenario::SitePreset::Berkeley));
        assert_eq!(t.site, "Berkeley, CA");
    }
}

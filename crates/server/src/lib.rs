#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # mgopt-server
//!
//! The optimization-as-a-service daemon: a long-lived server that keeps
//! prepared sites hot in a shared [`PreparedCache`], accepts study
//! requests over a newline-delimited JSON protocol, multiplexes
//! concurrent NSGA-II studies over the shared batch engine, and streams
//! incremental front updates plus a final result frame per request.
//! Like `mgopt-telemetry`, this crate is std-only: transports are plain
//! `Read`/`Write` (TCP, stdin/stdout, or the in-process [`pipe`]), and
//! concurrency is `std::thread` + scoped workers.
//!
//! ## Wire format
//!
//! Frame types, the strict-reject parser, and the versioning rule live in
//! [`mgopt_core::wire`]; the daemon adds only transport behavior:
//!
//! * One request per line (`\n`-terminated), one response per line.
//!   Blank lines are ignored.
//! * Every response echoes the request's `id`; frames belonging to
//!   different studies interleave freely on the wire, so a client
//!   multiplexes concurrent studies over one connection by `id`.
//! * A study answers `Accepted` → zero or more `Front` updates (when
//!   `stream` is set, one per NSGA-II generation) → `Done`. Any failure
//!   instead answers a single `Error` frame for that `id` — malformed
//!   requests, unknown presets, and infeasible caps are structured
//!   errors, never a crash or disconnect.
//! * **Versioning rule** (see [`mgopt_core::wire::WIRE_VERSION`]):
//!   parsing is strict-reject, so any added or removed field in the
//!   envelope, study body, or budget bumps the protocol version; frames
//!   carrying any other version are answered with an
//!   `UnsupportedVersion` error.
//! * A request line longer than [`ServerConfig::max_frame_bytes`] is
//!   answered with an `Oversized` error; the rest of the line is
//!   discarded and the connection keeps serving from the next newline.
//! * `Ping` answers `Pong`; `Shutdown` stops reading, drains in-flight
//!   studies, answers `Bye`, and closes the connection (and, under
//!   [`Server::serve_tcp`], stops the accept loop).
//!
//! ## Concurrency model
//!
//! Studies run on scoped worker threads, at most
//! [`ServerConfig::max_concurrent`] in flight; further requests exert
//! backpressure on the read loop. Prepared sites come from the shared
//! [`PreparedCache`] keyed by the full scenario config, so concurrent
//! studies over the same sites share one `Arc<PreparedScenario>` and
//! never re-prepare. Search results depend only on `(fleet, budget,
//! seed)` — never on interleaving — because evaluation is re-entrant
//! over shared read-only data and every study owns its seeded RNG.
//!
//! ## Environment knobs
//!
//! | Variable | Effect |
//! |---|---|
//! | `MGOPT_SERVER_ADDR` | `mgopt_serve` binds this TCP address (e.g. `127.0.0.1:0`) instead of serving stdin/stdout. |
//! | `MGOPT_SERVER_CONCURRENCY` | Max in-flight studies per connection (default 4). |
//! | `MGOPT_SERVER_CACHE` | Prepared-scenario cache capacity (default 8). |
//! | `MGOPT_SERVER_MAX_FRAME` | Max request-line bytes (default 1048576). |
//! | `MGOPT_TRACE` | Per-study audit log: `server.study` spans, `study_start` / `study_done` / `request_error` events, `prep_cache.*` counters. |
//!
//! ## Audit log
//!
//! The daemon consumes `mgopt-telemetry` rather than inventing its own
//! observability: each study runs under a `server.study` span, emits
//! `study_start` / `study_done` events (plus `request_error` for every
//! error frame), and the prepared cache bumps `prep_cache.hits` /
//! `prep_cache.misses` — all on the `MGOPT_TRACE` JSONL stream, readable
//! with `trace_report`.

pub mod pipe;

use std::io::{self, BufRead, Read, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use mgopt_core::problem::FleetProblem;
use mgopt_core::wire::{
    self, ErrorCode, FrontUpdate, PlanPoint, Request, RequestFrame, Response, ResponseFrame,
    StudyAccepted, StudyDone, StudyRequest, WireError, WIRE_VERSION,
};
use mgopt_core::{scenario_key_hash, PreparedCache, PreparedFleet};
use mgopt_optimizer::{GenerationView, Nsga2Config, Nsga2Optimizer};
use mgopt_telemetry::{self as telemetry, Stage};
use serde::Value;

/// Daemon configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum in-flight studies per connection (minimum 1). Additional
    /// study requests block the connection's read loop until a worker
    /// frees up — natural backpressure.
    pub max_concurrent: usize,
    /// Prepared-scenario cache capacity (minimum 1).
    pub cache_capacity: usize,
    /// Maximum request-line length in bytes; longer lines are answered
    /// with an `Oversized` error frame and discarded.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_concurrent: 4,
            cache_capacity: 8,
            max_frame_bytes: 1 << 20,
        }
    }
}

impl ServerConfig {
    /// Read the `MGOPT_SERVER_*` knobs (see the crate docs), falling back
    /// to defaults. Returns a usage-style message on an unparsable value.
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = Self::default();
        if let Some(v) = env_usize("MGOPT_SERVER_CONCURRENCY")? {
            cfg.max_concurrent = v;
        }
        if let Some(v) = env_usize("MGOPT_SERVER_CACHE")? {
            cfg.cache_capacity = v;
        }
        if let Some(v) = env_usize("MGOPT_SERVER_MAX_FRAME")? {
            cfg.max_frame_bytes = v;
        }
        Ok(cfg)
    }
}

fn env_usize(name: &str) -> Result<Option<usize>, String> {
    match std::env::var(name) {
        Ok(s) if !s.is_empty() => s
            .parse::<usize>()
            .map(|v| Some(v.max(1)))
            .map_err(|_| format!("{name}={s}: expected a positive integer")),
        _ => Ok(None),
    }
}

/// Why [`Server::serve_connection`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionOutcome {
    /// The client closed its write side; all in-flight studies drained.
    Eof,
    /// The client sent `Shutdown`; in-flight studies drained, `Bye` sent.
    Shutdown,
}

/// The daemon: shared prepared cache + per-connection protocol loop.
///
/// `Server` is `&self`-re-entrant: several connections can be served
/// concurrently (one thread each, all sharing the cache), and each
/// connection multiplexes up to [`ServerConfig::max_concurrent`] studies.
pub struct Server {
    config: ServerConfig,
    cache: Arc<PreparedCache>,
    limiter: Limiter,
    studies_done: AtomicU64,
}

impl Server {
    /// Create a daemon with its own prepared cache.
    pub fn new(config: ServerConfig) -> Self {
        let cache = Arc::new(PreparedCache::new(config.cache_capacity));
        Self::with_cache(config, cache)
    }

    /// Create a daemon over an existing (possibly shared) cache.
    pub fn with_cache(config: ServerConfig, cache: Arc<PreparedCache>) -> Self {
        let limiter = Limiter::new(config.max_concurrent.max(1));
        Self {
            config,
            cache,
            limiter,
            studies_done: AtomicU64::new(0),
        }
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared prepared-scenario cache.
    pub fn cache(&self) -> &Arc<PreparedCache> {
        &self.cache
    }

    /// Total studies completed (successfully or with an error frame after
    /// acceptance) across all connections.
    pub fn studies_done(&self) -> u64 {
        self.studies_done.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently in-flight studies.
    pub fn peak_in_flight(&self) -> usize {
        self.limiter.peak.load(Ordering::Relaxed)
    }

    /// Serve one connection until EOF or `Shutdown`, blocking the calling
    /// thread. Study workers run on scoped threads and are always joined
    /// before this returns; write failures (e.g. the client disconnected
    /// mid-stream) are swallowed so in-flight studies finish quietly.
    pub fn serve_connection<R, W>(&self, reader: R, writer: W) -> io::Result<ConnectionOutcome>
    where
        R: Read,
        W: Write + Send,
    {
        let mut reader = io::BufReader::new(reader);
        let writer = Mutex::new(writer);
        let outcome = thread::scope(|s| -> io::Result<ConnectionOutcome> {
            let mut buf: Vec<u8> = Vec::new();
            loop {
                match read_bounded_line(&mut reader, self.config.max_frame_bytes, &mut buf)? {
                    LineRead::Eof => return Ok(ConnectionOutcome::Eof),
                    LineRead::Oversized => {
                        send_error(
                            &writer,
                            "",
                            WireError::new(
                                ErrorCode::Oversized,
                                format!(
                                    "request line exceeds {} bytes; discarded to next newline",
                                    self.config.max_frame_bytes
                                ),
                            ),
                        );
                        drain_line(&mut reader, &mut buf)?;
                    }
                    LineRead::Line(line) => {
                        let line = line.trim();
                        if line.is_empty() {
                            continue;
                        }
                        match wire::parse_request(line) {
                            Err(err) => send_error(&writer, &salvage_id(line), err),
                            Ok(RequestFrame { id, req, .. }) => match req {
                                Request::Ping => send(&writer, &id, Response::Pong),
                                Request::Shutdown => return Ok(ConnectionOutcome::Shutdown),
                                Request::Study(study) => {
                                    self.spawn_study(s, id, study, &writer);
                                }
                            },
                        }
                    }
                }
            }
        })?;
        // The scope joined every worker; the connection is quiet again.
        if outcome == ConnectionOutcome::Shutdown {
            send(&writer, "", Response::Bye);
        }
        Ok(outcome)
    }

    /// Accept loop: serves connections **sequentially** (studies within a
    /// connection are concurrent) until a client sends `Shutdown`. For
    /// concurrently-served connections, call
    /// [`serve_connection`](Self::serve_connection) from one thread per
    /// accepted stream — the daemon itself is re-entrant.
    pub fn serve_tcp(&self, listener: TcpListener) -> io::Result<()> {
        for stream in listener.incoming() {
            let stream = stream?;
            let reader = stream.try_clone()?;
            match self.serve_connection(reader, stream) {
                Ok(ConnectionOutcome::Shutdown) => return Ok(()),
                Ok(ConnectionOutcome::Eof) => {}
                // A torn-down connection must not kill the daemon.
                Err(_) => {}
            }
        }
        Ok(())
    }

    /// Validate, prepare (through the shared cache), and launch one study
    /// worker. Blocks for a concurrency permit *before* spawning — the
    /// read loop is the backpressure point.
    fn spawn_study<'scope, 'env, W: Write + Send>(
        &'env self,
        scope: &'scope thread::Scope<'scope, 'env>,
        id: String,
        study: StudyRequest,
        writer: &'env Mutex<W>,
    ) where
        'env: 'scope,
    {
        let scenario = match study.resolved_scenario() {
            Ok(s) => s,
            Err(err) => {
                send_error(writer, &id, err);
                return;
            }
        };
        let permit = self.limiter.acquire();
        scope.spawn(move || {
            let _permit = permit;
            let _span = telemetry::span(Stage::ServerStudy);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.run_study(&id, &study, &scenario, writer)
            }));
            if outcome.is_err() {
                send_error(
                    writer,
                    &id,
                    WireError::new(ErrorCode::Internal, "study worker panicked"),
                );
            }
            self.studies_done.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// The study body: cache-shared preparation, `Accepted`, the NSGA-II
    /// run (streaming `Front` frames when asked), `Done`.
    fn run_study<W: Write + Send>(
        &self,
        id: &str,
        study: &StudyRequest,
        scenario: &mgopt_core::FleetScenario,
        writer: &Mutex<W>,
    ) {
        let t0 = Instant::now();
        let (fleet, stats) = scenario.prepare_shared(&self.cache);
        let plan_space = fleet.members.iter().fold(1u64, |acc, m| {
            acc.saturating_mul(m.config.space.len() as u64)
        });
        telemetry::Event::new("study_start")
            .str("id", id)
            .u64("sites", fleet.n_sites() as u64)
            .u64("plan_space", plan_space)
            .u64("prep_hits", u64::from(stats.hits))
            .u64("prep_misses", u64::from(stats.misses))
            .u64(
                "fleet_key",
                scenario
                    .members
                    .first()
                    .map_or(0, |m| scenario_key_hash(&m.scenario)),
            )
            .emit();
        send(
            writer,
            id,
            Response::Accepted(StudyAccepted {
                sites: fleet.names.clone(),
                plan_space,
                prep_cache_hits: stats.hits,
                prep_cache_misses: stats.misses,
            }),
        );

        let mut problem = FleetProblem::new(&fleet);
        if let Some(cap) = study.peak_cap_kw {
            problem = problem.with_peak_cap_kw(cap);
        }
        let optimizer = Nsga2Optimizer::new(Nsga2Config {
            population_size: study.budget.population_size,
            max_trials: study.budget.max_trials,
            seed: study.budget.seed,
            ..Nsga2Config::default()
        });

        let stream = study.stream;
        let mut generations = 0u32;
        let mut last_front: Vec<PlanPoint> = Vec::new();
        let result = optimizer.run_observed(&problem, &mut |view: GenerationView| {
            generations = view.generation as u32 + 1;
            last_front = view
                .front
                .iter()
                .map(|(genome, eval)| PlanPoint {
                    genome: genome.clone(),
                    plan: plan_of(&fleet, genome),
                    objectives: eval.objectives.clone(),
                    violation: eval.total_violation(),
                })
                .collect();
            if stream {
                send(
                    writer,
                    id,
                    Response::Front(FrontUpdate {
                        generation: view.generation as u32,
                        sampled: view.sampled as u64,
                        front: last_front.clone(),
                    }),
                );
            }
        });

        telemetry::Event::new("study_done")
            .str("id", id)
            .u64("generations", u64::from(generations))
            .u64("sampled", result.sampled_trials as u64)
            .u64("unique", result.unique_evaluations as u64)
            .u64("front", last_front.len() as u64)
            .f64("wall_ms", t0.elapsed().as_secs_f64() * 1e3)
            .emit();
        send(
            writer,
            id,
            Response::Done(StudyDone {
                generations,
                sampled_trials: result.sampled_trials as u64,
                unique_evaluations: result.unique_evaluations as u64,
                cache_hits: result.cache_hits as u64,
                cache_misses: result.cache_misses as u64,
                wall_ms: t0.elapsed().as_millis() as u64,
                front: last_front,
            }),
        );
    }
}

/// Decode one genome into its fleet plan.
fn plan_of(fleet: &PreparedFleet, genome: &[u16]) -> Vec<mgopt_microgrid::Composition> {
    genome
        .iter()
        .zip(&fleet.members)
        .map(|(&g, m)| m.config.space.at(g as usize))
        .collect()
}

/// Best-effort extraction of the `id` from a line that failed strict
/// parsing, so the error frame can still be correlated.
fn salvage_id(line: &str) -> String {
    serde_json::from_str::<Value>(line)
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_str).map(str::to_string))
        .unwrap_or_default()
}

fn send<W: Write>(writer: &Mutex<W>, id: &str, resp: Response) {
    let frame = ResponseFrame {
        v: WIRE_VERSION,
        id: id.to_string(),
        resp,
    };
    let line = wire::encode_response(&frame);
    // A panicked writer-holder must not wedge every other study on the
    // connection: adopt the poisoned lock and keep answering.
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    // Swallow write errors: a client that disconnected mid-stream must not
    // tear down other studies on this connection.
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

fn send_error<W: Write>(writer: &Mutex<W>, id: &str, err: WireError) {
    telemetry::Event::new("request_error")
        .str("id", id)
        .str("code", &format!("{:?}", err.code))
        .str("message", &err.message)
        .emit();
    send(writer, id, Response::Error(err));
}

/// Result of one bounded line read.
enum LineRead {
    /// A complete line (newline stripped).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line exceeded the frame limit before its newline.
    Oversized,
}

/// Read one `\n`-terminated line of at most `max` bytes. On `Oversized`,
/// the overlong prefix has been consumed but the rest of the line has
/// not — callers resynchronize with [`drain_line`].
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    max: usize,
    buf: &mut Vec<u8>,
) -> io::Result<LineRead> {
    buf.clear();
    let n = reader
        .by_ref()
        .take(max as u64 + 1)
        .read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.last() != Some(&b'\n') && n > max {
        return Ok(LineRead::Oversized);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    match std::str::from_utf8(buf) {
        Ok(s) => Ok(LineRead::Line(s.to_string())),
        // Deliver undecodable bytes as a lossy line; the JSON parser turns
        // it into a MalformedFrame error.
        Err(_) => Ok(LineRead::Line(String::from_utf8_lossy(buf).into_owned())),
    }
}

/// Discard input up to and including the next newline (or EOF).
fn drain_line<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> io::Result<()> {
    loop {
        buf.clear();
        let n = reader.by_ref().take(4096).read_until(b'\n', buf)?;
        if n == 0 || buf.last() == Some(&b'\n') {
            return Ok(());
        }
    }
}

/// A counting semaphore that records its high-water mark.
struct Limiter {
    max: usize,
    state: Mutex<usize>, // in-flight count
    cv: Condvar,
    peak: AtomicUsize,
}

struct Permit<'a>(&'a Limiter);

impl Limiter {
    fn new(max: usize) -> Self {
        Self {
            max,
            state: Mutex::new(0),
            cv: Condvar::new(),
            peak: AtomicUsize::new(0),
        }
    }

    fn acquire(&self) -> Permit<'_> {
        // The guarded state is a plain counter, valid even if a holder
        // panicked — adopt poisoned locks rather than propagating.
        let mut in_flight = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while *in_flight >= self.max {
            in_flight = self.cv.wait(in_flight).unwrap_or_else(|e| e.into_inner());
        }
        *in_flight += 1;
        self.peak.fetch_max(*in_flight, Ordering::Relaxed);
        Permit(self)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut in_flight = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        *in_flight -= 1;
        self.0.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limiter_caps_and_records_peak() {
        let limiter = Limiter::new(2);
        let a = limiter.acquire();
        let b = limiter.acquire();
        assert_eq!(limiter.peak.load(Ordering::Relaxed), 2);
        drop(a);
        let c = limiter.acquire();
        assert_eq!(limiter.peak.load(Ordering::Relaxed), 2);
        drop(b);
        drop(c);
        assert_eq!(*limiter.state.lock().unwrap(), 0);
    }

    #[test]
    fn bounded_reader_flags_oversized_and_recovers() {
        let input = b"short\n0123456789abcdef_way_too_long\nnext\n";
        let mut r = io::BufReader::new(&input[..]);
        let mut buf = Vec::new();
        assert!(matches!(
            read_bounded_line(&mut r, 10, &mut buf).unwrap(),
            LineRead::Line(s) if s == "short"
        ));
        assert!(matches!(
            read_bounded_line(&mut r, 10, &mut buf).unwrap(),
            LineRead::Oversized
        ));
        drain_line(&mut r, &mut buf).unwrap();
        assert!(matches!(
            read_bounded_line(&mut r, 10, &mut buf).unwrap(),
            LineRead::Line(s) if s == "next"
        ));
        assert!(matches!(
            read_bounded_line(&mut r, 10, &mut buf).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn salvage_id_best_effort() {
        assert_eq!(salvage_id(r#"{"v":9,"id":"abc","req":"Nope"}"#), "abc");
        assert_eq!(salvage_id("not json"), "");
        assert_eq!(salvage_id(r#"{"id":7}"#), "");
    }

    /// Compile-time pin: one `Server` must be shareable across connection
    /// and study threads (`&self`-re-entrant serving).
    #[test]
    fn server_is_send_and_sync() {
        fn sharable<T: Send + Sync>() {}
        sharable::<Server>();
        sharable::<Arc<Server>>();
    }

    #[test]
    fn config_from_env_defaults() {
        // No MGOPT_SERVER_* set in the test environment.
        let cfg = ServerConfig::from_env().unwrap();
        assert_eq!(cfg, ServerConfig::default());
    }
}

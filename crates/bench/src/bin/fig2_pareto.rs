//! Regenerates **Figure 2**: Pareto fronts of (embodied tCO2, operational
//! tCO2/day) for Houston and Berkeley, with candidate compositions.
//!
//! ```bash
//! cargo run --release -p mgopt-bench --bin fig2_pareto
//! ```

use mgopt_core::experiments::fig2;
use mgopt_core::report;

fn main() {
    for scenario in [mgopt_bench::houston(), mgopt_bench::berkeley()] {
        let out = fig2::run(&scenario);
        print!("{}", report::render_fig2(&out));
        println!();
        // The paper's visual: front points `o`, candidates `^`.
        print!("{}", report::render_fig2_plot(&out, 72, 20));
        println!();
        let name = format!(
            "fig2_{}",
            if out.site.starts_with("Houston") {
                "houston"
            } else {
                "berkeley"
            }
        );
        mgopt_bench::write_artifact(&name, &out);
    }
}

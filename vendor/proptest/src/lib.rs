//! Workspace-local stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro with
//! `arg in strategy` parameters and an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop_map` / `prop_filter`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Cases are generated from a fixed ChaCha12 seed so failures are
//! reproducible run-to-run; there is no shrinking — the failing inputs are
//! printed by the assertion message instead.

use std::ops::{Range, RangeInclusive};

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The RNG driving test-case generation.
pub type TestRng = ChaCha12Rng;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `pred` (resamples, up to a cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, why: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            why,
            pred,
        }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// The [`Strategy::prop_filter`] adapter.
pub struct Filter<S, F> {
    inner: S,
    why: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.why);
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

/// Strategy modules mirroring proptest's `prop::` namespace.
pub mod strategies {
    use super::*;

    /// Collection strategies.
    pub mod collection {
        use super::*;

        /// Lengths acceptable to [`vec()`].
        pub trait SizeRange {
            /// Draw a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        /// A strategy for `Vec`s with element strategy `element` and a
        /// length drawn from `size`.
        pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { element, size }
        }

        /// The [`vec()`] strategy.
        pub struct VecStrategy<S, Z> {
            element: S,
            size: Z,
        }

        impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::*;

        /// Uniformly select one of the given options.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select { options }
        }

        /// The [`select`] strategy.
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::strategies as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[doc(hidden)]
pub fn __fresh_rng() -> TestRng {
    // Fixed seed: deterministic, reproducible failures.
    TestRng::seed_from_u64(0x70726f70_74657374)
}

/// Assert inside a property (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skip the current case when an assumption does not hold. (The stub
/// continues to the next generated case instead of resampling.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// The property-test macro: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    // With an explicit config header.
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::__fresh_rng();
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
    // Default config.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0.0f64..10.0, n in 1usize..5) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(-1.0f64..1.0, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn select_picks_from_options(k in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&k));
        }

        #[test]
        fn tuples_and_map(pair in (0u32..=10, 0usize..=8).prop_map(|(a, b)| (a, b * 2))) {
            prop_assert!(pair.0 <= 10);
            prop_assert_eq!(pair.1 % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::__fresh_rng();
        let mut b = crate::__fresh_rng();
        let s = 0.0f64..1.0;
        for _ in 0..100 {
            assert_eq!(
                Strategy::sample(&s, &mut a).to_bits(),
                Strategy::sample(&s, &mut b).to_bits()
            );
        }
    }

    #[test]
    fn filter_rejects() {
        let mut rng = crate::__fresh_rng();
        let s = (0usize..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&s, &mut rng) % 2, 0);
        }
    }
}

//! Dispatch strategies: the controller deciding how storage and grid
//! interact with the bus each step.

use mgopt_units::{Energy, Power, SimDuration, SimTime};

/// Bus conditions presented to a [`DispatchStrategy`].
#[derive(Debug, Clone, Copy)]
pub struct BusState {
    /// Step start time.
    pub t: SimTime,
    /// Step length.
    pub dt: SimDuration,
    /// Net actor power on the bus (production − consumption), kW.
    pub p_delta: Power,
    /// Storage state of charge, `[0, 1]`.
    pub soc: f64,
    /// Storage nameplate capacity.
    pub capacity: Energy,
}

/// A storage/grid dispatch policy.
pub trait DispatchStrategy: Send {
    /// Power to request from the storage for this step (positive charge,
    /// negative discharge). The storage clamps the request to its envelope.
    fn storage_request(&mut self, state: &BusState) -> Power;

    /// Maximum grid import allowed this step (`None` = unconstrained).
    /// Islanded microgrids return `Some(0)`.
    fn grid_import_limit(&mut self, _state: &BusState) -> Option<Power> {
        None
    }

    /// Strategy name for reports.
    fn name(&self) -> &str {
        "unnamed"
    }
}

/// The default policy, matching Vessim's microgrid behaviour: store every
/// surplus, discharge on every deficit, never charge from the grid.
#[derive(Debug, Clone, Default)]
pub struct SelfConsumption {
    _private: (),
}

impl DispatchStrategy for SelfConsumption {
    fn storage_request(&mut self, state: &BusState) -> Power {
        // Surplus (+) charges, deficit (−) discharges; the battery clamps.
        state.p_delta
    }

    fn name(&self) -> &str {
        "self-consumption"
    }
}

/// Islanded operation: like [`SelfConsumption`], but grid import is
/// forbidden — deficits beyond the battery become unmet load. Used for the
/// paper's reliability/resilience objective (§4.3).
#[derive(Debug, Clone, Default)]
pub struct Islanded {
    _private: (),
}

impl DispatchStrategy for Islanded {
    fn storage_request(&mut self, state: &BusState) -> Power {
        state.p_delta
    }

    fn grid_import_limit(&mut self, _state: &BusState) -> Option<Power> {
        Some(Power::ZERO)
    }

    fn name(&self) -> &str {
        "islanded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(p_delta_kw: f64) -> BusState {
        BusState {
            t: SimTime::START,
            dt: SimDuration::from_minutes(15.0),
            p_delta: Power::from_kw(p_delta_kw),
            soc: 0.5,
            capacity: Energy::from_kwh(100.0),
        }
    }

    #[test]
    fn self_consumption_passes_delta_through() {
        let mut p = SelfConsumption::default();
        assert_eq!(p.storage_request(&state(42.0)).kw(), 42.0);
        assert_eq!(p.storage_request(&state(-17.0)).kw(), -17.0);
        assert!(p.grid_import_limit(&state(0.0)).is_none());
        assert_eq!(p.name(), "self-consumption");
    }

    #[test]
    fn islanded_blocks_grid_import() {
        let mut p = Islanded::default();
        assert_eq!(p.grid_import_limit(&state(-10.0)), Some(Power::ZERO));
        assert_eq!(p.storage_request(&state(-10.0)).kw(), -10.0);
        assert_eq!(p.name(), "islanded");
    }
}

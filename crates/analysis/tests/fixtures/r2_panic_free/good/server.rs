// mgopt-lint-fixture: role=server
pub fn handle(frames: &[u8]) -> Option<u8> {
    let first = frames.first().copied()?;
    Some(first)
}

pub fn split(frames: &[u8], n: usize) -> Result<(&[u8], &[u8]), String> {
    if n > frames.len() {
        return Err(format!("frame truncated at {n}"));
    }
    Ok(frames.split_at(n))
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # mgopt-weather
//!
//! Synthetic solar and wind resource data — the workspace's substitute for
//! the NREL National Solar Radiation Database (NSRDB) and WIND Toolkit used
//! by the paper.
//!
//! The pipeline mirrors how measured weather files are produced and consumed:
//!
//! 1. deterministic **solar geometry** ([`solar_pos`]) and a **clear-sky
//!    model** ([`clearsky`]) give the cloud-free irradiance envelope;
//! 2. a seeded stochastic **cloud process** ([`cloud`]) yields an hourly
//!    clear-sky index with realistic multi-day overcast spells;
//! 3. the product is **decomposed** ([`decomposition`]) into DNI/DHI exactly
//!    like ground-station pipelines do (Erbs);
//! 4. **wind speeds** ([`wind`]) come from a translated-Gaussian process
//!    with the site's Weibull marginal, seasonal and diurnal structure;
//! 5. **temperature** ([`temperature`]) and site pressure complete the
//!    records the SAM-style performance models need.
//!
//! Everything is deterministic given a [`Climate`] and a seed.

pub mod clearsky;
pub mod climate;
pub mod cloud;
pub mod decomposition;
pub mod io;
pub mod location;
pub mod math;
pub mod solar_pos;
pub mod temperature;
pub mod wind;

use mgopt_units::{SimDuration, SimTime, TimeSeries, SECONDS_PER_YEAR};
use serde::{Deserialize, Serialize};

pub use climate::Climate;
pub use location::Location;

/// One synthesized weather year for a site, at a fixed step.
///
/// Irradiance series are in W/m², temperature in °C, wind speed in m/s at
/// the climatology's reference height, pressure in Pa.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeatherYear {
    /// The site this weather belongs to.
    pub location: Location,
    /// Global horizontal irradiance, W/m².
    pub ghi: TimeSeries,
    /// Direct normal irradiance, W/m².
    pub dni: TimeSeries,
    /// Diffuse horizontal irradiance, W/m².
    pub dhi: TimeSeries,
    /// Ambient air temperature, °C.
    pub temp_air_c: TimeSeries,
    /// Wind speed at `wind_ref_height_m`, m/s.
    pub wind_speed_ms: TimeSeries,
    /// Height the wind series refers to, meters.
    pub wind_ref_height_m: f64,
    /// Power-law shear exponent for height extrapolation.
    pub wind_shear_exponent: f64,
    /// Site air pressure, Pa (constant barometric value).
    pub pressure_pa: f64,
}

impl WeatherYear {
    /// Step size shared by all series.
    pub fn step(&self) -> SimDuration {
        self.ghi.step()
    }

    /// Number of samples per series.
    pub fn len(&self) -> usize {
        self.ghi.len()
    }

    /// `true` if the year holds no samples (cannot happen by construction).
    pub fn is_empty(&self) -> bool {
        self.ghi.is_empty()
    }
}

/// Barometric pressure at an elevation (standard atmosphere), Pa.
pub fn pressure_at_elevation_pa(elevation_m: f64) -> f64 {
    101_325.0 * (1.0 - 2.255_77e-5 * elevation_m).powf(5.255_88)
}

/// Top-level generator: one [`Climate`] + seed → [`WeatherYear`].
#[derive(Debug, Clone)]
pub struct WeatherGenerator {
    climate: Climate,
    seed: u64,
}

impl WeatherGenerator {
    /// Create a generator for a site climatology.
    pub fn new(climate: Climate, seed: u64) -> Self {
        Self { climate, seed }
    }

    /// The climatology driving this generator.
    pub fn climate(&self) -> &Climate {
        &self.climate
    }

    /// Synthesize a full year at the given step.
    ///
    /// The cloud process always runs at hourly resolution (clouds do not
    /// need sub-hourly regime switches); irradiance, temperature and wind
    /// are produced at the requested step.
    ///
    /// # Panics
    /// Panics unless the step divides one hour or is a multiple of it that
    /// divides the year.
    pub fn generate(&self, step: SimDuration) -> WeatherYear {
        let step_s = step.secs();
        assert!(
            step_s > 0
                && (3_600 % step_s == 0 || (step_s % 3_600 == 0 && SECONDS_PER_YEAR % step_s == 0)),
            "weather step must divide an hour or be a whole number of hours"
        );
        let n = (SECONDS_PER_YEAR / step_s) as usize;

        let kci = cloud::CloudGenerator::new(self.climate.solar.clone(), self.seed).generate_year();
        let mut temp_gen =
            temperature::TemperatureGenerator::new(self.climate.temperature.clone(), self.seed);
        let mut wind_gen = wind::WindGenerator::new(self.climate.wind.clone(), self.seed, step_s);

        let mut ghi = Vec::with_capacity(n);
        let mut dni = Vec::with_capacity(n);
        let mut dhi = Vec::with_capacity(n);
        let mut temp = Vec::with_capacity(n);
        let mut wind_v = Vec::with_capacity(n);

        for i in 0..n {
            let t = SimTime::from_secs(i as i64 * step_s);
            let hour_idx = (t.secs() / 3_600) as usize % kci.len();

            let pos = solar_pos::sun_position(&self.climate.location, t);
            let cs = clearsky::clearsky_ghi_from_position(&pos);
            let g = cs * kci[hour_idx];

            let ext = solar_pos::extraterrestrial_normal_w_m2(t.calendar().day_of_year)
                * pos.cos_zenith();
            let kt = if ext > 1.0 {
                (g / ext).clamp(0.0, 1.1)
            } else {
                0.0
            };
            let comps = decomposition::decompose(g, kt, pos.cos_zenith());

            ghi.push(comps.ghi);
            dni.push(comps.dni);
            dhi.push(comps.dhi);
            temp.push(temp_gen.step(t));
            wind_v.push(wind_gen.step(t));
        }

        WeatherYear {
            location: self.climate.location.clone(),
            ghi: TimeSeries::new(step, ghi),
            dni: TimeSeries::new(step, dni),
            dhi: TimeSeries::new(step, dhi),
            temp_air_c: TimeSeries::new(step, temp),
            wind_speed_ms: TimeSeries::new(step, wind_v),
            wind_ref_height_m: self.climate.wind.ref_height_m,
            wind_shear_exponent: self.climate.wind.shear_exponent,
            pressure_pa: pressure_at_elevation_pa(self.climate.location.elevation_m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgopt_units::stats;

    fn berkeley_year() -> WeatherYear {
        WeatherGenerator::new(Climate::berkeley(), 42).generate(SimDuration::from_hours(1.0))
    }

    fn houston_year() -> WeatherYear {
        WeatherGenerator::new(Climate::houston(), 42).generate(SimDuration::from_hours(1.0))
    }

    #[test]
    fn hourly_year_has_8760_samples() {
        let w = berkeley_year();
        assert_eq!(w.len(), 8_760);
        assert_eq!(w.step(), SimDuration::from_hours(1.0));
        assert_eq!(w.ghi.len(), w.wind_speed_ms.len());
    }

    #[test]
    fn subhourly_generation_works() {
        let w =
            WeatherGenerator::new(Climate::berkeley(), 1).generate(SimDuration::from_minutes(15.0));
        assert_eq!(w.len(), 4 * 8_760);
    }

    #[test]
    #[should_panic(expected = "weather step")]
    fn incompatible_step_panics() {
        WeatherGenerator::new(Climate::berkeley(), 1).generate(SimDuration::from_secs(7_000));
    }

    #[test]
    fn irradiance_physical_bounds() {
        let w = houston_year();
        for (i, (&g, (&b, &d))) in w
            .ghi
            .values()
            .iter()
            .zip(w.dni.values().iter().zip(w.dhi.values()))
            .enumerate()
        {
            assert!((0.0..1_300.0).contains(&g), "sample {i}: ghi {g}");
            assert!((0.0..=1_100.0).contains(&b), "sample {i}: dni {b}");
            assert!(d >= 0.0 && d <= g + 1e-9, "sample {i}: dhi {d} > ghi {g}");
        }
    }

    #[test]
    fn nights_are_dark() {
        let w = berkeley_year();
        // 03:00 local on ten sampled days.
        for day in (0..365).step_by(37) {
            let idx = day * 24 + 3;
            assert_eq!(w.ghi.values()[idx], 0.0, "day {day} 03:00 not dark");
        }
    }

    #[test]
    fn annual_insolation_site_contrast() {
        let b = berkeley_year();
        let h = houston_year();
        // kWh/m²/yr
        let b_insol = b.ghi.energy_kwh() / 1_000.0;
        let h_insol = h.ghi.energy_kwh() / 1_000.0;
        // Plausible ranges for the two climates.
        assert!((1_500.0..2_200.0).contains(&b_insol), "berkeley {b_insol}");
        assert!((1_300.0..2_000.0).contains(&h_insol), "houston {h_insol}");
        assert!(b_insol > h_insol, "berkeley should out-sun houston");
    }

    #[test]
    fn wind_site_contrast() {
        let b = berkeley_year();
        let h = houston_year();
        let bm = stats::mean(b.wind_speed_ms.values());
        let hm = stats::mean(h.wind_speed_ms.values());
        assert!(hm > 5.8, "houston mean wind {hm}");
        assert!(bm < 5.8, "berkeley mean wind {bm}");
        assert!(hm - bm > 1.2);
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let a = WeatherGenerator::new(Climate::houston(), 7).generate(SimDuration::from_hours(1.0));
        let b = WeatherGenerator::new(Climate::houston(), 7).generate(SimDuration::from_hours(1.0));
        let c = WeatherGenerator::new(Climate::houston(), 8).generate(SimDuration::from_hours(1.0));
        assert_eq!(a, b);
        assert_ne!(a.ghi, c.ghi);
        assert_ne!(a.wind_speed_ms, c.wind_speed_ms);
    }

    #[test]
    fn pressure_decreases_with_elevation() {
        assert!(pressure_at_elevation_pa(0.0) > pressure_at_elevation_pa(1_000.0));
        assert!((pressure_at_elevation_pa(0.0) - 101_325.0).abs() < 1.0);
        // Denver-ish
        let p1600 = pressure_at_elevation_pa(1_600.0);
        assert!((82_000.0..85_000.0).contains(&p1600), "p(1600m) = {p1600}");
    }

    #[test]
    fn temperature_seasonal_shape() {
        let h = houston_year();
        let july: f64 = stats::mean(&h.temp_air_c.values()[181 * 24..212 * 24]);
        let jan: f64 = stats::mean(&h.temp_air_c.values()[0..31 * 24]);
        assert!(july > jan + 10.0, "july {july} vs jan {jan}");
    }
}

//! §4.4 reproduction at integration level: NSGA-II recovers most of the
//! true Pareto front with a fraction of the simulations.

use microgrid_opt::core::experiments::search;
use microgrid_opt::optimizer::pareto::recovery_fraction;
use microgrid_opt::prelude::*;

fn reduced_scenario(seed: u64) -> PreparedScenario {
    ScenarioConfig {
        seed,
        space: CompositionSpace {
            wind_choices: (0..=6).collect(),
            solar_choices_kw: (0..=6).map(|i| i as f64 * 6_000.0).collect(),
            battery_choices_kwh: (0..=4).map(|i| i as f64 * 15_000.0).collect(),
        },
        ..ScenarioConfig::paper_houston()
    }
    .prepare()
}

#[test]
fn nsga2_recovers_majority_of_front_with_fewer_evaluations() {
    let scenario = reduced_scenario(42);
    let out = search::run_with_config(
        &scenario,
        Nsga2Config {
            population_size: 30,
            max_trials: 150,
            seed: 42,
            ..Nsga2Config::default()
        },
    );
    assert_eq!(out.space_size, 7 * 7 * 5);
    assert!(out.nsga2_unique < out.space_size, "must not enumerate");
    assert!(
        out.recovery >= 0.55,
        "recovery {:.2} (found {}/{})",
        out.recovery,
        out.found_front_size,
        out.true_front_size
    );
    assert!(out.speedup_by_evaluations > 1.5);
}

#[test]
fn nsga2_beats_random_search_at_equal_budget() {
    // Single-seed comparisons are noisy on a 245-point space; average the
    // recovery over three seeds per sampler.
    let scenario = reduced_scenario(7);
    let problem = CompositionProblem::new(&scenario, ObjectiveSet::paper());

    let truth = Study::new(Sampler::Exhaustive).optimize(&problem);
    let true_front = truth.pareto_front();

    let budget = 120;
    let mut r_nsga = 0.0;
    let mut r_random = 0.0;
    for seed in [1, 2, 3] {
        let nsga = Study::new(Sampler::Nsga2(Nsga2Config {
            population_size: 24,
            max_trials: budget,
            seed,
            ..Nsga2Config::default()
        }))
        .optimize(&problem);
        r_nsga += recovery_fraction(&nsga.history, &true_front);
        let random = Study::new(Sampler::Random {
            n_trials: budget,
            seed,
        })
        .optimize(&problem);
        r_random += recovery_fraction(&random.history, &true_front);
    }
    assert!(
        r_nsga >= r_random,
        "NSGA-II (mean {:.2}) should match or beat random ({:.2}) at {budget} trials",
        r_nsga / 3.0,
        r_random / 3.0
    );
}

#[test]
fn search_outputs_are_reproducible() {
    let scenario = reduced_scenario(3);
    let cfg = Nsga2Config {
        population_size: 16,
        max_trials: 64,
        seed: 5,
        ..Nsga2Config::default()
    };
    let a = search::run_with_config(&scenario, cfg.clone());
    let b = search::run_with_config(&scenario, cfg);
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.nsga2_unique, b.nsga2_unique);
    assert_eq!(a.found_front_size, b.found_front_size);
}

#[test]
fn front_members_are_mutually_non_dominated_end_to_end() {
    let scenario = reduced_scenario(11);
    let problem = CompositionProblem::new(&scenario, ObjectiveSet::paper());
    let result = Study::new(Sampler::Nsga2(Nsga2Config {
        population_size: 20,
        max_trials: 80,
        seed: 11,
        ..Nsga2Config::default()
    }))
    .optimize(&problem);
    let front = result.pareto_front();
    assert!(!front.is_empty());
    for a in &front {
        for b in &front {
            if a.genome != b.genome {
                assert!(
                    !microgrid_opt::optimizer::dominates(&a.objectives, &b.objectives),
                    "front member dominated"
                );
            }
        }
    }
    // Every front member carries sane objective values.
    for t in &front {
        assert!(t.objectives[0] >= 0.0 && t.objectives[0].is_finite());
        assert!(t.objectives[1] >= 0.0 && t.objectives[1].is_finite());
    }
}

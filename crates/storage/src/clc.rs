//! The C/L/C tractable lithium-ion battery model.
//!
//! Kazhamiaka et al. (2019) show that lithium-ion packs can be optimized
//! against with a piecewise power envelope instead of full electrochemical
//! dynamics: terminal power is limited by a **C**onstant ceiling over most
//! of the SoC range and tapers **L**inearly near the rail (full for charge,
//! reserve for discharge), with a **C**onstant coulombic efficiency. The
//! linear taper is what reproduces the CC→CV charging behaviour of real
//! packs — near-full batteries absorb power only slowly, which matters for
//! how much surplus renewable energy a microgrid can actually capture.

use mgopt_units::{Energy, Power, SimDuration};
use serde::{Deserialize, Serialize};

use crate::Storage;

/// Parameters of the C/L/C envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClcParams {
    /// Maximum charge C-rate in the constant region (fraction of nameplate
    /// capacity per hour; 0.5 = a C/2 battery).
    pub max_charge_c_rate: f64,
    /// Maximum discharge C-rate in the constant region.
    pub max_discharge_c_rate: f64,
    /// SoC at which the charge limit starts its linear taper to zero at
    /// SoC = 1 (the CV knee).
    pub charge_taper_soc: f64,
    /// Width of the SoC band above `min_soc` over which the discharge limit
    /// tapers linearly to zero.
    pub discharge_taper_width: f64,
    /// Round-trip efficiency in `(0, 1]`, split √η per direction.
    pub round_trip_efficiency: f64,
    /// Reserve floor in `[0, 1)`.
    pub min_soc: f64,
    /// Initial state of charge in `[min_soc, 1]`.
    pub initial_soc: f64,
}

impl Default for ClcParams {
    /// Defaults modeled on an industry-scale LFP unit (Fluence
    /// Smartstack-class): C/2 power, 90 % round trip, CV knee at 80 % SoC,
    /// 10 % reserve, delivered full.
    fn default() -> Self {
        Self {
            max_charge_c_rate: 0.5,
            max_discharge_c_rate: 0.5,
            charge_taper_soc: 0.8,
            discharge_taper_width: 0.1,
            round_trip_efficiency: 0.90,
            min_soc: 0.1,
            initial_soc: 1.0,
        }
    }
}

impl ClcParams {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_charge_c_rate <= 0.0 || self.max_discharge_c_rate <= 0.0 {
            return Err("C-rates must be positive".into());
        }
        if !(0.0..1.0).contains(&self.charge_taper_soc) {
            return Err("charge_taper_soc must be in [0, 1)".into());
        }
        if self.discharge_taper_width <= 0.0 || self.discharge_taper_width >= 1.0 {
            return Err("discharge_taper_width must be in (0, 1)".into());
        }
        if !(0.0..=1.0).contains(&self.round_trip_efficiency) || self.round_trip_efficiency == 0.0 {
            return Err("round_trip_efficiency must be in (0, 1]".into());
        }
        if !(0.0..1.0).contains(&self.min_soc) {
            return Err("min_soc must be in [0, 1)".into());
        }
        if !(self.min_soc..=1.0).contains(&self.initial_soc) {
            return Err("initial_soc must be in [min_soc, 1]".into());
        }
        Ok(())
    }
}

/// The C/L/C battery.
#[derive(Debug, Clone)]
pub struct ClcBattery {
    params: ClcParams,
    capacity: Energy,
    soc: f64,
    one_way_efficiency: f64,
    charged: Energy,
    discharged: Energy,
}

impl ClcBattery {
    /// Create a battery with explicit parameters.
    ///
    /// # Panics
    /// Panics on invalid parameters or non-positive capacity.
    pub fn new(capacity: Energy, params: ClcParams) -> Self {
        assert!(capacity.kwh() > 0.0, "capacity must be positive");
        params.validate().expect("invalid C/L/C parameters");
        Self {
            one_way_efficiency: params.round_trip_efficiency.sqrt(),
            soc: params.initial_soc,
            params,
            capacity,
            charged: Energy::ZERO,
            discharged: Energy::ZERO,
        }
    }

    /// Create a battery with the default industry-scale parameters.
    pub fn with_defaults(capacity: Energy) -> Self {
        Self::new(capacity, ClcParams::default())
    }

    /// The parameter set in use.
    pub fn params(&self) -> &ClcParams {
        &self.params
    }

    /// Charge power ceiling at a given SoC (terminal side, kW).
    pub fn charge_limit_kw(&self, soc: f64) -> f64 {
        let pmax = self.params.max_charge_c_rate * self.capacity.kwh();
        if soc <= self.params.charge_taper_soc {
            pmax
        } else {
            let frac = (1.0 - soc) / (1.0 - self.params.charge_taper_soc);
            pmax * frac.clamp(0.0, 1.0)
        }
    }

    /// Discharge power ceiling at a given SoC (terminal side, kW, positive).
    pub fn discharge_limit_kw(&self, soc: f64) -> f64 {
        let pmax = self.params.max_discharge_c_rate * self.capacity.kwh();
        let taper_top = self.params.min_soc + self.params.discharge_taper_width;
        if soc >= taper_top {
            pmax
        } else {
            let frac = (soc - self.params.min_soc) / self.params.discharge_taper_width;
            pmax * frac.clamp(0.0, 1.0)
        }
    }

    /// Force the state of charge (used by tests and scenario setup).
    pub fn set_soc(&mut self, soc: f64) {
        assert!(
            (self.params.min_soc..=1.0).contains(&soc),
            "soc out of range"
        );
        self.soc = soc;
    }
}

impl Storage for ClcBattery {
    fn capacity(&self) -> Energy {
        self.capacity
    }

    fn soc(&self) -> f64 {
        self.soc
    }

    fn min_soc(&self) -> f64 {
        self.params.min_soc
    }

    fn update(&mut self, power: Power, dt: SimDuration) -> Power {
        if dt.is_zero() || power == Power::ZERO {
            return Power::ZERO;
        }
        let hours = dt.hours();
        let cap_kwh = self.capacity.kwh();
        if power.kw() > 0.0 {
            // The envelope is evaluated at the start-of-step SoC (explicit
            // Euler, like Vessim); the energy cap below prevents any
            // overshoot past SoC = 1 for large steps.
            let p = power.kw().min(self.charge_limit_kw(self.soc));
            let headroom_kwh = (1.0 - self.soc) * cap_kwh;
            let max_terminal_kwh = headroom_kwh / self.one_way_efficiency;
            let terminal_kwh = (p * hours).min(max_terminal_kwh);
            self.soc = (self.soc + terminal_kwh * self.one_way_efficiency / cap_kwh).min(1.0);
            self.charged += Energy::from_kwh(terminal_kwh);
            Power::from_kw(terminal_kwh / hours)
        } else {
            let p = (-power.kw()).min(self.discharge_limit_kw(self.soc));
            let usable_kwh = (self.soc - self.params.min_soc).max(0.0) * cap_kwh;
            let max_terminal_kwh = usable_kwh * self.one_way_efficiency;
            let terminal_kwh = (p * hours).min(max_terminal_kwh);
            self.soc = (self.soc - terminal_kwh / self.one_way_efficiency / cap_kwh)
                .max(self.params.min_soc);
            self.discharged += Energy::from_kwh(terminal_kwh);
            -Power::from_kw(terminal_kwh / hours)
        }
    }

    fn charged_total(&self) -> Energy {
        self.charged
    }

    fn discharged_total(&self) -> Energy {
        self.discharged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration(900); // 15 min

    fn battery() -> ClcBattery {
        let params = ClcParams {
            initial_soc: 0.5,
            ..ClcParams::default()
        };
        ClcBattery::new(Energy::from_kwh(1_000.0), params)
    }

    #[test]
    fn constant_region_full_power() {
        let b = battery();
        assert_eq!(b.charge_limit_kw(0.5), 500.0);
        assert_eq!(b.charge_limit_kw(0.8), 500.0);
        assert_eq!(b.discharge_limit_kw(0.5), 500.0);
        assert_eq!(b.discharge_limit_kw(0.2), 500.0);
    }

    #[test]
    fn charge_taper_linear_to_zero_at_full() {
        let b = battery();
        assert!((b.charge_limit_kw(0.9) - 250.0).abs() < 1e-9);
        assert!((b.charge_limit_kw(0.95) - 125.0).abs() < 1e-9);
        assert_eq!(b.charge_limit_kw(1.0), 0.0);
    }

    #[test]
    fn discharge_taper_linear_to_zero_at_reserve() {
        let b = battery();
        // taper band: [0.1, 0.2]
        assert!((b.discharge_limit_kw(0.15) - 250.0).abs() < 1e-9);
        assert_eq!(b.discharge_limit_kw(0.1), 0.0);
        assert_eq!(b.discharge_limit_kw(0.05), 0.0);
    }

    #[test]
    fn near_full_battery_absorbs_slowly() {
        // The CV taper means topping up the last 10% takes much longer
        // than an equivalent mid-range charge — the behaviour that limits
        // surplus-solar capture in the microgrid sim.
        let mut mid = battery();
        mid.set_soc(0.5);
        let mut high = battery();
        high.set_soc(0.92);
        let got_mid = mid.update(Power::from_kw(500.0), DT);
        let got_high = high.update(Power::from_kw(500.0), DT);
        assert!(got_high.kw() < 0.5 * got_mid.kw());
    }

    #[test]
    fn update_respects_envelope_not_just_bounds() {
        let mut b = battery();
        b.set_soc(0.9);
        let got = b.update(Power::from_kw(500.0), DT);
        assert!(
            (got.kw() - 250.0).abs() < 1e-9,
            "expected taper limit, got {}",
            got.kw()
        );
    }

    #[test]
    fn full_cycle_round_trip_efficiency() {
        let mut b = battery();
        b.set_soc(0.1);
        loop {
            if b.update(Power::from_kw(500.0), DT).kw() < 1e-7 {
                break;
            }
        }
        assert!(b.soc() > 0.999);
        let charged = b.charged_total().kwh();
        loop {
            if b.update(Power::from_kw(-500.0), DT).kw().abs() < 1e-7 {
                break;
            }
        }
        let discharged = b.discharged_total().kwh();
        assert!((discharged / charged - 0.90).abs() < 1e-3);
    }

    #[test]
    fn equivalent_full_cycles_counts_discharge() {
        let mut b = battery();
        b.set_soc(1.0);
        loop {
            if b.update(Power::from_kw(-500.0), DT).kw().abs() < 1e-7 {
                break;
            }
        }
        // 0.9 usable * sqrt(0.9) terminal
        assert!((b.equivalent_full_cycles() - 0.9 * 0.9f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn defaults_are_valid() {
        assert!(ClcParams::default().validate().is_ok());
        let b = ClcBattery::with_defaults(Energy::from_mwh(7.5));
        assert_eq!(b.soc(), 1.0);
        assert_eq!(b.capacity().mwh(), 7.5);
    }

    #[test]
    fn invalid_params_rejected() {
        let cases = [
            ClcParams {
                max_charge_c_rate: 0.0,
                ..ClcParams::default()
            },
            ClcParams {
                charge_taper_soc: 1.0,
                ..ClcParams::default()
            },
            ClcParams {
                initial_soc: 0.05, // below min_soc 0.1
                ..ClcParams::default()
            },
            ClcParams {
                round_trip_efficiency: 1.5,
                ..ClcParams::default()
            },
        ];
        for p in cases {
            assert!(p.validate().is_err());
        }
    }

    #[test]
    #[should_panic(expected = "invalid C/L/C parameters")]
    fn constructor_panics_on_invalid() {
        let p = ClcParams {
            discharge_taper_width: 0.0,
            ..ClcParams::default()
        };
        ClcBattery::new(Energy::from_kwh(10.0), p);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn soc_always_within_rails(
            requests in prop::collection::vec(-2_000.0f64..2_000.0, 1..300),
        ) {
            let mut b = ClcBattery::new(
                Energy::from_kwh(1_000.0),
                ClcParams { initial_soc: 0.5, ..ClcParams::default() },
            );
            let dt = SimDuration::from_minutes(15.0);
            for r in requests {
                b.update(Power::from_kw(r), dt);
                prop_assert!(b.soc() >= b.min_soc() - 1e-9);
                prop_assert!(b.soc() <= 1.0 + 1e-9);
            }
        }

        #[test]
        fn actual_never_exceeds_request_or_envelope(
            r in -2_000.0f64..2_000.0,
            soc in 0.1f64..1.0,
        ) {
            let mut b = ClcBattery::new(
                Energy::from_kwh(1_000.0),
                ClcParams { initial_soc: 1.0, ..ClcParams::default() },
            );
            b.set_soc(soc);
            let limit = if r > 0.0 { b.charge_limit_kw(soc) } else { b.discharge_limit_kw(soc) };
            let actual = b.update(Power::from_kw(r), SimDuration::from_minutes(15.0));
            prop_assert!(actual.kw().abs() <= r.abs() + 1e-9);
            prop_assert!(actual.kw().abs() <= limit + 1e-9);
        }

        #[test]
        fn energy_conservation_clc(
            requests in prop::collection::vec(-1_000.0f64..1_000.0, 1..150),
        ) {
            let mut b = ClcBattery::new(
                Energy::from_kwh(500.0),
                ClcParams { initial_soc: 0.6, ..ClcParams::default() },
            );
            let initial = b.stored().kwh();
            let eta = 0.9f64.sqrt();
            for r in requests {
                b.update(Power::from_kw(r), SimDuration::from_minutes(30.0));
            }
            let expected = initial + b.charged_total().kwh() * eta - b.discharged_total().kwh() / eta;
            prop_assert!((b.stored().kwh() - expected).abs() < 1e-6);
        }
    }
}

// mgopt-lint-fixture: crate=microgrid
use std::collections::HashMap;

pub fn step_millis() -> u128 {
    let started = std::time::Instant::now();
    let mut seen = HashMap::new();
    seen.insert("a", thread_rng().gen::<u32>());
    started.elapsed().as_millis()
}

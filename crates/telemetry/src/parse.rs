//! Parser for the flat JSONL events this crate emits.
//!
//! `trace_report` (in `mgopt-bench`) reads traces back through this
//! module, so the writer in [`crate::event`] and this reader form one
//! round-trippable pair that lives — and is tested — in the same crate.
//! The grammar is deliberately the subset the writer produces: one
//! single-level JSON object per line whose values are strings, numbers,
//! booleans or `null`. Nested objects/arrays are a parse error.

use std::collections::BTreeMap;

/// A scalar field value in a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// JSON string.
    Str(String),
    /// JSON number (all numbers parse as f64; trace integers are exact
    /// well within f64's 2^53 integer range).
    Num(f64),
    /// JSON boolean.
    Bool(bool),
    /// JSON null (e.g. a non-finite float at write time).
    Null,
}

impl FieldValue {
    /// The number, if this is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::Num(n) if n.fract() == 0.0 && (0.0..9.0e15).contains(n) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One parsed trace event: its kind plus the remaining fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The event kind (the `ev` field).
    pub kind: String,
    /// Milliseconds since trace epoch (the `t_ms` field).
    pub t_ms: f64,
    /// All other fields, keyed by name.
    pub fields: BTreeMap<String, FieldValue>,
}

impl TraceEvent {
    /// Numeric field accessor.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.fields.get(key).and_then(FieldValue::as_f64)
    }

    /// Unsigned-integer field accessor.
    pub fn uint(&self, key: &str) -> Option<u64> {
        self.fields.get(key).and_then(FieldValue::as_u64)
    }

    /// String field accessor.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(FieldValue::as_str)
    }
}

/// Parse one JSONL line into a [`TraceEvent`].
///
/// Errors carry enough context to point at the offending line content;
/// `trace_report --check` surfaces them with line numbers.
pub fn parse_line(line: &str) -> Result<TraceEvent, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut kind = None;
    let mut t_ms = None;
    let mut fields = BTreeMap::new();
    p.skip_ws();
    if !p.eat(b'}') {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            match key.as_str() {
                "ev" => match value {
                    FieldValue::Str(s) => kind = Some(s),
                    other => return Err(format!("`ev` must be a string, got {other:?}")),
                },
                "t_ms" => match value {
                    FieldValue::Num(n) => t_ms = Some(n),
                    other => return Err(format!("`t_ms` must be a number, got {other:?}")),
                },
                _ => {
                    fields.insert(key, value);
                }
            }
            p.skip_ws();
            if p.eat(b',') {
                continue;
            }
            p.expect(b'}')?;
            break;
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(TraceEvent {
        kind: kind.ok_or("missing `ev` field")?,
        t_ms: t_ms.ok_or("missing `t_ms` field")?,
        fields,
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} of {:?}",
                b as char,
                self.pos,
                String::from_utf8_lossy(self.bytes)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&lead) => {
                    // Consume one UTF-8 scalar. The input came in as a
                    // &str so boundaries should be valid, but decode
                    // defensively: a malformed sequence is a parse error,
                    // not UB.
                    let len = match lead {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let c = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| "invalid UTF-8 in string")?
                        .chars()
                        .next()
                        .ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Result<FieldValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'"') => self.string().map(FieldValue::Str),
            Some(b't') => self.literal("true").map(|()| FieldValue::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| FieldValue::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| FieldValue::Null),
            Some(b'{') | Some(b'[') => {
                Err("nested objects/arrays are not valid flat trace values".into())
            }
            Some(_) => self.number(),
            None => Err("unexpected end of line".into()),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected literal `{lit}` at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<FieldValue, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(FieldValue::Num)
            .map_err(|_| format!("invalid number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_written_event() {
        // Hand-built line matching what the writer emits.
        let line = r#"{"ev":"batch_eval","t_ms":12.5,"candidates":63,"label":"a\"b","ok":true,"nan":null}"#;
        let ev = parse_line(line).unwrap();
        assert_eq!(ev.kind, "batch_eval");
        assert_eq!(ev.t_ms, 12.5);
        assert_eq!(ev.uint("candidates"), Some(63));
        assert_eq!(ev.str("label"), Some("a\"b"));
        assert_eq!(ev.fields.get("ok"), Some(&FieldValue::Bool(true)));
        assert_eq!(ev.fields.get("nan"), Some(&FieldValue::Null));
    }

    #[test]
    fn rejects_missing_required_fields() {
        assert!(parse_line(r#"{"t_ms":1}"#).unwrap_err().contains("ev"));
        assert!(parse_line(r#"{"ev":"x"}"#).unwrap_err().contains("t_ms"));
    }

    #[test]
    fn rejects_nested_and_trailing_garbage() {
        assert!(parse_line(r#"{"ev":"x","t_ms":1,"o":{}}"#).is_err());
        assert!(parse_line(r#"{"ev":"x","t_ms":1} extra"#).is_err());
        assert!(parse_line("not json").is_err());
    }

    #[test]
    fn parses_scientific_and_negative_numbers() {
        let ev = parse_line(r#"{"ev":"x","t_ms":1e-3,"v":-2.5E2}"#).unwrap();
        assert_eq!(ev.t_ms, 1e-3);
        assert_eq!(ev.num("v"), Some(-250.0));
    }

    #[test]
    fn unicode_escapes_and_raw_utf8_decode() {
        let ev = parse_line("{\"ev\":\"x\",\"t_ms\":0,\"s\":\"a\\u0041\\u00e9é\"}").unwrap();
        assert_eq!(ev.str("s"), Some("aAéé"));
    }
}

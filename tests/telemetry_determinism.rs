//! The observability layer must be an observer, not a participant: an
//! enabled `MGOPT_TRACE` sink may not perturb search or simulation
//! results (trial histories, fronts and [`AnnualMetrics`] bit-identical
//! with tracing on and off), and the disabled path may not record
//! anything at all — zero events, counters and span aggregates at their
//! startup values.

use std::sync::Mutex;

use microgrid_opt::optimizer::OptimizationResult;
use microgrid_opt::prelude::*;
use microgrid_opt::telemetry::{self, MemorySink};

/// Telemetry state is process-global; serialize the tests that flip it.
static TELEMETRY: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TELEMETRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// A 3×3×2 space at the paper's Houston site: big enough for real batch
/// chunks and cache hits, small enough for a fast full-year search.
fn tiny_scenario() -> PreparedScenario {
    ScenarioConfig {
        space: CompositionSpace {
            wind_choices: vec![0, 2, 4],
            solar_choices_kw: vec![0.0, 12_000.0, 24_000.0],
            battery_choices_kwh: vec![0.0, 30_000.0],
        },
        ..ScenarioConfig::paper_houston()
    }
    .prepare()
}

fn run_search(scenario: &PreparedScenario) -> OptimizationResult {
    let problem = CompositionProblem::new(scenario, ObjectiveSet::paper());
    Study::new(Sampler::Nsga2(Nsga2Config {
        population_size: 12,
        max_trials: 48,
        seed: 9,
        ..Nsga2Config::default()
    }))
    .optimize(&problem)
}

fn batch_metrics(scenario: &PreparedScenario) -> Vec<microgrid_opt::microgrid::AnnualMetrics> {
    let comps: Vec<Composition> = scenario.config.space.iter().collect();
    simulate_batch(&scenario.data, &scenario.load, &comps, &scenario.config.sim)
        .into_iter()
        .map(|r| r.metrics)
        .collect()
}

#[test]
fn enabled_trace_does_not_perturb_results() {
    let _guard = lock();
    let scenario = tiny_scenario();

    // Baseline: collection off.
    telemetry::set_enabled(false);
    telemetry::reset_stats();
    let off = run_search(&scenario);
    let metrics_off = batch_metrics(&scenario);

    // Identical work traced into a memory sink.
    let (sink, lines) = MemorySink::new();
    telemetry::install_sink(Box::new(sink));
    telemetry::set_enabled(true);
    let on = run_search(&scenario);
    let metrics_on = batch_metrics(&scenario);
    telemetry::set_enabled(false);
    telemetry::take_sink();

    assert_eq!(
        off.history, on.history,
        "enabled trace perturbed the trial history"
    );
    assert_eq!(off.pareto_front(), on.pareto_front());
    assert_eq!(off.unique_evaluations, on.unique_evaluations);
    assert_eq!(
        metrics_off, metrics_on,
        "enabled trace perturbed AnnualMetrics"
    );

    // The traced run must actually have produced a structured trace, and
    // every captured line must parse as a flat JSONL event.
    let captured = lines.lock().unwrap();
    assert!(!captured.is_empty(), "enabled sink captured no events");
    for line in captured.iter() {
        let ev = telemetry::parse::parse_line(line)
            .unwrap_or_else(|e| panic!("captured event does not parse ({e}): {line}"));
        assert!(ev.t_ms >= 0.0);
    }
    for kind in ["\"ev\":\"generation\"", "\"ev\":\"batch_eval\""] {
        assert!(
            captured.iter().any(|l| l.contains(kind)),
            "no {kind} event in the captured trace"
        );
    }
}

#[test]
fn disabled_path_records_nothing() {
    let _guard = lock();
    telemetry::set_enabled(false);
    telemetry::reset_stats();
    let (sink, lines) = MemorySink::new();
    telemetry::install_sink(Box::new(sink));

    let scenario = tiny_scenario();
    let result = run_search(&scenario);
    let _ = batch_metrics(&scenario);
    assert!(!result.history.is_empty());

    telemetry::take_sink();
    assert!(
        lines.lock().unwrap().is_empty(),
        "disabled path emitted events"
    );
    for (name, value) in telemetry::counters() {
        assert_eq!(value, 0, "counter `{name}` advanced while disabled");
    }
    for stage in telemetry::stage_totals() {
        assert_eq!(
            stage.calls, 0,
            "stage `{}` recorded spans while disabled",
            stage.name
        );
        assert_eq!(stage.total_ms, 0.0);
    }
}

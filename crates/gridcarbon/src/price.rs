//! Electricity price signals for the cost-reduction objective (§4.3).
//!
//! Two tariff families:
//! * [`TariffKind::TimeOfUse`] — a fixed three-tier schedule (off-peak /
//!   mid-peak / on-peak) like a commercial CAISO tariff;
//! * [`TariffKind::Wholesale`] — volatile ERCOT-style real-time prices with
//!   AR(1) noise and occasional scarcity spikes.

use mgopt_units::{SimDuration, SimTime, TimeSeries, SECONDS_PER_YEAR};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Tariff family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TariffKind {
    /// Deterministic time-of-use schedule.
    TimeOfUse,
    /// Stochastic wholesale real-time prices.
    Wholesale,
}

/// Electricity price model, $/MWh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceModel {
    /// Tariff family.
    pub kind: TariffKind,
    /// Mean price, $/MWh.
    pub mean_usd_per_mwh: f64,
    /// Off-peak multiplier (TOU) / trough factor (wholesale).
    pub offpeak_factor: f64,
    /// On-peak multiplier.
    pub onpeak_factor: f64,
    /// On-peak hours `[start, end)` local time.
    pub onpeak_hours: (u32, u32),
    /// Wholesale only: probability per hour of a scarcity spike.
    pub spike_probability: f64,
    /// Wholesale only: spike multiplier on the mean price.
    pub spike_factor: f64,
    /// Wholesale only: relative AR(1) noise std.
    pub noise_std: f64,
}

impl PriceModel {
    /// CAISO-style commercial TOU tariff.
    pub fn caiso_tou() -> Self {
        Self {
            kind: TariffKind::TimeOfUse,
            mean_usd_per_mwh: 150.0,
            offpeak_factor: 0.6,
            onpeak_factor: 1.9,
            onpeak_hours: (16, 21),
            spike_probability: 0.0,
            spike_factor: 1.0,
            noise_std: 0.0,
        }
    }

    /// ERCOT-style volatile wholesale prices.
    pub fn ercot_wholesale() -> Self {
        Self {
            kind: TariffKind::Wholesale,
            mean_usd_per_mwh: 45.0,
            offpeak_factor: 0.5,
            onpeak_factor: 1.6,
            onpeak_hours: (13, 19),
            spike_probability: 0.004, // ~35 spike hours/year
            spike_factor: 40.0,       // $1800/MWh scarcity events
            noise_std: 0.25,
        }
    }

    /// Deterministic tariff value at an instant (no noise/spikes).
    pub fn base_price(&self, t: SimTime) -> f64 {
        let cal = t.calendar();
        let h = cal.hour;
        let (start, end) = self.onpeak_hours;
        let factor = if h >= start && h < end {
            self.onpeak_factor
        } else if !(6..22).contains(&h) {
            self.offpeak_factor
        } else {
            1.0
        };
        self.mean_usd_per_mwh * factor
    }

    /// Generate a year of prices ($/MWh) at the given step.
    pub fn generate(&self, step: SimDuration, seed: u64) -> TimeSeries {
        let step_s = step.secs();
        assert!(
            step_s > 0 && SECONDS_PER_YEAR % step_s == 0,
            "step must divide the year"
        );
        let n = (SECONDS_PER_YEAR / step_s) as usize;
        let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x9e1c_e000);
        let steps_per_hour = 3_600.0 / step_s as f64;
        let rho = (-1.0 / (4.0 * steps_per_hour)).exp();
        let innovation = (1.0 - rho * rho).sqrt();
        let mut g = 0.0f64;

        let values = (0..n)
            .map(|i| {
                let t = SimTime::from_secs(i as i64 * step_s);
                let base = self.base_price(t);
                match self.kind {
                    TariffKind::TimeOfUse => base,
                    TariffKind::Wholesale => {
                        let u1: f64 = rng.gen_range(1e-12..1.0);
                        let u2: f64 = rng.gen();
                        let eps = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                        g = rho * g + innovation * eps;
                        let spike: f64 = rng.gen();
                        let spike_mul = if spike < self.spike_probability / steps_per_hour {
                            self.spike_factor
                        } else {
                            1.0
                        };
                        (base * (1.0 + self.noise_std * g) * spike_mul).max(0.0)
                    }
                }
            })
            .collect();
        TimeSeries::new(step, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tou_schedule_tiers() {
        let m = PriceModel::caiso_tou();
        // 03:00 off-peak, 12:00 mid, 18:00 on-peak.
        let off = m.base_price(SimTime::from_secs(3 * 3_600));
        let mid = m.base_price(SimTime::from_secs(12 * 3_600));
        let on = m.base_price(SimTime::from_secs(18 * 3_600));
        assert!(off < mid && mid < on);
        assert_eq!(off, 150.0 * 0.6);
        assert_eq!(on, 150.0 * 1.9);
    }

    #[test]
    fn tou_generation_is_deterministic() {
        let m = PriceModel::caiso_tou();
        let a = m.generate(SimDuration::from_hours(1.0), 1);
        let b = m.generate(SimDuration::from_hours(1.0), 99);
        assert_eq!(a, b, "TOU has no stochastic component");
        assert_eq!(a.len(), 8_760);
    }

    #[test]
    fn wholesale_has_spikes() {
        let m = PriceModel::ercot_wholesale();
        let ts = m.generate(SimDuration::from_hours(1.0), 3);
        let max = ts.max();
        assert!(max > 500.0, "expected scarcity spikes, max {max}");
        let spikes = ts.values().iter().filter(|&&p| p > 500.0).count();
        assert!((5..200).contains(&spikes), "{spikes} spike hours");
    }

    #[test]
    fn wholesale_mean_near_target() {
        let m = PriceModel::ercot_wholesale();
        let ts = m.generate(SimDuration::from_hours(1.0), 4);
        // Spikes push mean a bit above base; allow generous band.
        assert!((30.0..90.0).contains(&ts.mean()), "mean {}", ts.mean());
    }

    #[test]
    fn prices_nonnegative() {
        let ts = PriceModel::ercot_wholesale().generate(SimDuration::from_hours(1.0), 5);
        assert!(ts.min() >= 0.0);
    }

    #[test]
    fn wholesale_deterministic_per_seed() {
        let m = PriceModel::ercot_wholesale();
        assert_eq!(
            m.generate(SimDuration::from_hours(1.0), 6),
            m.generate(SimDuration::from_hours(1.0), 6)
        );
        assert_ne!(
            m.generate(SimDuration::from_hours(1.0), 6),
            m.generate(SimDuration::from_hours(1.0), 7)
        );
    }
}

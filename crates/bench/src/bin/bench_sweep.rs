//! Emit `BENCH_sweep.json`: wall-clock of the full 1,089-candidate
//! exhaustive sweep through the scalar rayon engine and the batched
//! columnar engine, plus the agreement check between them.
//!
//! ```text
//! cargo run --release -p mgopt-bench --bin bench_sweep
//! ```
//!
//! Writes the artifact to the repository root (next to `ROADMAP.md`), and
//! prints the same numbers to stdout. `MGOPT_FAST=1` shrinks the space for
//! smoke runs (the artifact then records the reduced size).

use std::path::PathBuf;
use std::time::Instant;

use mgopt_core::{sweep_all, sweep_all_scalar};
use serde::Serialize;

/// The artifact schema.
#[derive(Debug, Serialize)]
struct SweepBench {
    site: String,
    compositions: usize,
    steps_per_year: usize,
    samples: usize,
    scalar_ms_median: f64,
    batched_ms_median: f64,
    speedup: f64,
    max_rel_error: f64,
    threads: usize,
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

fn main() {
    let scenario = mgopt_bench::houston();
    let compositions = scenario.config.space.len();
    let samples = 5usize;

    // Warm-up + agreement check: the shared symmetric tolerance over
    // every metrics field (not an argument-order-dependent subset).
    let scalar_results = sweep_all_scalar(&scenario);
    let batched_results = sweep_all(&scenario);
    let mut max_rel_error = 0.0f64;
    for (s, b) in scalar_results.iter().zip(&batched_results) {
        assert_eq!(s.composition, b.composition);
        let err = s.metrics.max_rel_error(&b.metrics).0;
        // Propagate NaN explicitly — f64::max would silently drop it and
        // let a broken engine record perfect agreement.
        if err.is_nan() || err > max_rel_error {
            max_rel_error = err;
        }
    }
    assert!(
        max_rel_error <= 1e-9,
        "engines disagree: max relative error {max_rel_error:e}"
    );

    let mut scalar_ms = Vec::with_capacity(samples);
    let mut batched_ms = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(sweep_all_scalar(&scenario));
        scalar_ms.push(t0.elapsed().as_secs_f64() * 1e3);

        let t0 = Instant::now();
        std::hint::black_box(sweep_all(&scenario));
        batched_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }

    let scalar_med = median_ms(&mut scalar_ms);
    let batched_med = median_ms(&mut batched_ms);
    let bench = SweepBench {
        site: scenario.site_name().to_string(),
        compositions,
        steps_per_year: scenario.data.len(),
        samples,
        scalar_ms_median: scalar_med,
        batched_ms_median: batched_med,
        speedup: scalar_med / batched_med,
        max_rel_error,
        // The pool size parallel calls actually use — `unwrap_or(1)` over
        // core detection used to mislabel entries on multi-core hosts
        // whenever detection failed.
        threads: rayon::current_num_threads(),
    };

    println!(
        "sweep of {} compositions ({} steps): scalar {:.1} ms, batched {:.1} ms, speedup {:.2}x",
        bench.compositions, bench.steps_per_year, scalar_med, batched_med, bench.speedup
    );

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench artifact");
    std::fs::write(&path, json + "\n").expect("write BENCH_sweep.json");
    println!("[artifact] {}", path.display());
}

//! `mgopt_lint` — run the workspace invariant rules (see
//! `mgopt_analysis` for the registry).
//!
//! ```text
//! mgopt_lint [--root DIR] [--json]      lint the workspace (default mode)
//! mgopt_lint --dir DIR [--json]         lint one directory as a fixture set
//! mgopt_lint --self-test [--fixtures DIR]
//!                                       every rule fires on its bad fixture,
//!                                       stays quiet on its good one
//! ```
//!
//! Exit codes: 0 clean, 1 violations (or self-test failure), 2 usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    json: bool,
    root: PathBuf,
    dir: Option<PathBuf>,
    self_test: bool,
    fixtures: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: mgopt_lint [--root DIR] [--json]\n\
     \x20      mgopt_lint --dir DIR [--json]\n\
     \x20      mgopt_lint --self-test [--fixtures DIR]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        root: PathBuf::from("."),
        dir: None,
        self_test: false,
        fixtures: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--self-test" => args.self_test = true,
            "--root" => args.root = next_path(&mut it, "--root")?,
            "--dir" => args.dir = Some(next_path(&mut it, "--dir")?),
            "--fixtures" => args.fixtures = Some(next_path(&mut it, "--fixtures")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn next_path(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("mgopt_lint: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.self_test {
        let fixtures = args
            .fixtures
            .unwrap_or_else(|| args.root.join("crates/analysis/tests/fixtures"));
        return match mgopt_analysis::self_test(&fixtures) {
            Ok(log) => {
                print!("{log}");
                println!("self-test OK");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("self-test FAILED: {msg}");
                ExitCode::from(1)
            }
        };
    }

    let report = match &args.dir {
        Some(dir) => mgopt_analysis::lint_dir(dir),
        None => mgopt_analysis::lint_workspace(&args.root),
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mgopt_lint: cannot read sources: {e}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

//! Golden-fixture pinning of the on-wire bytes.
//!
//! `tests/fixtures/wire/{requests,responses}.jsonl` hold one committed
//! frame per line, covering every request and response variant. Each
//! line must decode through the real parser and re-encode **byte for
//! byte** — so any drift in field names, field order, number formatting,
//! or enum tagging shows up as a fixture diff, which is exactly when
//! `WIRE_VERSION` must be bumped (see `core::wire`'s versioning rule).
//!
//! To regenerate after an intentional protocol change:
//!
//! ```text
//! MGOPT_BLESS=1 cargo test --test wire_golden
//! ```
//!
//! then commit the updated fixtures together with the version bump.

use std::fs;
use std::path::PathBuf;

use microgrid_opt::core::wire::{
    encode_request, encode_response, parse_request, ErrorCode, FleetSpec, FrontUpdate, PlanPoint,
    Request, RequestFrame, Response, ResponseFrame, StudyAccepted, StudyBudget, StudyCancelled,
    StudyDone, StudyQueued, StudyRequest, WireError, WIRE_VERSION,
};
use microgrid_opt::core::FleetScenario;
use microgrid_opt::prelude::{Composition, CompositionSpace};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/wire")
        .join(name)
}

fn frame(id: &str, req: Request) -> RequestFrame {
    RequestFrame {
        v: WIRE_VERSION,
        id: id.into(),
        req,
    }
}

/// One request frame per protocol shape.
fn fixture_requests() -> Vec<RequestFrame> {
    let mut tiny_fleet = FleetScenario::paper();
    tiny_fleet.members.truncate(1);
    vec![
        frame("r1", Request::Ping),
        frame("r2", Request::Shutdown),
        // Minimal study: preset fleet, every optional field defaulted.
        frame(
            "r3",
            Request::Study(StudyRequest {
                fleet: FleetSpec::Preset("paper-tiny".into()),
                space: None,
                objectives: None,
                budget: StudyBudget {
                    population_size: 8,
                    max_trials: 24,
                    seed: 42,
                },
                peak_cap_kw: None,
                stream: false,
            }),
        ),
        // Maximal study: every optional field set.
        frame(
            "r4",
            Request::Study(StudyRequest {
                fleet: FleetSpec::Preset("paper".into()),
                space: Some(CompositionSpace {
                    wind_choices: vec![0, 4],
                    solar_choices_kw: vec![0.0, 16_000.0],
                    battery_choices_kwh: vec![0.0, 22_500.0],
                }),
                objectives: Some(vec![
                    "operational_tco2_per_day".into(),
                    "embodied_tco2".into(),
                ]),
                budget: StudyBudget {
                    population_size: 50,
                    max_trials: 350,
                    seed: 7,
                },
                peak_cap_kw: Some(30_000.0),
                stream: true,
            }),
        ),
        // Inline fleet: the full scenario rides the wire.
        frame(
            "r5",
            Request::Study(StudyRequest {
                fleet: FleetSpec::Inline(tiny_fleet),
                space: None,
                objectives: None,
                budget: StudyBudget {
                    population_size: 4,
                    max_trials: 8,
                    seed: 1,
                },
                peak_cap_kw: None,
                stream: false,
            }),
        ),
        // Cancellation: the body is the target study's correlation id.
        // Appended after the original five so the committed prefix stays
        // byte-identical — `Cancel` is an additive variant, no version
        // bump (see `core::wire`'s versioning rule).
        frame("r6", Request::Cancel("r4".into())),
    ]
}

/// One response frame per protocol shape.
fn fixture_responses() -> Vec<ResponseFrame> {
    let point = PlanPoint {
        genome: vec![5, 2],
        plan: vec![
            Composition::new(4, 0.0, 22_500.0),
            Composition::new(0, 16_000.0, 0.0),
        ],
        objectives: vec![123.456, 7_890.0],
        violation: 0.0,
    };
    let mk = |id: &str, resp: Response| ResponseFrame {
        v: WIRE_VERSION,
        id: id.into(),
        resp,
    };
    vec![
        mk("r1", Response::Pong),
        mk("", Response::Bye),
        mk(
            "r3",
            Response::Accepted(StudyAccepted {
                sites: vec!["houston".into(), "berkeley".into()],
                plan_space: 64,
                prep_cache_hits: 1,
                prep_cache_misses: 1,
            }),
        ),
        mk(
            "r3",
            Response::Front(FrontUpdate {
                generation: 0,
                sampled: 8,
                front: vec![point.clone()],
            }),
        ),
        mk(
            "r3",
            Response::Done(StudyDone {
                generations: 3,
                sampled_trials: 24,
                unique_evaluations: 19,
                cache_hits: 5,
                cache_misses: 19,
                wall_ms: 12,
                front: vec![point],
            }),
        ),
        mk(
            "bad",
            Response::Error(WireError::new(
                ErrorCode::UnknownPreset,
                "unknown fleet preset \"atlantis\"",
            )),
        ),
        // One pinned frame per remaining error code, so every variant's
        // on-wire shape is golden (mgopt_lint's schema_drift rule keeps
        // this list in sync with the enum).
        mk(
            "bad",
            Response::Error(WireError::new(
                ErrorCode::InvalidRequest,
                "fleet has no members",
            )),
        ),
        mk(
            "",
            Response::Error(WireError::new(
                ErrorCode::Oversized,
                "request line exceeds 1048576 bytes",
            )),
        ),
        mk(
            "r9",
            Response::Error(WireError::new(
                ErrorCode::Internal,
                "study worker terminated unexpectedly",
            )),
        ),
        // Queueing + cancellation lifecycle frames (appended after the
        // original nine so the committed prefix stays byte-identical).
        mk("r4", Response::Queued(StudyQueued { ahead: 3 })),
        mk(
            "r4",
            Response::Cancelled(StudyCancelled {
                generations: 2,
                sampled_trials: 150,
                wall_ms: 48,
            }),
        ),
        mk(
            "r6",
            Response::Error(WireError::new(
                ErrorCode::UnknownStudy,
                "no in-flight study `r4` on this connection",
            )),
        ),
    ]
}

fn check_golden(name: &str, encoded: Vec<String>) {
    let path = fixture_path(name);
    let blob = encoded.join("\n") + "\n";
    if std::env::var("MGOPT_BLESS").is_ok_and(|v| v == "1") {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, blob).unwrap();
        return;
    }
    let committed = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {path:?} ({e}); run with MGOPT_BLESS=1 to create it")
    });
    assert_eq!(
        committed, blob,
        "{name} drifted from the committed fixture — if the protocol change \
         is intentional, bump WIRE_VERSION and re-bless"
    );
}

#[test]
fn golden_requests_encode_parse_and_reencode_byte_identically() {
    let frames = fixture_requests();
    let encoded: Vec<String> = frames.iter().map(encode_request).collect();
    for (frame, line) in frames.iter().zip(&encoded) {
        let parsed = parse_request(line).expect("fixture must parse strictly");
        assert_eq!(&parsed, frame, "decode(encode(x)) != x");
        assert_eq!(&encode_request(&parsed), line, "re-encode is not stable");
    }
    check_golden("requests.jsonl", encoded);
}

#[test]
fn golden_responses_round_trip_byte_identically() {
    let frames = fixture_responses();
    let encoded: Vec<String> = frames.iter().map(encode_response).collect();
    for (frame, line) in frames.iter().zip(&encoded) {
        let parsed: ResponseFrame = serde_json::from_str(line).expect("fixture must decode");
        assert_eq!(&parsed, frame, "decode(encode(x)) != x");
        assert_eq!(&encode_response(&parsed), line, "re-encode is not stable");
    }
    check_golden("responses.jsonl", encoded);
}

/// The documented error frames for malformed input: unknown fields,
/// missing fields, bad types, and version drift each map to a specific
/// [`ErrorCode`] — never a crash, never a silent accept.
#[test]
fn rejected_requests_produce_the_documented_error_codes() {
    use ErrorCode::*;
    let cases: &[(&str, ErrorCode)] = &[
        // Not JSON at all.
        ("junk{", MalformedFrame),
        // JSON, wrong shape.
        ("[1,2,3]", MalformedFrame),
        // Missing envelope fields.
        (r#"{"id":"x","req":"Ping"}"#, MalformedFrame),
        (r#"{"v":1,"req":"Ping"}"#, MalformedFrame),
        (r#"{"v":1,"id":"x"}"#, MalformedFrame),
        // Unknown envelope field (strict reject).
        (
            r#"{"v":1,"id":"x","req":"Ping","turbo":true}"#,
            MalformedFrame,
        ),
        // Version drift wins over field checks.
        (
            r#"{"v":2,"id":"x","req":"Ping","turbo":true}"#,
            UnsupportedVersion,
        ),
        (r#"{"v":0,"id":"x","req":"Ping"}"#, UnsupportedVersion),
        // Bad field types.
        (r#"{"v":1,"id":5,"req":"Ping"}"#, MalformedFrame),
        (r#"{"v":"1","id":"x","req":"Ping"}"#, MalformedFrame),
        // Unknown request variant.
        (r#"{"v":1,"id":"x","req":"Reboot"}"#, MalformedFrame),
        // Study body: unknown field.
        (
            r#"{"v":1,"id":"x","req":{"Study":{"fleet":{"Preset":"paper"},"budget":{"population_size":8,"max_trials":24,"seed":1},"gpu":true}}}"#,
            MalformedFrame,
        ),
        // Study body: missing required budget.
        (
            r#"{"v":1,"id":"x","req":{"Study":{"fleet":{"Preset":"paper"}}}}"#,
            MalformedFrame,
        ),
        // Budget: missing field.
        (
            r#"{"v":1,"id":"x","req":{"Study":{"fleet":{"Preset":"paper"},"budget":{"population_size":8,"max_trials":24}}}}"#,
            MalformedFrame,
        ),
        // Budget: extra field.
        (
            r#"{"v":1,"id":"x","req":{"Study":{"fleet":{"Preset":"paper"},"budget":{"population_size":8,"max_trials":24,"seed":1,"retries":3}}}}"#,
            MalformedFrame,
        ),
        // Fleet: not a single-variant map.
        (
            r#"{"v":1,"id":"x","req":{"Study":{"fleet":"paper","budget":{"population_size":8,"max_trials":24,"seed":1}}}}"#,
            MalformedFrame,
        ),
        // Cancel: the body must be the target id as a plain string.
        (r#"{"v":1,"id":"x","req":{"Cancel":5}}"#, MalformedFrame),
        (
            r#"{"v":1,"id":"x","req":{"Cancel":{"target":"t1"}}}"#,
            MalformedFrame,
        ),
    ];
    for (line, want) in cases {
        let err = parse_request(line).expect_err(&format!("must reject: {line}"));
        assert_eq!(err.code, *want, "wrong code for: {line}");
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # mgopt-microgrid
//!
//! The microgrid domain library: compositions and their embodied carbon,
//! data-center sites, dispatch policies, the year simulators, and the
//! sustainability metrics reported in the paper's tables.
//!
//! Three engines share the physics: the scalar reference loop
//! ([`simulate_year`]), the cosim bus ([`simulate_year_cosim`]) and the
//! batched columnar engine ([`simulate_batch`], module [`batch`]) that
//! evaluates a whole cohort of compositions in one time-major pass — the
//! engine the search layers use. [`Evaluator`] abstracts over them. The
//! [`fleet`] module extends the batch engine to several sites at once:
//! [`FleetEvaluator`] interleaves every member's arrays in one time-major
//! walk and reports fleet-level aggregates (peak *concurrent* grid import,
//! fleet tCO2/day) alongside bit-identical per-site results.
//!
//! The batch and fleet engines walk candidates through the [`simd`]
//! module's hand-rolled 4-lane kernel by default (`MGOPT_SIMD=0`
//! disables it at runtime; [`BatchBackend`] forces a walk explicitly).
//! Lanes hold *different candidates*, never different timesteps, so the
//! lane walk is bit-identical to the scalar chunk walk — the scalar walk
//! stays available as the agreement oracle.
//!
//! ## Quick tour
//!
//! ```
//! use mgopt_microgrid::{
//!     simulate_year, BatchEvaluator, Composition, Evaluator, SimConfig, Site,
//! };
//! use mgopt_units::SimDuration;
//! use mgopt_workload::HpcWorkload;
//!
//! // Precompute site data once (weather → SAM models → unit profiles).
//! let data = Site::houston().prepare(SimDuration::from_hours(1.0), 42);
//! let load = HpcWorkload::perlmutter_like(42).generate(SimDuration::from_hours(1.0));
//! let cfg = SimConfig::default();
//!
//! // Simulate one candidate composition through the reference path.
//! let comp = Composition::new(4, 0.0, 7_500.0); // 12 MW wind, 7.5 MWh battery
//! let result = simulate_year(&data, &load, &comp, &cfg);
//! assert!(result.metrics.coverage > 0.5);
//!
//! // Score a whole cohort in one columnar pass (what the optimizer does).
//! let cohort = [comp, Composition::new(0, 16_000.0, 22_500.0)];
//! let batch = BatchEvaluator::new(&data, &load, &cfg).evaluate_batch(&cohort);
//! assert!((batch[0].metrics.coverage - result.metrics.coverage).abs() < 1e-9);
//! ```

pub mod batch;
pub mod composition;
pub mod embodied;
pub mod fleet;
pub mod metrics;
pub mod policy;
pub mod simd;
pub mod simulate;
pub mod site;

pub use batch::{
    simulate_batch, simulate_batch_period, simulate_batch_period_with_backend,
    simulate_batch_with_backend, BatchEvaluator, Evaluator, ScalarEvaluator, StorageKernel,
};
pub use composition::{Composition, CompositionSpace};
pub use embodied::EmbodiedDb;
pub use fleet::{FleetEvaluator, FleetMetrics, FleetResult, FleetSite};
pub use metrics::{AnnualMetrics, AnnualResult};
pub use policy::{shift_load_carbon_aware, DispatchPolicy};
pub use simd::{simd_enabled, BatchBackend, F64x4, LANES};
pub use simulate::{
    build_cosim_microgrid, simulate_period, simulate_year, simulate_year_cosim, SimConfig,
};
pub use site::{Site, SiteData};

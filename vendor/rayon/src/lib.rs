//! Workspace-local stand-in for the `rayon` crate.
//!
//! Implements the surface this workspace uses — `par_iter()` /
//! `into_par_iter()` followed by `map(...).collect()`, plus `for_each` and
//! `sum` — with real parallelism: `std::thread::scope` workers pulling item
//! indices from a shared atomic counter (dynamic load balancing, which
//! matters because composition evaluation cost varies with battery size).
//! Results are reassembled in input order, so `collect()` is deterministic
//! exactly like upstream rayon's indexed parallel iterators.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker-count override set by [`set_num_threads`];
/// `0` means "no override" (use every available core).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads: one per available core (or the
/// [`set_num_threads`] override, clamped to available cores), capped to
/// the item count by the driver loop.
fn thread_count() -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => avail,
        n => n.min(avail),
    }
}

/// The pool size parallel calls will use for large batches — upstream
/// rayon's `current_num_threads`. Benchmark artifacts record this instead
/// of re-deriving core counts (whose detection failure would mislabel the
/// entry), since this is by construction the worker count actually used.
pub fn current_num_threads() -> usize {
    thread_count()
}

/// Cap the worker pool at `n` threads for subsequent parallel calls;
/// `0` removes the cap (back to one worker per available core). Requests
/// beyond the machine's available parallelism are clamped, so callers can
/// ask for a 4-thread scaling point on a 1-core runner and
/// [`current_num_threads`] reports what will actually run. Used by the
/// benchmark bins' `MGOPT_THREADS` scaling sweeps; unlike upstream rayon's
/// global pool this takes effect immediately (workers are spawned per
/// call, not pooled).
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Run `f(i)` for every index in `0..n` on a worker pool, collecting
/// results in index order.
fn parallel_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = thread_count().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                results.lock().unwrap().extend(local);
            });
        }
    });
    let mut pairs = results.into_inner().unwrap();
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// A materialized parallel iterator: items are known up front.
pub struct ParVec<T> {
    items: Vec<T>,
}

/// The `map` adapter over a [`ParVec`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParVec<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel (no results).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
        T: Sync,
    {
        self.map(f).collect::<Vec<()>>();
    }

    /// Collect the items themselves.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Evaluate in parallel, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let items: Vec<Option<T>> = self.items.into_iter().map(Some).collect();
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(Mutex::new).collect();
        let f = &self.f;
        parallel_indexed(slots.len(), |i| {
            let item = slots[i].lock().unwrap().take().expect("item taken twice");
            f(item)
        })
        .into_iter()
        .collect()
    }

    /// Chain another map.
    pub fn map<R2, F2>(self, f2: F2) -> ParMap<T, impl Fn(T) -> R2 + Sync>
    where
        R2: Send,
        F2: Fn(R) -> R2 + Sync,
    {
        let f1 = self.f;
        ParMap {
            items: self.items,
            f: move |t| f2(f1(t)),
        }
    }

    /// Parallel sum of the mapped values.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.collect::<Vec<R>>().into_iter().sum()
    }

    /// Run for side effects.
    pub fn for_each_unit(self)
    where
        R: Send,
    {
        let _ = self.collect::<Vec<R>>();
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParVec<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParVec<usize> {
        ParVec {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;

    fn into_par_iter(self) -> ParVec<u64> {
        ParVec {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;

    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParVec<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParVec<&'a T> {
        ParVec {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParVec<&'a T> {
        ParVec {
            items: self.iter().collect(),
        }
    }
}

/// The rayon prelude: the traits needed for `par_iter` syntax.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Serializes tests that observe or mutate the global thread override
    /// (cargo runs tests concurrently by default).
    static THREADING: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn set_num_threads_caps_clamps_and_restores() {
        let _guard = THREADING.lock().unwrap();
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        crate::set_num_threads(1);
        assert_eq!(crate::current_num_threads(), 1);
        // A capped pool still computes correct, ordered results.
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
        // Requests beyond the machine are clamped, not granted.
        crate::set_num_threads(avail + 16);
        assert_eq!(crate::current_num_threads(), avail);
        // Zero removes the override.
        crate::set_num_threads(0);
        assert_eq!(crate::current_num_threads(), avail);
    }

    #[test]
    fn par_iter_over_refs() {
        let data = vec![1u64, 2, 3, 4, 5];
        let squares: Vec<u64> = data.par_iter().map(|&x| x * x).collect();
        assert_eq!(squares, vec![1, 4, 9, 16, 25]);
        assert_eq!(data.len(), 5, "borrowed, not consumed");
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        let _guard = THREADING.lock().unwrap();
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
        {
            return; // single-core runner: nothing to assert
        }
        let ids: std::collections::HashSet<std::thread::ThreadId> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                std::thread::current().id()
            })
            .collect();
        assert!(ids.len() > 1, "expected multiple worker threads");
    }

    #[test]
    fn current_num_threads_is_positive_and_stable() {
        let _guard = THREADING.lock().unwrap();
        let n = crate::current_num_threads();
        assert!(n >= 1);
        assert_eq!(n, crate::current_num_threads());
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![7u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}

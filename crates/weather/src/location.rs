//! Geographic sites and their orientation parameters.

use serde::{Deserialize, Serialize};

/// A geographic location in the simulation.
///
/// The simulation clock is *local standard time* for the site; solar
/// geometry applies the equation of time and the longitude offset from the
/// timezone meridian, matching how SAM interprets weather-file timestamps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Location {
    /// Human-readable name ("Berkeley, CA").
    pub name: String,
    /// Latitude in degrees, positive north.
    pub latitude_deg: f64,
    /// Longitude in degrees, positive east.
    pub longitude_deg: f64,
    /// Elevation above sea level in meters (used for air density).
    pub elevation_m: f64,
    /// Offset of local standard time from UTC in hours (negative west).
    pub timezone_h: f64,
}

impl Location {
    /// Berkeley, California (CAISO grid) — the paper's first case study.
    pub fn berkeley() -> Self {
        Self {
            name: "Berkeley, CA".into(),
            latitude_deg: 37.8716,
            longitude_deg: -122.2727,
            elevation_m: 52.0,
            timezone_h: -8.0,
        }
    }

    /// Houston, Texas (ERCOT grid) — the paper's second case study.
    pub fn houston() -> Self {
        Self {
            name: "Houston, TX".into(),
            latitude_deg: 29.7604,
            longitude_deg: -95.3698,
            elevation_m: 30.0,
            timezone_h: -6.0,
        }
    }

    /// Longitude of the timezone meridian (15° per hour offset).
    #[inline]
    pub fn timezone_meridian_deg(&self) -> f64 {
        self.timezone_h * 15.0
    }

    /// Latitude in radians.
    #[inline]
    pub fn latitude_rad(&self) -> f64 {
        self.latitude_deg.to_radians()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_plausible() {
        let b = Location::berkeley();
        assert!((37.0..39.0).contains(&b.latitude_deg));
        assert!(b.longitude_deg < -120.0);
        assert_eq!(b.timezone_meridian_deg(), -120.0);

        let h = Location::houston();
        assert!((29.0..31.0).contains(&h.latitude_deg));
        assert_eq!(h.timezone_meridian_deg(), -90.0);
        assert!(h.latitude_deg < b.latitude_deg);
    }

    #[test]
    fn latitude_rad_conversion() {
        let h = Location::houston();
        assert!((h.latitude_rad() - 29.7604f64.to_radians()).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip_via_clone_eq() {
        let b = Location::berkeley();
        let b2 = b.clone();
        assert_eq!(b, b2);
    }
}

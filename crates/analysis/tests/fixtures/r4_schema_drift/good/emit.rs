pub fn emit_all(handle: &Handle) {
    Event::new("study_start")
        .u64("sites", 1)
        .u64("plan_space", 64)
        .emit(handle);
}

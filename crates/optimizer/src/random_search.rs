//! Random-search sampler — the baseline black-box strategy NSGA-II is
//! measured against.

use mgopt_telemetry as telemetry;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::nsga2::sample_unique_genomes;
use crate::problem::{Problem, Trial};
use crate::study::OptimizationResult;

/// Sample `n_trials` genomes uniformly without replacement (falling back
/// to the full space when it is smaller) and evaluate them in one batched
/// pass ([`Problem::evaluate_batch_constrained`] parallelizes internally
/// and records any constraint violations).
pub fn random_search(problem: &dyn Problem, n_trials: usize, seed: u64) -> OptimizationResult {
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x7a2d_0b5f);
    let genomes = sample_unique_genomes(problem.dims(), n_trials, &mut rng);
    let sampled = genomes.len();
    telemetry::Event::new("sampler")
        .str("kind", "random")
        .u64("evals", sampled as u64)
        .emit();
    let evaluations = problem.evaluate_batch_constrained(&genomes);
    let history: Vec<Trial> = genomes
        .into_iter()
        .zip(evaluations)
        .map(|(g, e)| Trial::from_evaluation(g, e))
        .collect();
    OptimizationResult::from_history(history, sampled, sampled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnProblem;

    fn problem() -> FnProblem<impl Fn(&[u16]) -> Vec<f64> + Sync> {
        FnProblem::new(vec![11, 11, 9], 2, |g| {
            vec![g[0] as f64 + g[2] as f64, g[1] as f64]
        })
    }

    #[test]
    fn samples_without_replacement() {
        let result = random_search(&problem(), 200, 1);
        assert_eq!(result.history.len(), 200);
        let unique: std::collections::HashSet<_> =
            result.history.iter().map(|t| t.genome.clone()).collect();
        assert_eq!(unique.len(), 200);
    }

    #[test]
    fn clamps_to_space_size() {
        let small = FnProblem::new(vec![2, 3], 1, |g| vec![g[0] as f64]);
        let result = random_search(&small, 100, 2);
        assert_eq!(result.history.len(), 6);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        assert_eq!(
            random_search(&p, 50, 3).history,
            random_search(&p, 50, 3).history
        );
        assert_ne!(
            random_search(&p, 50, 3).history,
            random_search(&p, 50, 4).history
        );
    }
}

//! Stochastic clear-sky-index synthesis.
//!
//! All-sky GHI is modeled as `clear-sky GHI × kci`, where the clear-sky
//! index `kci` follows a two-state (clear / cloudy) Markov regime process
//! with autocorrelated within-regime fluctuations. The regime structure
//! produces the multi-day overcast spells that dominate storage sizing —
//! something a plain AR(1) on kci would miss.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::climate::SolarClimate;
use crate::math::Ar1;

/// Sky regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkyRegime {
    /// Mostly clear sky.
    Clear,
    /// Overcast / broken clouds.
    Cloudy,
}

/// Hour-resolution clear-sky-index generator.
#[derive(Debug)]
pub struct CloudGenerator {
    climate: SolarClimate,
    rng: ChaCha12Rng,
    regime: SkyRegime,
    fluctuation: Ar1,
}

impl CloudGenerator {
    /// Create a generator with a dedicated RNG stream.
    pub fn new(climate: SolarClimate, seed: u64) -> Self {
        let rho = Ar1::rho_for_decorrelation_steps(climate.kci_decorrelation_h.max(0.5));
        Self {
            climate,
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0x5eed_c10d),
            regime: SkyRegime::Clear,
            fluctuation: Ar1::new(rho),
        }
    }

    /// Current regime.
    pub fn regime(&self) -> SkyRegime {
        self.regime
    }

    /// Advance one hour in the given month and return the clear-sky index.
    pub fn step_hour(&mut self, month: usize) -> f64 {
        debug_assert!(month < 12);
        let pi_cloudy = self.climate.monthly_cloudy_prob[month].clamp(0.001, 0.999);
        // Two-state Markov chain: mean cloudy sojourn tau hours gives
        // stay-probability b; the clear-side stay-probability a follows from
        // requiring the stationary cloudy fraction to equal pi_cloudy:
        //   (1 - a) / ((1 - a) + (1 - b)) = pi  =>  1 - a = pi/(1-pi) (1 - b)
        let tau = self.climate.cloudy_persistence_h.max(1.0);
        let b = 1.0 - 1.0 / tau;
        let leave_clear = (pi_cloudy / (1.0 - pi_cloudy) * (1.0 - b)).clamp(0.0, 1.0);
        let u: f64 = self.rng.gen();
        self.regime = match self.regime {
            SkyRegime::Clear if u < leave_clear => SkyRegime::Cloudy,
            SkyRegime::Cloudy if u < 1.0 - b => SkyRegime::Clear,
            r => r,
        };

        let eps = sample_standard_normal(&mut self.rng);
        let g = self.fluctuation.step(eps);
        let (mean, std) = match self.regime {
            SkyRegime::Clear => (self.climate.clear_kci_mean, self.climate.clear_kci_std),
            SkyRegime::Cloudy => (self.climate.cloudy_kci_mean, self.climate.cloudy_kci_std),
        };
        (mean + std * g).clamp(0.03, 1.05)
    }

    /// Generate a full 8,760-hour year of clear-sky indices.
    pub fn generate_year(&mut self) -> Vec<f64> {
        let mut out = Vec::with_capacity(8_760);
        for day in 0..365u32 {
            let month = mgopt_units::time::month_of_day(day) as usize;
            for _ in 0..24 {
                out.push(self.step_hour(month));
            }
        }
        out
    }
}

/// Box-Muller standard normal sample.
pub(crate) fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climate::Climate;

    fn gen_year(seed: u64, climate: &SolarClimate) -> Vec<f64> {
        CloudGenerator::new(climate.clone(), seed).generate_year()
    }

    #[test]
    fn year_has_8760_hours_in_bounds() {
        let kci = gen_year(1, &Climate::berkeley().solar);
        assert_eq!(kci.len(), 8_760);
        for &k in &kci {
            assert!((0.03..=1.05).contains(&k));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = Climate::houston().solar;
        assert_eq!(gen_year(7, &c), gen_year(7, &c));
        assert_ne!(gen_year(7, &c), gen_year(8, &c));
    }

    #[test]
    fn cloudy_fraction_tracks_climatology() {
        // July (days 181..212) in Berkeley is nearly cloud-free; January is not.
        let c = Climate::berkeley().solar;
        let kci = gen_year(42, &c);
        let frac_low = |lo: usize, hi: usize| {
            let window = &kci[lo * 24..hi * 24];
            window.iter().filter(|&&k| k < 0.6).count() as f64 / window.len() as f64
        };
        let january = frac_low(0, 31);
        let july = frac_low(181, 212);
        assert!(july < january, "july {july} >= january {january}");
        assert!(july < 0.22, "july cloudy fraction {july}");
        assert!(january > 0.25, "january cloudy fraction {january}");
    }

    #[test]
    fn berkeley_brighter_than_houston_on_average() {
        let b: f64 = gen_year(3, &Climate::berkeley().solar).iter().sum::<f64>() / 8_760.0;
        let h: f64 = gen_year(3, &Climate::houston().solar).iter().sum::<f64>() / 8_760.0;
        assert!(b > h, "berkeley mean kci {b} <= houston {h}");
    }

    #[test]
    fn regimes_persist_for_hours() {
        // Mean sojourn should be well above 1 hour: count regime flips.
        let mut g = CloudGenerator::new(Climate::houston().solar, 11);
        let mut flips = 0;
        let mut last = g.regime();
        for _ in 0..8_760 {
            g.step_hour(5);
            if g.regime() != last {
                flips += 1;
                last = g.regime();
            }
        }
        let mean_sojourn = 8_760.0 / flips.max(1) as f64;
        assert!(mean_sojourn > 4.0, "mean sojourn {mean_sojourn} h");
    }

    #[test]
    fn multi_day_overcast_spells_exist() {
        // Berkeley winters should contain at least one >=18h continuous
        // low-kci spell (these drive battery sizing).
        let kci = gen_year(123, &Climate::berkeley().solar);
        let winter = &kci[0..90 * 24];
        let mut longest = 0usize;
        let mut run = 0usize;
        for &k in winter {
            if k < 0.6 {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        assert!(longest >= 18, "longest overcast spell only {longest} h");
    }
}

#![warn(missing_docs)]

//! # mgopt-microgrid
//!
//! The microgrid domain library: compositions and their embodied carbon,
//! data-center sites, dispatch policies, the year simulator, and the
//! sustainability metrics reported in the paper's tables.
//!
//! ## Quick tour
//!
//! ```
//! use mgopt_microgrid::{Composition, Site, SimConfig, simulate_year};
//! use mgopt_units::SimDuration;
//! use mgopt_workload::HpcWorkload;
//!
//! // Precompute site data once (weather → SAM models → unit profiles).
//! let data = Site::houston().prepare(SimDuration::from_hours(1.0), 42);
//! let load = HpcWorkload::perlmutter_like(42).generate(SimDuration::from_hours(1.0));
//!
//! // Simulate one candidate composition.
//! let comp = Composition::new(4, 0.0, 7_500.0); // 12 MW wind, 7.5 MWh battery
//! let result = simulate_year(&data, &load, &comp, &SimConfig::default());
//! assert!(result.metrics.coverage > 0.5);
//! ```

pub mod composition;
pub mod embodied;
pub mod metrics;
pub mod policy;
pub mod simulate;
pub mod site;

pub use composition::{Composition, CompositionSpace};
pub use embodied::EmbodiedDb;
pub use metrics::{AnnualMetrics, AnnualResult};
pub use policy::{shift_load_carbon_aware, DispatchPolicy};
pub use simulate::{
    build_cosim_microgrid, simulate_period, simulate_year, simulate_year_cosim, SimConfig,
};
pub use site::{Site, SiteData};

//! Geo-distributed fleet: both paper sites evaluated as one fleet with a
//! fleet-level carbon account — the multi-microgrid setting the paper's
//! related work (SHIELD, geo-distributed allocation) motivates.
//!
//! Since the `FleetEvaluator` landed this is first-class: one interleaved
//! time-major pass produces per-site results (bit-identical to single-site
//! sweeps) plus fleet aggregates, including the peak *concurrent* grid
//! import that per-site runs cannot see. The cosim `Environment` remains
//! the agreement oracle (`tests/fleet_agreement.rs` pins the two paths to
//! ≤1e-9 relative); this example cross-checks one number live.
//!
//! ```bash
//! cargo run --release --example geo_distributed
//! ```

use microgrid_opt::cosim::Environment;
use microgrid_opt::microgrid::build_cosim_microgrid;
use microgrid_opt::prelude::*;

fn main() {
    let fleet = FleetScenario::paper().prepare();
    let evaluator = fleet.evaluator();

    // Site-appropriate builds: wind in Houston, solar in Berkeley.
    let plan = vec![
        Composition::new(4, 0.0, 7_500.0),
        Composition::new(0, 12_000.0, 37_500.0),
    ];
    let result = evaluator.evaluate(&plan);

    // The no-microgrid baseline comes from the same engine (empty
    // compositions), so the narrative can never drift from the physics.
    let baseline = evaluator.evaluate(&vec![Composition::BASELINE; fleet.n_sites()]);

    println!("geo-distributed fleet, one simulated year:\n");
    println!(
        "  {:<10} {:<28} {:>12} {:>14} {:>10}",
        "site", "build", "import MWh", "op tCO2/day", "coverage"
    );
    for (name, r) in fleet.names.iter().zip(&result.per_site) {
        println!(
            "  {:<10} {:<28} {:>12.0} {:>14.2} {:>9.0}%",
            name,
            r.composition.label(),
            r.metrics.grid_import_mwh,
            r.metrics.operational_t_per_day,
            r.metrics.coverage_pct()
        );
    }
    let fleet_t_day = result.fleet.operational_t_per_day;
    let baseline_t_day = baseline.fleet.operational_t_per_day;
    println!("\n  fleet operational total: {fleet_t_day:.2} tCO2/day");
    println!(
        "  fleet embodied total:    {:.0} tCO2",
        result.fleet.embodied_t
    );
    println!(
        "  fleet peak concurrent grid import: {:.2} MW",
        result.fleet.peak_concurrent_import_kw.expect("tracked") / 1e3
    );

    // Cross-check the fleet account against the cosim oracle: the same
    // two microgrids on one Environment clock, accounted by hand, each
    // under its member's own simulation config (what the evaluator used).
    let mut env = Environment::new();
    for (member, comp) in fleet.members.iter().zip(&plan) {
        env.add_microgrid(
            member.site_name(),
            build_cosim_microgrid(&member.data, &member.load, comp, &member.config.sim),
        );
    }
    let step = fleet.members[0].data.step();
    let ci: Vec<_> = fleet.members.iter().map(|m| &m.data.ci_g_per_kwh).collect();
    let mut site_kg = vec![0.0f64; fleet.n_sites()];
    env.run(
        SimTime::START,
        SimDuration::from_days(365),
        step,
        |i, rec| {
            let kwh = rec.grid_import().kw() * rec.dt.hours();
            site_kg[i] += kwh * ci[i].at(rec.t) / 1e3;
        },
        |_| {},
    );
    let cosim_t_day = site_kg.iter().sum::<f64>() / 1e3 / 365.0;
    println!(
        "\n  cosim oracle agrees: {:.6} vs {:.6} tCO2/day (rel err {:.1e})",
        fleet_t_day,
        cosim_t_day,
        microgrid_opt::units::rel_error(fleet_t_day, cosim_t_day)
    );

    println!("\nthe fleet view is what a 24/7 carbon-free-energy program reports on:");
    println!(
        "site-level microgrids cut the fleet account from ~{baseline_t_day:.1} to \
         ~{fleet_t_day:.0} tCO2/day."
    );
}

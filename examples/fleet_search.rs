//! Fleet-plan search: NSGA-II over the *cross-product* plan space of a
//! Houston + Berkeley fleet (one composition index per site), with every
//! generation scored in a single interleaved `FleetEvaluator` pass and the
//! fleet's peak *concurrent* grid import as an optional hard constraint.
//!
//! The exhaustive `fleet_sweep` over the same grid is the ground truth:
//! the example reports how much of the true fleet Pareto front the genetic
//! search recovers, then repeats the search under a peak-import cap
//! (constraint-dominance: feasible plans outrank every cap-breaking one)
//! and checks that every returned plan honors the cap.
//!
//! ```bash
//! cargo run --release --example fleet_search          # 27 points per site
//! MGOPT_FAST=1 cargo run --release --example fleet_search   # smoke-sized
//! ```

use std::collections::BTreeSet;

use microgrid_opt::optimizer::{non_dominated_indices, Problem};
use microgrid_opt::prelude::*;

fn main() {
    let fast = std::env::var("MGOPT_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    // Per-site grids kept exhaustive-friendly: the plan space is the
    // *product* of the member spaces.
    let space = if fast {
        CompositionSpace {
            wind_choices: vec![0, 4],
            solar_choices_kw: vec![0.0, 16_000.0],
            battery_choices_kwh: vec![0.0, 22_500.0],
        }
    } else {
        CompositionSpace::tiny()
    };
    let mut scenario = FleetScenario::paper();
    for m in &mut scenario.members {
        m.scenario.space = space.clone();
    }
    let fleet = scenario.prepare();
    let problem = FleetProblem::new(&fleet);
    println!(
        "fleet plan space: {} sites x {} compositions each = {} plans\n",
        fleet.n_sites(),
        space.len(),
        problem.space_size()
    );

    // Ground truth: every plan through the same interleaved engine.
    let sweep = fleet_sweep(&fleet, FleetAssignment::CrossProduct);
    let objectives: Vec<Vec<f64>> = sweep
        .iter()
        .map(|r| vec![r.fleet.operational_t_per_day, r.fleet.embodied_t])
        .collect();
    let true_front: BTreeSet<Vec<u16>> = non_dominated_indices(&objectives)
        .into_iter()
        .map(|i| problem.genome_at(i))
        .collect();

    // NSGA-II over the plan space (memoized, batched per generation).
    let budget = (4 * problem.space_size()).max(350);
    let study = Study::new(Sampler::Nsga2(Nsga2Config {
        population_size: 50,
        max_trials: budget,
        seed: 42,
        ..Nsga2Config::default()
    }));
    let result = study.optimize(&problem);
    let found: BTreeSet<Vec<u16>> = result
        .pareto_front()
        .iter()
        .map(|t| t.genome.clone())
        .collect();
    let recovered = true_front.intersection(&found).count();
    println!(
        "NSGA-II ({} trials, {} unique fleet evaluations, {:.2}s wall):",
        result.sampled_trials, result.unique_evaluations, result.wall_seconds
    );
    println!(
        "  recovered {recovered}/{} true Pareto-optimal plans ({} spurious)\n",
        true_front.len(),
        found.difference(&true_front).count()
    );

    // Constrained run: cap the fleet's peak concurrent import between the
    // best-achievable and the grid-only fleet peaks, so some plans are
    // feasible and the grid-only corner is ruled out. (Even the largest
    // build keeps a substantial night-time concurrent peak — batteries
    // shave it, they don't erase it.)
    let peaks: Vec<f64> = sweep
        .iter()
        .map(|r| r.fleet.peak_concurrent_import_kw.expect("tracked"))
        .collect();
    let min_peak = peaks.iter().copied().fold(f64::INFINITY, f64::min);
    let max_peak = peaks.iter().copied().fold(0.0f64, f64::max);
    let cap_kw = min_peak + 0.25 * (max_peak - min_peak);
    let capped_problem = FleetProblem::new(&fleet).with_peak_cap_kw(cap_kw);
    let capped = study.optimize(&capped_problem);
    let mut front = capped.pareto_front();
    front.sort_by(|a, b| a.objectives[1].partial_cmp(&b.objectives[1]).unwrap());

    println!(
        "with peak concurrent-import cap {:.1} MW (grid-only fleet peaks at {:.1} MW):",
        cap_kw / 1e3,
        max_peak / 1e3
    );
    println!(
        "  {:<16} {:<16} {:>12} {:>12} {:>10}",
        "houston", "berkeley", "op tCO2/d", "embodied t", "peak MW"
    );
    let checker = fleet.evaluator(); // peak tracking on: verify the cap
    for t in &front {
        let plan = capped_problem.plan(&t.genome);
        let r = checker.evaluate(&plan);
        let peak_kw = r.fleet.peak_concurrent_import_kw.expect("tracked");
        assert!(
            t.is_feasible() && peak_kw <= cap_kw,
            "plan on the constrained front breaks the cap: {plan:?} at {peak_kw} kW"
        );
        println!(
            "  {:<16} {:<16} {:>12.2} {:>12.0} {:>10.2}",
            plan[0].label(),
            plan[1].label(),
            t.objectives[0],
            t.objectives[1],
            peak_kw / 1e3
        );
    }
    println!(
        "\n  every plan on the constrained front satisfies the cap; the\n  \
         unconstrained optimum is excluded whenever it would overdraw the\n  \
         shared interconnect — the joint sizing-under-grid-limits setting."
    );
}

//! Sweep engine benchmarks: the scalar rayon sweep (one year-simulation
//! per composition) against the batched columnar engine (one time-major
//! pass per chunk). `MGOPT_FAST=1` shrinks the space to 27 points; the
//! default benches the paper's full 1,089-candidate sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mgopt_core::{sweep_all, sweep_all_scalar};

fn bench_sweep_engines(c: &mut Criterion) {
    let scenario = mgopt_bench::houston();
    let points = scenario.config.space.len();

    let mut group = c.benchmark_group(format!("sweep_{points}"));
    group.sample_size(10);
    group.bench_function("scalar_rayon", |b| {
        b.iter(|| black_box(sweep_all_scalar(black_box(&scenario))))
    });
    group.bench_function("batched_columnar", |b| {
        b.iter(|| black_box(sweep_all(black_box(&scenario))))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_engines);
criterion_main!(benches);

//! Power-trace I/O.
//!
//! The paper feeds measured Perlmutter traces into the simulator; this
//! module reads/writes the equivalent CSV (`index,power_kw`) so operators
//! can plug in their own facility data. Includes the resampling helpers
//! needed to align a measured trace with a simulation step.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use mgopt_units::{SimDuration, TimeSeries, SECONDS_PER_YEAR};

/// Errors when reading a power-trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file.
    Format(String),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O error: {e}"),
            TraceFileError::Format(m) => write!(f, "trace file format error: {m}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// Write a power trace as `index,power_kw` CSV.
pub fn write_csv(trace: &TimeSeries, mut w: impl Write) -> Result<(), TraceFileError> {
    writeln!(w, "# step_s={}", trace.step().secs())?;
    writeln!(w, "index,power_kw")?;
    for (i, &v) in trace.values().iter().enumerate() {
        writeln!(w, "{i},{v}")?;
    }
    Ok(())
}

/// Read a power trace from CSV (format written by [`write_csv`]).
pub fn read_csv(r: impl Read) -> Result<TimeSeries, TraceFileError> {
    let reader = BufReader::new(r);
    let mut step_s: i64 = 3_600;
    let mut values = Vec::new();
    let mut saw_header = false;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some((k, v)) = rest.trim().split_once('=') {
                if k.trim() == "step_s" {
                    step_s = v
                        .trim()
                        .parse()
                        .map_err(|e| TraceFileError::Format(format!("metadata step_s: {e}")))?;
                }
            }
            continue;
        }
        if !saw_header {
            if !line.starts_with("index") {
                return Err(TraceFileError::Format(format!(
                    "line {}: expected header, got {line:?}",
                    lineno + 1
                )));
            }
            saw_header = true;
            continue;
        }
        let (_, val) = line.split_once(',').ok_or_else(|| {
            TraceFileError::Format(format!("line {}: expected two fields", lineno + 1))
        })?;
        let v: f64 = val
            .trim()
            .parse()
            .map_err(|e| TraceFileError::Format(format!("line {}: bad power: {e}", lineno + 1)))?;
        if v < 0.0 {
            return Err(TraceFileError::Format(format!(
                "line {}: negative power {v}",
                lineno + 1
            )));
        }
        values.push(v);
    }
    if values.is_empty() {
        return Err(TraceFileError::Format("no data rows".into()));
    }
    if step_s <= 0 {
        return Err(TraceFileError::Format("step_s must be positive".into()));
    }
    Ok(TimeSeries::new(SimDuration::from_secs(step_s), values))
}

/// Fit an arbitrary-length measured trace to one simulation year at the
/// target step: resample (mean-preserving) when the steps are compatible,
/// then tile or truncate to exactly one year.
///
/// # Panics
/// Panics when steps are incompatible (neither divides the other).
pub fn fit_to_year(trace: &TimeSeries, step: SimDuration) -> TimeSeries {
    let resampled = trace.resample(step);
    let target_len = (SECONDS_PER_YEAR / step.secs()) as usize;
    let mut values = Vec::with_capacity(target_len);
    while values.len() < target_len {
        let take = (target_len - values.len()).min(resampled.len());
        values.extend_from_slice(&resampled.values()[..take]);
    }
    TimeSeries::new(step, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HpcWorkload;

    #[test]
    fn round_trip_exact() {
        let trace = HpcWorkload::perlmutter_like(42).generate(SimDuration::from_hours(1.0));
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn negative_power_rejected() {
        let text = "index,power_kw\n0,-5\n";
        assert!(read_csv(text.as_bytes())
            .unwrap_err()
            .to_string()
            .contains("negative"));
    }

    #[test]
    fn fit_tiles_short_traces() {
        // One week of hourly data tiled to a year.
        let week = TimeSeries::new(
            SimDuration::from_hours(1.0),
            (0..168).map(|i| 1_000.0 + i as f64).collect(),
        );
        let year = fit_to_year(&week, SimDuration::from_hours(1.0));
        assert_eq!(year.len(), 8_760);
        assert_eq!(year.values()[0], 1_000.0);
        assert_eq!(year.values()[168], 1_000.0, "tiled");
        // 8760 = 52*168 + 24: the last day is a partial tile.
        assert_eq!(year.values()[52 * 168], 1_000.0);
    }

    #[test]
    fn fit_truncates_long_traces() {
        let two_years = TimeSeries::new(SimDuration::from_hours(1.0), vec![500.0; 2 * 8_760]);
        let year = fit_to_year(&two_years, SimDuration::from_hours(1.0));
        assert_eq!(year.len(), 8_760);
    }

    #[test]
    fn fit_resamples_to_target_step() {
        let minutely_day = TimeSeries::new(
            SimDuration::from_minutes(15.0),
            (0..96).map(|i| 100.0 + (i % 4) as f64).collect(),
        );
        let year = fit_to_year(&minutely_day, SimDuration::from_hours(1.0));
        assert_eq!(year.step(), SimDuration::from_hours(1.0));
        assert_eq!(year.len(), 8_760);
        // Mean preserved by the resampling.
        assert!((year.values()[0] - 101.5).abs() < 1e-12);
    }

    #[test]
    fn custom_step_metadata() {
        let text = "# step_s=60\nindex,power_kw\n0,100\n1,110\n";
        let trace = read_csv(text.as_bytes()).unwrap();
        assert_eq!(trace.step().secs(), 60);
    }
}

//! Fleet-engine agreement: the interleaved multi-site pass must tell the
//! same story as (a) independent single-site batch runs — bit-for-bit —
//! and (b) the cosim `Environment` oracle with hand-rolled fleet
//! accounting (the pre-`FleetEvaluator` way to run geo-distributed
//! studies), to ≤1e-9 relative.

use std::sync::OnceLock;

use microgrid_opt::cosim::Environment;
use microgrid_opt::microgrid::build_cosim_microgrid;
use microgrid_opt::prelude::*;
use microgrid_opt::units::{rel_close, rel_error};
use proptest::prelude::*;

fn paper_fleet() -> &'static PreparedFleet {
    static F: OnceLock<PreparedFleet> = OnceLock::new();
    F.get_or_init(|| FleetScenario::paper().prepare())
}

fn arbitrary_composition() -> impl Strategy<Value = Composition> {
    // The paper grid: wind 0-10 turbines, solar 0-40 MW, battery 0-60 MWh.
    (0u32..=10, 0usize..=10, 0usize..=8)
        .prop_map(|(w, s, b)| Composition::new(w, s as f64 * 4_000.0, b as f64 * 7_500.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-site fleet results are identical (not merely close) to running
    /// the single-site batch engine on each paper site independently,
    /// over full years and partial-period windows.
    #[test]
    fn fleet_per_site_results_equal_independent_batch_runs(
        houston_comp in arbitrary_composition(),
        berkeley_comp in arbitrary_composition(),
        n_steps in prop::sample::select(vec![1usize, 24, 168, 1_095, 4_380, 8_760]),
    ) {
        let fleet = paper_fleet();
        let evaluator = fleet.evaluator();
        let plan = vec![houston_comp, berkeley_comp];

        let result = evaluator
            .evaluate_plans_period(std::slice::from_ref(&plan), n_steps)
            .pop()
            .unwrap();
        for (s, member) in fleet.members.iter().enumerate() {
            let independent = BatchEvaluator::new(&member.data, &member.load, &member.config.sim)
                .evaluate_batch_period(std::slice::from_ref(&plan[s]), n_steps)
                .pop()
                .unwrap();
            prop_assert_eq!(
                &result.per_site[s].metrics,
                &independent.metrics,
                "site {} (n_steps={}) diverged from the single-site batch engine",
                fleet.names[s],
                n_steps
            );
        }

        // Fleet aggregates are exactly the per-site sums.
        let op_sum: f64 = result.per_site.iter().map(|r| r.metrics.operational_t_per_day).sum();
        prop_assert_eq!(result.fleet.operational_t_per_day, op_sum);
        let em_sum: f64 = result.per_site.iter().map(|r| r.metrics.embodied_t).sum();
        prop_assert_eq!(result.fleet.embodied_t, em_sum);
    }
}

/// The full-year fleet account of `examples/geo_distributed.rs`, pinned to
/// the cosim `Environment` run at ≤1e-9 relative: per-site import MWh,
/// fleet operational tCO2/day, and peak concurrent grid import.
#[test]
fn fleet_totals_agree_with_cosim_environment_oracle() {
    let fleet = paper_fleet();
    let plan = vec![
        Composition::new(4, 0.0, 7_500.0),
        Composition::new(0, 12_000.0, 37_500.0),
    ];
    let result = fleet.evaluator().evaluate(&plan);

    // Each member under its own simulation config — exactly what the
    // fleet evaluator used.
    let mut env = Environment::new();
    for (member, comp) in fleet.members.iter().zip(&plan) {
        env.add_microgrid(
            member.site_name(),
            build_cosim_microgrid(&member.data, &member.load, comp, &member.config.sim),
        );
    }
    let step = fleet.members[0].data.step();
    let ci: Vec<_> = fleet.members.iter().map(|m| &m.data.ci_g_per_kwh).collect();
    let n = fleet.n_sites();
    let mut site_kg = vec![0.0f64; n];
    let mut site_import_mwh = vec![0.0f64; n];
    let mut peak_import_kw = 0.0f64;
    env.run(
        SimTime::START,
        SimDuration::from_days(365),
        step,
        |i, rec| {
            let kwh = rec.grid_import().kw() * rec.dt.hours();
            site_import_mwh[i] += kwh / 1e3;
            site_kg[i] += kwh * ci[i].at(rec.t) / 1e3;
        },
        |f| peak_import_kw = peak_import_kw.max(f.total_import.kw()),
    );

    for (s, name) in fleet.names.iter().enumerate() {
        assert!(
            rel_close(result.fleet.site_import_mwh[s], site_import_mwh[s], 1e-9),
            "{name}: import {} vs cosim {}",
            result.fleet.site_import_mwh[s],
            site_import_mwh[s]
        );
    }
    let cosim_t_day = site_kg.iter().sum::<f64>() / 1e3 / 365.0;
    assert!(
        rel_close(result.fleet.operational_t_per_day, cosim_t_day, 1e-9),
        "fleet op t/day {} vs cosim {} (rel {:e})",
        result.fleet.operational_t_per_day,
        cosim_t_day,
        rel_error(result.fleet.operational_t_per_day, cosim_t_day)
    );
    let peak = result
        .fleet
        .peak_concurrent_import_kw
        .expect("tracked by default");
    assert!(
        rel_close(peak, peak_import_kw, 1e-9),
        "peak concurrent import {peak} vs cosim {peak_import_kw}"
    );
}

/// The fleet sweep's uniform assignment reproduces `sweep_all` per site —
/// the multi-site analogue really is a superset of the single-site sweep.
#[test]
fn uniform_fleet_sweep_embeds_single_site_sweeps() {
    let mut scenario = FleetScenario::paper();
    for m in &mut scenario.members {
        m.scenario.space = CompositionSpace::tiny();
    }
    let fleet = scenario.prepare();
    let results = fleet_sweep(&fleet, FleetAssignment::Uniform);
    assert_eq!(results.len(), 27);
    for (s, member) in fleet.members.iter().enumerate() {
        for (r, x) in results.iter().zip(sweep_all(member)) {
            assert_eq!(r.per_site[s].composition, x.composition);
            assert_eq!(r.per_site[s].metrics, x.metrics, "site {}", fleet.names[s]);
        }
    }
}

//! Protocol-level harness for the optimization daemon: an in-process
//! client drives [`Server::serve_connection`] through the **real** wire
//! format (and once over real TCP), pinning
//!
//! * study results bit-identical to standalone `FleetProblem` +
//!   NSGA-II runs with the same seeds, sequentially and multiplexed;
//! * graceful degradation under fault injection — malformed frames,
//!   unknown presets, infeasible caps, oversized lines, mid-stream
//!   disconnects, and cache eviction under concurrent load never crash
//!   the daemon or leak across request ids;
//! * the admission queue and cancellation lifecycle — `Queued` frames
//!   past the process-wide cap, `Cancel` yielding `Cancelled` (never
//!   `Done`) with the completed prefix bit-identical, `UnknownStudy`
//!   errors for bad targets, and disconnects cancelling in-flight work;
//! * genuinely concurrent connections, over in-process pipes sharing one
//!   daemon and over real TCP.

use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::thread;

use microgrid_opt::core::wire::{
    encode_request, ErrorCode, FleetSpec, PlanPoint, Request, RequestFrame, Response,
    ResponseFrame, StudyBudget, StudyRequest, WIRE_VERSION,
};
use microgrid_opt::core::FleetScenario;
use microgrid_opt::optimizer::{Nsga2Config, Nsga2Optimizer};
use microgrid_opt::prelude::*;
use microgrid_opt::server::{pipe, ConnectionOutcome, Server, ServerConfig};

/// A tiny per-site space (8 compositions, 64 fleet plans) so studies are
/// fast enough to run many per test.
fn tiny_space() -> CompositionSpace {
    CompositionSpace {
        wind_choices: vec![0, 4],
        solar_choices_kw: vec![0.0, 16_000.0],
        battery_choices_kwh: vec![0.0, 22_500.0],
    }
}

fn tiny_study(seed: u64) -> StudyRequest {
    StudyRequest {
        fleet: FleetSpec::Preset("paper".into()),
        space: Some(tiny_space()),
        objectives: None,
        budget: StudyBudget {
            population_size: 8,
            max_trials: 24,
            seed,
        },
        peak_cap_kw: None,
        stream: true,
    }
}

fn frame(id: &str, req: Request) -> RequestFrame {
    RequestFrame {
        v: WIRE_VERSION,
        id: id.into(),
        req,
    }
}

/// What the daemon must answer for a study: the final front computed by a
/// standalone `FleetProblem` + NSGA-II run with the same seed.
fn standalone_front(study: &StudyRequest) -> Vec<PlanPoint> {
    let scenario = study.resolved_scenario().expect("valid study");
    let fleet = scenario.prepare();
    let mut problem = FleetProblem::new(&fleet);
    if let Some(cap) = study.peak_cap_kw {
        problem = problem.with_peak_cap_kw(cap);
    }
    let optimizer = Nsga2Optimizer::new(Nsga2Config {
        population_size: study.budget.population_size,
        max_trials: study.budget.max_trials,
        seed: study.budget.seed,
        ..Nsga2Config::default()
    });
    let mut last: Vec<PlanPoint> = Vec::new();
    optimizer.run_observed(&problem, &mut |view| {
        last = view
            .front
            .iter()
            .map(|(genome, eval)| PlanPoint {
                genome: genome.clone(),
                plan: genome
                    .iter()
                    .zip(&fleet.members)
                    .map(|(&g, m)| m.config.space.at(g as usize))
                    .collect(),
                objectives: eval.objectives.clone(),
                violation: eval.total_violation(),
            })
            .collect();
    });
    last
}

/// In-process client over a pipe, with the server loop on its own thread.
struct Harness {
    writer: pipe::PipeWriter,
    reader: BufReader<pipe::PipeReader>,
    server: Arc<Server>,
    join: thread::JoinHandle<std::io::Result<ConnectionOutcome>>,
}

impl Harness {
    fn start(config: ServerConfig) -> Self {
        let server = Arc::new(Server::new(config));
        let (client, server_end) = pipe::duplex();
        let join = {
            let server = Arc::clone(&server);
            thread::spawn(move || server.serve_connection(server_end.reader, server_end.writer))
        };
        Self {
            writer: client.writer,
            reader: BufReader::new(client.reader),
            server,
            join,
        }
    }

    fn send(&mut self, frame: &RequestFrame) {
        writeln!(self.writer, "{}", encode_request(frame)).unwrap();
    }

    fn send_raw(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
    }

    fn recv(&mut self) -> ResponseFrame {
        let mut line = String::new();
        assert!(
            self.reader.read_line(&mut line).unwrap() > 0,
            "server closed the stream unexpectedly"
        );
        let frame: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!(frame.v, WIRE_VERSION);
        frame
    }

    /// Read frames until `Done` (or `Error`) for each listed id, returning
    /// each id's final front and checking per-id frame ordering.
    fn collect_done(&mut self, ids: &[&str]) -> Vec<Vec<PlanPoint>> {
        let mut fronts: Vec<Option<Vec<PlanPoint>>> = vec![None; ids.len()];
        let mut accepted = vec![false; ids.len()];
        let mut last_stream: Vec<Option<Vec<PlanPoint>>> = vec![None; ids.len()];
        while fronts.iter().any(Option::is_none) {
            let frame = self.recv();
            let k = ids
                .iter()
                .position(|id| *id == frame.id)
                .unwrap_or_else(|| panic!("frame for unknown id {:?}", frame.id));
            match frame.resp {
                Response::Queued(_) => {
                    assert!(!accepted[k], "Queued after Accepted for {}", frame.id);
                }
                Response::Accepted(a) => {
                    assert!(!accepted[k], "duplicate Accepted for {}", frame.id);
                    accepted[k] = true;
                    assert_eq!(a.plan_space, 64);
                }
                Response::Front(f) => {
                    assert!(accepted[k], "Front before Accepted for {}", frame.id);
                    last_stream[k] = Some(f.front);
                }
                Response::Done(d) => {
                    assert!(accepted[k], "Done before Accepted for {}", frame.id);
                    assert!(
                        (8..=24).contains(&d.sampled_trials),
                        "budget overrun for {}",
                        frame.id
                    );
                    // The final streamed front and the Done front agree.
                    assert_eq!(last_stream[k].as_ref(), Some(&d.front), "id {}", frame.id);
                    fronts[k] = Some(d.front);
                }
                other => panic!("unexpected frame for {}: {other:?}", frame.id),
            }
        }
        fronts.into_iter().map(Option::unwrap).collect()
    }

    fn shutdown(mut self) {
        self.send(&frame("bye", Request::Shutdown));
        loop {
            let f = self.recv();
            if matches!(f.resp, Response::Bye) {
                break;
            }
        }
        assert_eq!(
            self.join.join().unwrap().unwrap(),
            ConnectionOutcome::Shutdown
        );
    }
}

#[test]
fn ping_pong_shutdown() {
    let mut h = Harness::start(ServerConfig::default());
    h.send(&frame("p1", Request::Ping));
    let f = h.recv();
    assert_eq!(f.id, "p1");
    assert_eq!(f.resp, Response::Pong);
    h.shutdown();
}

#[test]
fn study_over_the_wire_is_bit_identical_to_standalone() {
    let mut h = Harness::start(ServerConfig::default());
    let study = tiny_study(42);
    let expected = standalone_front(&study);
    h.send(&frame("s1", Request::Study(study)));
    let fronts = h.collect_done(&["s1"]);
    assert_eq!(fronts[0], expected, "daemon front != standalone front");
    assert!(!fronts[0].is_empty());
    h.shutdown();
}

#[test]
fn multiplexed_studies_stay_bit_identical_and_share_the_cache() {
    let mut h = Harness::start(ServerConfig::default());
    let seeds = [7u64, 8, 9, 10];
    let expected: Vec<Vec<PlanPoint>> = seeds
        .iter()
        .map(|&s| standalone_front(&tiny_study(s)))
        .collect();
    // Fire all studies before reading anything: they run concurrently and
    // their response frames interleave on the wire.
    let ids: Vec<String> = seeds.iter().map(|s| format!("s{s}")).collect();
    for (id, &seed) in ids.iter().zip(&seeds) {
        h.send(&frame(id, Request::Study(tiny_study(seed))));
    }
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let fronts = h.collect_done(&id_refs);
    for ((front, want), id) in fronts.iter().zip(&expected).zip(&ids) {
        assert_eq!(front, want, "id {id} diverged from standalone");
    }
    // Different seeds genuinely searched differently somewhere.
    assert!(expected.windows(2).any(|w| w[0] != w[1]));
    // All four studies used one prepared fleet: two sites, cached once.
    assert_eq!(h.server.cache().len(), 2);
    let server = Arc::clone(&h.server);
    h.shutdown(); // joins every worker, so the counter is final
    assert_eq!(server.studies_done(), 4);
}

#[test]
fn structured_errors_never_kill_the_connection() {
    let mut h = Harness::start(ServerConfig {
        max_frame_bytes: 512,
        ..ServerConfig::default()
    });

    // Malformed JSON: still answered, id unknowable.
    h.send_raw("{definitely not json");
    let f = h.recv();
    assert_eq!(f.id, "");
    let Response::Error(e) = f.resp else {
        panic!("want error")
    };
    assert_eq!(e.code, ErrorCode::MalformedFrame);

    // Unknown field: strict reject, id salvaged.
    h.send_raw(r#"{"v":1,"id":"uf","req":"Ping","turbo":true}"#);
    let f = h.recv();
    assert_eq!(f.id, "uf");
    let Response::Error(e) = f.resp else {
        panic!("want error")
    };
    assert_eq!(e.code, ErrorCode::MalformedFrame);

    // Future protocol version.
    h.send_raw(r#"{"v":99,"id":"v9","req":"Ping"}"#);
    let f = h.recv();
    assert_eq!(f.id, "v9");
    let Response::Error(e) = f.resp else {
        panic!("want error")
    };
    assert_eq!(e.code, ErrorCode::UnsupportedVersion);

    // Unknown preset.
    let mut s = tiny_study(1);
    s.fleet = FleetSpec::Preset("atlantis".into());
    h.send(&frame("up", Request::Study(s)));
    let f = h.recv();
    assert_eq!(f.id, "up");
    let Response::Error(e) = f.resp else {
        panic!("want error")
    };
    assert_eq!(e.code, ErrorCode::UnknownPreset);

    // Infeasible cap.
    let mut s = tiny_study(1);
    s.peak_cap_kw = Some(-250.0);
    h.send(&frame("cap", Request::Study(s)));
    let f = h.recv();
    assert_eq!(f.id, "cap");
    let Response::Error(e) = f.resp else {
        panic!("want error")
    };
    assert_eq!(e.code, ErrorCode::InvalidRequest);

    // Oversized frame: error, resynchronize, keep serving.
    h.send_raw(&format!(
        r#"{{"v":1,"id":"big","req":"{}""#,
        "x".repeat(2048)
    ));
    let f = h.recv();
    let Response::Error(e) = f.resp else {
        panic!("want error")
    };
    assert_eq!(e.code, ErrorCode::Oversized);

    // The connection still works end to end after every fault.
    h.send(&frame("alive", Request::Ping));
    let f = h.recv();
    assert_eq!((f.id.as_str(), f.resp), ("alive", Response::Pong));
    h.shutdown();
}

#[test]
fn mid_stream_disconnect_degrades_gracefully() {
    let server = Arc::new(Server::new(ServerConfig::default()));
    let (client, server_end) = pipe::duplex();
    let join = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve_connection(server_end.reader, server_end.writer))
    };
    let mut writer = client.writer;
    let mut reader = BufReader::new(client.reader);
    writeln!(
        writer,
        "{}",
        encode_request(&frame("gone", Request::Study(tiny_study(3))))
    )
    .unwrap();
    // Wait for acceptance so the study is genuinely in flight...
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let f: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
    assert!(matches!(f.resp, Response::Accepted(_)));
    // ...then vanish: close both halves mid-study.
    drop(reader);
    drop(writer);
    // The server finishes the study quietly (writes swallowed) and
    // returns Eof without panicking.
    assert_eq!(join.join().unwrap().unwrap(), ConnectionOutcome::Eof);
    assert_eq!(server.studies_done(), 1);
}

#[test]
fn concurrent_cache_eviction_never_corrupts_results() {
    // Cache capacity 1 with three distinct two-member fleets in flight:
    // every study evicts another's entries while they run, yet each must
    // match its standalone run bit for bit (in-flight Arcs keep evicted
    // scenarios alive).
    let mut h = Harness::start(ServerConfig {
        cache_capacity: 1,
        ..ServerConfig::default()
    });
    let studies: Vec<StudyRequest> = (0..3)
        .map(|k| {
            let mut scenario = FleetScenario::paper();
            for m in &mut scenario.members {
                m.scenario.seed = 100 + k; // distinct weather/workload seeds
            }
            StudyRequest {
                fleet: FleetSpec::Inline(scenario),
                ..tiny_study(5)
            }
        })
        .collect();
    let expected: Vec<Vec<PlanPoint>> = studies.iter().map(standalone_front).collect();
    let ids = ["e0", "e1", "e2"];
    for (id, s) in ids.iter().zip(&studies) {
        h.send(&frame(id, Request::Study(s.clone())));
    }
    let fronts = h.collect_done(&ids);
    for ((front, want), id) in fronts.iter().zip(&expected).zip(&ids) {
        assert_eq!(front, want, "id {id} corrupted under eviction");
    }
    // The jittered fleets must not all agree (the cache didn't collide).
    assert!(expected.windows(2).any(|w| w[0] != w[1]));
    // Re-running the first study proves eviction actually happened: a
    // capacity-1 cache cannot hold both of its member sites, so at least
    // one must re-prepare — and the result is still bit-identical.
    h.send(&frame("again", Request::Study(studies[0].clone())));
    let mut misses = None;
    let mut redo = None;
    while redo.is_none() {
        let f = h.recv();
        assert_eq!(f.id, "again");
        match f.resp {
            Response::Accepted(a) => misses = Some(a.prep_cache_misses),
            Response::Front(_) => {}
            Response::Done(d) => redo = Some(d.front),
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    assert!(misses.unwrap() >= 1, "capacity 1 must have evicted a site");
    assert_eq!(redo.unwrap(), expected[0]);
    h.shutdown();
}

/// A study big enough that a `Cancel` sent after its first streamed
/// `Front` always lands before it finishes (cancellation is checked at
/// every generation boundary, and this budget spans ~50 generations).
fn long_study(seed: u64) -> StudyRequest {
    let mut s = tiny_study(seed);
    s.budget.max_trials = 400;
    s
}

#[test]
fn queued_study_reports_position_then_cancel_frees_the_slot() {
    // Cap 1: the second study must queue behind the first; cancelling
    // the first lets the second through, bit-identical to standalone.
    let mut h = Harness::start(ServerConfig {
        max_concurrent: 1,
        ..ServerConfig::default()
    });
    let expected = standalone_front(&tiny_study(21));
    h.send(&frame("s1", Request::Study(long_study(20))));
    // s1 is admitted before s2 is even sent, so the ordering below is
    // deterministic: s1 Accepted, then s2 Queued with one study ahead.
    let f = h.recv();
    assert_eq!(f.id, "s1");
    assert!(matches!(f.resp, Response::Accepted(_)), "got {f:?}");
    h.send(&frame("s2", Request::Study(tiny_study(21))));
    let mut queued_ahead = None;
    // Frames from s1 (Fronts) interleave until s2's Queued arrives.
    while queued_ahead.is_none() {
        let f = h.recv();
        match (f.id.as_str(), f.resp) {
            ("s1", Response::Front(_)) => {}
            ("s2", Response::Queued(q)) => queued_ahead = Some(q.ahead),
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    assert_eq!(queued_ahead, Some(1), "one study ran ahead of s2");

    h.send(&frame("c", Request::Cancel("s1".into())));
    let mut s1_open = true;
    let mut s2_front = None;
    while s2_front.is_none() {
        let f = h.recv();
        match (f.id.as_str(), f.resp) {
            ("s1", Response::Front(_)) if s1_open => {}
            ("s1", Response::Cancelled(c)) => {
                assert!(s1_open, "duplicate terminal frame for s1");
                assert!(c.sampled_trials < 400, "cancel landed after the budget");
                s1_open = false;
            }
            ("s1", Response::Done(_)) => panic!("cancelled study answered Done"),
            ("s2", Response::Accepted(_) | Response::Front(_)) => {}
            ("s2", Response::Done(d)) => s2_front = Some(d.front),
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    assert!(!s1_open, "s1 never Cancelled");
    assert_eq!(s2_front.unwrap(), expected, "queued study diverged");
    let server = Arc::clone(&h.server);
    h.shutdown();
    assert_eq!(server.studies_cancelled(), 1);
    assert!(server.queue_depth_peak() >= 1, "s2 never actually queued");
}

#[test]
fn cancel_of_unknown_or_finished_study_is_a_structured_error() {
    let mut h = Harness::start(ServerConfig::default());

    // Never-seen target.
    h.send(&frame("c1", Request::Cancel("nope".into())));
    let f = h.recv();
    assert_eq!(f.id, "c1");
    let Response::Error(e) = f.resp else {
        panic!("want error, got {f:?}")
    };
    assert_eq!(e.code, ErrorCode::UnknownStudy);

    // Already-finished target: the registry entry is retired with the
    // terminal frame, so a late Cancel gets the same structured error.
    h.send(&frame("s1", Request::Study(tiny_study(31))));
    h.collect_done(&["s1"]);
    h.send(&frame("c2", Request::Cancel("s1".into())));
    let f = h.recv();
    assert_eq!(f.id, "c2");
    let Response::Error(e) = f.resp else {
        panic!("want error, got {f:?}")
    };
    assert_eq!(e.code, ErrorCode::UnknownStudy);

    // The connection is still healthy.
    h.send(&frame("alive", Request::Ping));
    let f = h.recv();
    assert_eq!((f.id.as_str(), f.resp), ("alive", Response::Pong));
    h.shutdown();
}

#[test]
fn multiple_connections_share_one_daemon_bit_identically() {
    // Three pipe connections against one Server, two studies each, all
    // in flight together past the process-wide cap of 2.
    let server = Arc::new(Server::new(ServerConfig {
        max_concurrent: 2,
        ..ServerConfig::default()
    }));
    let seeds: [[u64; 2]; 3] = [[40, 41], [42, 43], [44, 45]];
    let clients: Vec<_> = seeds
        .iter()
        .map(|&pair| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                let (client, server_end) = pipe::duplex();
                let serve = {
                    let server = Arc::clone(&server);
                    thread::spawn(move || {
                        server.serve_connection(server_end.reader, server_end.writer)
                    })
                };
                let mut writer = client.writer;
                let mut reader = BufReader::new(client.reader);
                for (k, &seed) in pair.iter().enumerate() {
                    writeln!(
                        writer,
                        "{}",
                        encode_request(&frame(&format!("s{k}"), Request::Study(tiny_study(seed))))
                    )
                    .unwrap();
                }
                let mut fronts: [Option<Vec<PlanPoint>>; 2] = [None, None];
                while fronts.iter().any(Option::is_none) {
                    let mut line = String::new();
                    assert!(reader.read_line(&mut line).unwrap() > 0, "daemon hung up");
                    let f: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
                    let k: usize = f.id[1..].parse().unwrap();
                    match f.resp {
                        Response::Queued(_) | Response::Accepted(_) | Response::Front(_) => {}
                        Response::Done(d) => fronts[k] = Some(d.front),
                        other => panic!("unexpected frame for {}: {other:?}", f.id),
                    }
                }
                drop(writer);
                drop(reader);
                assert_eq!(serve.join().unwrap().unwrap(), ConnectionOutcome::Eof);
                fronts.map(Option::unwrap)
            })
        })
        .collect();
    for (client, pair) in clients.into_iter().zip(&seeds) {
        let fronts = client.join().unwrap();
        for (front, &seed) in fronts.iter().zip(pair) {
            assert_eq!(
                front,
                &standalone_front(&tiny_study(seed)),
                "seed {seed} diverged across connections"
            );
        }
    }
    assert_eq!(server.studies_done(), 6);
    assert!(
        server.peak_in_flight() <= 2,
        "process-wide cap leaked across connections"
    );
}

#[test]
fn disconnect_mid_study_cancels_it() {
    let server = Arc::new(Server::new(ServerConfig::default()));
    let (client, server_end) = pipe::duplex();
    let join = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve_connection(server_end.reader, server_end.writer))
    };
    let mut writer = client.writer;
    let mut reader = BufReader::new(client.reader);
    writeln!(
        writer,
        "{}",
        encode_request(&frame("gone", Request::Study(long_study(50))))
    )
    .unwrap();
    // Wait for the first streamed front so the study is mid-search...
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0);
        let f: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
        if matches!(f.resp, Response::Front(_)) {
            break;
        }
    }
    // ...then vanish. The disconnect must cancel the study at the next
    // generation boundary instead of burning the remaining ~47
    // generations into a closed pipe.
    drop(reader);
    drop(writer);
    assert_eq!(join.join().unwrap().unwrap(), ConnectionOutcome::Eof);
    assert_eq!(server.studies_cancelled(), 1);
    assert_eq!(server.studies_done(), 1, "cancelled still counts as done");
}

#[test]
fn tcp_connections_are_served_concurrently() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Arc::new(Server::new(ServerConfig::default()));
    let join = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve_tcp(listener))
    };

    let ping = |stream: &mut std::net::TcpStream, id: &str| {
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        writeln!(stream, "{}", encode_request(&frame(id, Request::Ping))).unwrap();
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0);
        let f: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!((f.id.as_str(), f.resp), (id, Response::Pong));
    };

    // With the old sequential accept loop, B's Ping would hang until A
    // hung up; a concurrent acceptor answers both while both are open.
    let mut a = std::net::TcpStream::connect(addr).unwrap();
    let mut b = std::net::TcpStream::connect(addr).unwrap();
    ping(&mut a, "a");
    ping(&mut b, "b");

    // Shutdown drains already-accepted connections, so close A first.
    drop(a);
    let mut reader = BufReader::new(b.try_clone().unwrap());
    writeln!(b, "{}", encode_request(&frame("q", Request::Shutdown))).unwrap();
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap() > 0 {
        let f: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
        if matches!(f.resp, Response::Bye) {
            break;
        }
        line.clear();
    }
    drop(reader);
    drop(b);
    join.join().unwrap().unwrap();
}

#[test]
fn tcp_transport_end_to_end() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Arc::new(Server::new(ServerConfig::default()));
    let join = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve_tcp(listener))
    };

    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let study = tiny_study(11);
    let expected = standalone_front(&study);
    for f in [
        frame("ping", Request::Ping),
        frame("tcp1", Request::Study(study)),
    ] {
        writeln!(writer, "{}", encode_request(&f)).unwrap();
    }
    let mut done: Option<Vec<PlanPoint>> = None;
    while done.is_none() {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0);
        let f: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
        if let Response::Done(d) = f.resp {
            assert_eq!(f.id, "tcp1");
            done = Some(d.front);
        }
    }
    assert_eq!(done.unwrap(), expected, "TCP study != standalone");
    writeln!(writer, "{}", encode_request(&frame("q", Request::Shutdown))).unwrap();
    let mut saw_bye = false;
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap() > 0 {
        let f: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
        saw_bye |= matches!(f.resp, Response::Bye);
        line.clear();
    }
    assert!(saw_bye, "no Bye before close");
    join.join().unwrap().unwrap();
}

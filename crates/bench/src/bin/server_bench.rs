//! Emit `BENCH_server.json`: daemon throughput in studies per second with
//! several NSGA-II studies multiplexed over one connection, versus the
//! same studies answered strictly one at a time — so the cost (or gain)
//! of the concurrency layer is measured, not assumed.
//!
//! ```text
//! cargo run --release -p mgopt-bench --bin server_bench
//! ```
//!
//! The workload is 8 studies over the shared two-site paper fleet with a
//! `max_concurrent = 4` daemon, so the recorded `in_flight_peak` proves
//! at least 4 studies genuinely overlapped. Every daemon front is
//! checked bit-identical against a standalone `FleetProblem` + NSGA-II
//! run with the same seed (`agreement`), and the Accepted frames surface
//! the prepared-cache hit rate (one fleet → 2 misses, then hits only).
//! `MGOPT_FAST=1` shrinks budgets for smoke runs; `bench_guard` enforces
//! the committed floor on `speedup` plus the peak/agreement/cache
//! invariants.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use mgopt_core::wire::{
    encode_request, FleetSpec, PlanPoint, Request, RequestFrame, Response, ResponseFrame,
    StudyBudget, StudyRequest, WIRE_VERSION,
};
use mgopt_microgrid::CompositionSpace;
use mgopt_optimizer::{Nsga2Config, Nsga2Optimizer};
use mgopt_server::{pipe, Server, ServerConfig};
use serde::Serialize;

/// The artifact schema checked by `bench_guard`.
#[derive(Debug, Serialize)]
struct ServerBench {
    /// Studies per timed batch.
    studies: usize,
    population: usize,
    max_trials: usize,
    sites: usize,
    plan_space: u64,
    /// Daemon concurrency limit during the multiplexed run.
    max_concurrent: usize,
    /// High-water mark of genuinely overlapping studies (must reach
    /// `max_concurrent` for the throughput number to mean anything).
    in_flight_peak: usize,
    /// Wall-clock of the multiplexed batch, min over samples, ms.
    concurrent_ms_min: f64,
    /// Wall-clock of the same batch with each `Done` awaited before the
    /// next request, min over samples, ms.
    sequential_ms_min: f64,
    /// `studies / concurrent_ms_min`, in studies per second.
    studies_per_sec: f64,
    /// `sequential_ms_min / concurrent_ms_min`. On a single-core runner
    /// the studies are CPU-bound so this hovers near 1.0; the committed
    /// floor guards against the concurrency layer growing real overhead.
    speedup: f64,
    /// Prepared-cache traffic summed over every Accepted frame of the
    /// timed runs.
    prep_cache_hits: u64,
    prep_cache_misses: u64,
    prep_cache_hit_rate: f64,
    /// `true` when every daemon front matched its standalone run bit for
    /// bit.
    agreement: bool,
}

fn study(seed: u64, population_size: usize, max_trials: usize) -> StudyRequest {
    StudyRequest {
        fleet: FleetSpec::Preset("paper".into()),
        space: Some(CompositionSpace {
            wind_choices: vec![0, 4],
            solar_choices_kw: vec![0.0, 16_000.0],
            battery_choices_kwh: vec![0.0, 22_500.0],
        }),
        objectives: None,
        budget: StudyBudget {
            population_size,
            max_trials,
            seed,
        },
        peak_cap_kw: None,
        stream: false,
    }
}

/// The front a standalone (no daemon) run produces for `study`.
fn standalone_front(study: &StudyRequest) -> Vec<PlanPoint> {
    let fleet = study.resolved_scenario().expect("valid study").prepare();
    let problem = mgopt_core::FleetProblem::new(&fleet);
    let optimizer = Nsga2Optimizer::new(Nsga2Config {
        population_size: study.budget.population_size,
        max_trials: study.budget.max_trials,
        seed: study.budget.seed,
        ..Nsga2Config::default()
    });
    let mut last = Vec::new();
    optimizer.run_observed(&problem, &mut |view| {
        last = view
            .front
            .iter()
            .map(|(genome, eval)| PlanPoint {
                genome: genome.clone(),
                plan: genome
                    .iter()
                    .zip(&fleet.members)
                    .map(|(&g, m)| m.config.space.at(g as usize))
                    .collect(),
                objectives: eval.objectives.clone(),
                violation: eval.total_violation(),
            })
            .collect();
    });
    last
}

/// Stats of one timed batch through the daemon.
struct BatchRun {
    ms: f64,
    fronts: Vec<Vec<PlanPoint>>,
    hits: u64,
    misses: u64,
    peak: usize,
    plan_space: u64,
    sites: usize,
}

/// Drive `studies` through a fresh daemon over the in-process pipe.
/// `sequential` awaits each `Done` before the next request.
fn run_batch(studies: &[StudyRequest], max_concurrent: usize, sequential: bool) -> BatchRun {
    let server = Arc::new(Server::new(ServerConfig {
        max_concurrent,
        ..ServerConfig::default()
    }));
    let (client, server_end) = pipe::duplex();
    let join = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.serve_connection(server_end.reader, server_end.writer))
    };
    let mut writer = client.writer;
    let mut reader = BufReader::new(client.reader);

    let mut fronts: Vec<Option<Vec<PlanPoint>>> = vec![None; studies.len()];
    let (mut hits, mut misses) = (0u64, 0u64);
    let (mut plan_space, mut sites) = (0u64, 0usize);
    let t0 = Instant::now();
    let pump = |reader: &mut BufReader<pipe::PipeReader>,
                fronts: &mut Vec<Option<Vec<PlanPoint>>>,
                hits: &mut u64,
                misses: &mut u64,
                plan_space: &mut u64,
                sites: &mut usize,
                want_done: usize| {
        let mut done = 0usize;
        while done < want_done {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "daemon hung up");
            let frame: ResponseFrame = serde_json::from_str(line.trim_end()).unwrap();
            let k: usize = frame.id[1..].parse().unwrap();
            match frame.resp {
                Response::Accepted(a) => {
                    *hits += u64::from(a.prep_cache_hits);
                    *misses += u64::from(a.prep_cache_misses);
                    *plan_space = a.plan_space;
                    *sites = a.sites.len();
                }
                Response::Done(d) => {
                    fronts[k] = Some(d.front);
                    done += 1;
                }
                other => panic!("unexpected frame for {}: {other:?}", frame.id),
            }
        }
    };
    if sequential {
        for (k, s) in studies.iter().enumerate() {
            let frame = RequestFrame {
                v: WIRE_VERSION,
                id: format!("s{k}"),
                req: Request::Study(s.clone()),
            };
            writeln!(writer, "{}", encode_request(&frame)).unwrap();
            pump(
                &mut reader,
                &mut fronts,
                &mut hits,
                &mut misses,
                &mut plan_space,
                &mut sites,
                1,
            );
        }
    } else {
        for (k, s) in studies.iter().enumerate() {
            let frame = RequestFrame {
                v: WIRE_VERSION,
                id: format!("s{k}"),
                req: Request::Study(s.clone()),
            };
            writeln!(writer, "{}", encode_request(&frame)).unwrap();
        }
        pump(
            &mut reader,
            &mut fronts,
            &mut hits,
            &mut misses,
            &mut plan_space,
            &mut sites,
            studies.len(),
        );
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let peak = server.peak_in_flight();
    drop(writer);
    drop(reader);
    join.join().unwrap().unwrap();
    BatchRun {
        ms,
        fronts: fronts.into_iter().map(Option::unwrap).collect(),
        hits,
        misses,
        peak,
        plan_space,
        sites,
    }
}

fn main() {
    let fast = mgopt_bench::fast_mode();
    let n_studies = 8usize;
    let (population, max_trials) = if fast { (6, 18) } else { (10, 40) };
    let samples = if fast { 1 } else { 2 };
    let max_concurrent = 4usize;
    let studies: Vec<StudyRequest> = (0..n_studies as u64)
        .map(|k| study(k, population, max_trials))
        .collect();

    println!(
        "daemon throughput: {n_studies} studies, population {population}, \
         {max_trials} trials each, max_concurrent {max_concurrent}"
    );

    let expected: Vec<Vec<PlanPoint>> = studies.iter().map(standalone_front).collect();

    let mut concurrent_ms = f64::INFINITY;
    let mut sequential_ms = f64::INFINITY;
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut peak = 0usize;
    let (mut plan_space, mut sites) = (0u64, 0usize);
    let mut agreement = true;
    for _ in 0..samples {
        let conc = run_batch(&studies, max_concurrent, false);
        let seq = run_batch(&studies, 1, true);
        concurrent_ms = concurrent_ms.min(conc.ms);
        sequential_ms = sequential_ms.min(seq.ms);
        agreement &= conc.fronts == expected && seq.fronts == expected;
        hits += conc.hits + seq.hits;
        misses += conc.misses + seq.misses;
        peak = peak.max(conc.peak);
        plan_space = conc.plan_space;
        sites = conc.sites;
    }

    let bench = ServerBench {
        studies: n_studies,
        population,
        max_trials,
        sites,
        plan_space,
        max_concurrent,
        in_flight_peak: peak,
        concurrent_ms_min: concurrent_ms,
        sequential_ms_min: sequential_ms,
        studies_per_sec: n_studies as f64 / (concurrent_ms / 1e3),
        speedup: sequential_ms / concurrent_ms,
        prep_cache_hits: hits,
        prep_cache_misses: misses,
        prep_cache_hit_rate: if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        },
        agreement,
    };

    println!(
        "  multiplexed {:9.1} ms   ({:.2} studies/s, peak {} in flight)",
        bench.concurrent_ms_min, bench.studies_per_sec, bench.in_flight_peak
    );
    println!(
        "  sequential  {:9.1} ms   (speedup {:.2}x)",
        bench.sequential_ms_min, bench.speedup
    );
    println!(
        "  prep cache  {} hits / {} misses ({:.0}% hit rate)",
        bench.prep_cache_hits,
        bench.prep_cache_misses,
        bench.prep_cache_hit_rate * 100.0
    );
    println!(
        "  agreement with standalone runs: {}",
        if bench.agreement {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_server.json");
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench artifact");
    std::fs::write(&path, json + "\n").expect("write BENCH_server.json");
    println!("[artifact] {}", path.display());
}

//! Hydrogen production and storage.
//!
//! The paper (§3.3) names "additional technologies such as hydrogen
//! production and storage" as the first extension target of the framework.
//! This module implements that technology as a [`Storage`]: an
//! **electrolyzer** (charge path), a **tank** (energy buffer, stored as
//! hydrogen lower-heating-value energy), and a **fuel cell** (discharge
//! path). The defining characteristics vs batteries:
//!
//! * strongly *asymmetric* and *low* round-trip efficiency
//!   (~0.65 × ~0.55 ≈ 0.36) — hydrogen only pays off for long-duration
//!   shifting that batteries cannot reach;
//! * independent power (electrolyzer/fuel-cell rating) and energy (tank)
//!   sizing — enormous tanks are cheap compared to battery capacity;
//! * a minimum electrolyzer load below which no hydrogen is produced.

use mgopt_units::{Energy, Power, SimDuration};
use serde::{Deserialize, Serialize};

use crate::Storage;

/// Hydrogen system parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HydrogenParams {
    /// Electrolyzer electrical rating, kW.
    pub electrolyzer_kw: f64,
    /// Electrolyzer efficiency (electric → H2 LHV), in `(0, 1]`.
    pub electrolyzer_efficiency: f64,
    /// Minimum electrolyzer load as a fraction of its rating.
    pub electrolyzer_min_load: f64,
    /// Fuel-cell electrical rating, kW.
    pub fuel_cell_kw: f64,
    /// Fuel-cell efficiency (H2 LHV → electric), in `(0, 1]`.
    pub fuel_cell_efficiency: f64,
    /// Initial tank fill fraction.
    pub initial_fill: f64,
}

impl Default for HydrogenParams {
    /// PEM-class defaults.
    fn default() -> Self {
        Self {
            electrolyzer_kw: 1_000.0,
            electrolyzer_efficiency: 0.65,
            electrolyzer_min_load: 0.05,
            fuel_cell_kw: 1_000.0,
            fuel_cell_efficiency: 0.55,
            initial_fill: 0.5,
        }
    }
}

impl HydrogenParams {
    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.electrolyzer_kw <= 0.0 || self.fuel_cell_kw <= 0.0 {
            return Err("power ratings must be positive".into());
        }
        for (name, eff) in [
            ("electrolyzer", self.electrolyzer_efficiency),
            ("fuel cell", self.fuel_cell_efficiency),
        ] {
            if !(0.0..=1.0).contains(&eff) || eff == 0.0 {
                return Err(format!("{name} efficiency must be in (0, 1]"));
            }
        }
        if !(0.0..1.0).contains(&self.electrolyzer_min_load) {
            return Err("min load must be in [0, 1)".into());
        }
        if !(0.0..=1.0).contains(&self.initial_fill) {
            return Err("initial fill must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// A hydrogen storage system (electrolyzer + tank + fuel cell).
#[derive(Debug, Clone)]
pub struct HydrogenStorage {
    params: HydrogenParams,
    tank_capacity: Energy,
    fill: f64,
    charged: Energy,
    discharged: Energy,
}

impl HydrogenStorage {
    /// Create a system with a tank of `tank_capacity` (H2 energy, LHV).
    ///
    /// # Panics
    /// Panics on invalid parameters or non-positive capacity.
    pub fn new(tank_capacity: Energy, params: HydrogenParams) -> Self {
        assert!(tank_capacity.kwh() > 0.0, "tank capacity must be positive");
        params.validate().expect("invalid hydrogen parameters");
        Self {
            fill: params.initial_fill,
            params,
            tank_capacity,
            charged: Energy::ZERO,
            discharged: Energy::ZERO,
        }
    }

    /// Defaults with a given tank size.
    pub fn with_defaults(tank_capacity: Energy) -> Self {
        Self::new(tank_capacity, HydrogenParams::default())
    }

    /// Round-trip efficiency of the full path.
    pub fn round_trip_efficiency(&self) -> f64 {
        self.params.electrolyzer_efficiency * self.params.fuel_cell_efficiency
    }

    /// The parameter set.
    pub fn params(&self) -> &HydrogenParams {
        &self.params
    }
}

impl Storage for HydrogenStorage {
    fn capacity(&self) -> Energy {
        self.tank_capacity
    }

    fn soc(&self) -> f64 {
        self.fill
    }

    fn min_soc(&self) -> f64 {
        0.0
    }

    fn update(&mut self, power: Power, dt: SimDuration) -> Power {
        if dt.is_zero() || power == Power::ZERO {
            return Power::ZERO;
        }
        let hours = dt.hours();
        let cap = self.tank_capacity.kwh();
        if power.kw() > 0.0 {
            // Electrolyzer: clamp to rating, honor the minimum load.
            let p = power.kw().min(self.params.electrolyzer_kw);
            if p < self.params.electrolyzer_min_load * self.params.electrolyzer_kw {
                return Power::ZERO;
            }
            let headroom_kwh = (1.0 - self.fill) * cap;
            let max_electric_kwh = headroom_kwh / self.params.electrolyzer_efficiency;
            let electric_kwh = (p * hours).min(max_electric_kwh);
            self.fill =
                (self.fill + electric_kwh * self.params.electrolyzer_efficiency / cap).min(1.0);
            self.charged += Energy::from_kwh(electric_kwh);
            Power::from_kw(electric_kwh / hours)
        } else {
            // Fuel cell: clamp to rating and tank contents.
            let p = (-power.kw()).min(self.params.fuel_cell_kw);
            let stored_kwh = self.fill * cap;
            let max_electric_kwh = stored_kwh * self.params.fuel_cell_efficiency;
            let electric_kwh = (p * hours).min(max_electric_kwh);
            self.fill =
                (self.fill - electric_kwh / self.params.fuel_cell_efficiency / cap).max(0.0);
            self.discharged += Energy::from_kwh(electric_kwh);
            -Power::from_kw(electric_kwh / hours)
        }
    }

    fn charged_total(&self) -> Energy {
        self.charged
    }

    fn discharged_total(&self) -> Energy {
        self.discharged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration(3_600);

    fn system() -> HydrogenStorage {
        HydrogenStorage::new(
            Energy::from_kwh(10_000.0),
            HydrogenParams {
                initial_fill: 0.5,
                ..HydrogenParams::default()
            },
        )
    }

    #[test]
    fn round_trip_is_lossy_and_asymmetric() {
        let s = system();
        assert!((s.round_trip_efficiency() - 0.65 * 0.55).abs() < 1e-12);
        assert!(s.round_trip_efficiency() < 0.40, "hydrogen is lossy");
    }

    #[test]
    fn charging_fills_tank_through_electrolyzer() {
        let mut s = system();
        let got = s.update(Power::from_kw(500.0), DT);
        assert_eq!(got.kw(), 500.0);
        // 500 kWh electric * 0.65 = 325 kWh H2
        assert!((s.soc() - (0.5 + 325.0 / 10_000.0)).abs() < 1e-12);
    }

    #[test]
    fn discharge_limited_by_fuel_cell_rating() {
        let mut s = system();
        let got = s.update(Power::from_kw(-5_000.0), DT);
        assert_eq!(got.kw(), -1_000.0, "clamped to fuel-cell rating");
    }

    #[test]
    fn min_load_blocks_trickle_charging() {
        let mut s = system();
        // 5% of 1,000 kW = 50 kW minimum; a 20 kW request produces nothing.
        let got = s.update(Power::from_kw(20.0), DT);
        assert_eq!(got, Power::ZERO);
        assert_eq!(s.soc(), 0.5);
    }

    #[test]
    fn tank_empties_and_fills_at_rails() {
        let mut s = HydrogenStorage::new(
            Energy::from_kwh(1_000.0),
            HydrogenParams {
                initial_fill: 1.0,
                ..HydrogenParams::default()
            },
        );
        // Drain: 1,000 kWh H2 * 0.55 = 550 kWh electric available.
        let mut total = 0.0;
        loop {
            let got = s.update(Power::from_kw(-1_000.0), DT);
            if got.kw().abs() < 1e-9 {
                break;
            }
            total += -got.kw();
        }
        assert!((total - 550.0).abs() < 1e-6, "drained {total}");
        assert!(s.soc() < 1e-12);
        // Refill to full.
        loop {
            if s.update(Power::from_kw(1_000.0), DT).kw() < 1e-9 {
                break;
            }
        }
        assert!((s.soc() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn long_duration_store_outlasts_battery() {
        // A hydrogen tank can hold a week of 100 kW load in a way a same-
        // power battery of practical size cannot: 7*24*100/0.55 = 30.5 MWh
        // of H2.
        let mut s = HydrogenStorage::new(
            Energy::from_kwh(31_000.0),
            HydrogenParams {
                initial_fill: 1.0,
                ..HydrogenParams::default()
            },
        );
        let mut hours = 0;
        loop {
            let got = s.update(Power::from_kw(-100.0), DT);
            if got.kw().abs() < 50.0 {
                break;
            }
            hours += 1;
            if hours > 10_000 {
                break;
            }
        }
        assert!(hours >= 7 * 24, "sustained only {hours} h");
    }

    #[test]
    fn equivalent_cycles_from_throughput() {
        let mut s = system();
        s.update(Power::from_kw(-1_000.0), DT);
        let efc = s.equivalent_full_cycles();
        assert!((efc - 1_000.0 / 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_params_rejected() {
        let cases = [
            HydrogenParams {
                electrolyzer_efficiency: 0.0,
                ..HydrogenParams::default()
            },
            HydrogenParams {
                electrolyzer_min_load: 1.0,
                ..HydrogenParams::default()
            },
            HydrogenParams {
                fuel_cell_kw: -1.0,
                ..HydrogenParams::default()
            },
        ];
        for p in cases {
            assert!(p.validate().is_err());
        }
    }

    #[test]
    #[should_panic(expected = "tank capacity")]
    fn zero_tank_panics() {
        HydrogenStorage::with_defaults(Energy::ZERO);
    }
}

//! Pumped-hydro storage.
//!
//! The second "long-duration storage" technology the paper names (§3.3).
//! Modeled from physical reservoir parameters (volume, head) rather than a
//! nameplate energy figure: `E = ρ g V h η_turbine`, with separate pump
//! and turbine ratings and efficiencies. Compared to batteries: moderate
//! round-trip efficiency (~0.78), no meaningful cycle-life limit, and
//! energy capacity that scales with civil works instead of cells.

use mgopt_units::{Energy, Power, SimDuration};
use serde::{Deserialize, Serialize};

use crate::Storage;

/// Water density × gravity, J per m³ per meter of head.
const RHO_G: f64 = 1_000.0 * 9.81;

/// Pumped-hydro parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PumpedHydroParams {
    /// Usable upper-reservoir volume, m³.
    pub reservoir_m3: f64,
    /// Gross hydraulic head, m.
    pub head_m: f64,
    /// Pump electrical rating, kW.
    pub pump_kw: f64,
    /// Turbine electrical rating, kW.
    pub turbine_kw: f64,
    /// Pump efficiency (electric → potential), `(0, 1]`.
    pub pump_efficiency: f64,
    /// Turbine efficiency (potential → electric), `(0, 1]`.
    pub turbine_efficiency: f64,
    /// Initial fill fraction of the upper reservoir.
    pub initial_fill: f64,
}

impl Default for PumpedHydroParams {
    /// A small 20,000 m³ / 300 m demonstration plant (≈14 MWh usable).
    fn default() -> Self {
        Self {
            reservoir_m3: 20_000.0,
            head_m: 300.0,
            pump_kw: 2_000.0,
            turbine_kw: 2_000.0,
            pump_efficiency: 0.88,
            turbine_efficiency: 0.89,
            initial_fill: 0.5,
        }
    }
}

/// A pumped-hydro plant as a [`Storage`].
#[derive(Debug, Clone)]
pub struct PumpedHydro {
    params: PumpedHydroParams,
    /// Stored potential energy capacity (before turbine losses), kWh.
    potential_capacity_kwh: f64,
    fill: f64,
    charged: Energy,
    discharged: Energy,
}

impl PumpedHydro {
    /// Create a plant.
    ///
    /// # Panics
    /// Panics on non-physical parameters.
    pub fn new(params: PumpedHydroParams) -> Self {
        assert!(params.reservoir_m3 > 0.0 && params.head_m > 0.0);
        assert!(params.pump_kw > 0.0 && params.turbine_kw > 0.0);
        assert!(params.pump_efficiency > 0.0 && params.pump_efficiency <= 1.0);
        assert!(params.turbine_efficiency > 0.0 && params.turbine_efficiency <= 1.0);
        assert!((0.0..=1.0).contains(&params.initial_fill));
        // J -> kWh: / 3.6e6
        let potential_capacity_kwh = RHO_G * params.reservoir_m3 * params.head_m / 3.6e6;
        Self {
            fill: params.initial_fill,
            params,
            potential_capacity_kwh,
            charged: Energy::ZERO,
            discharged: Energy::ZERO,
        }
    }

    /// Round-trip efficiency.
    pub fn round_trip_efficiency(&self) -> f64 {
        self.params.pump_efficiency * self.params.turbine_efficiency
    }

    /// The parameter set.
    pub fn params(&self) -> &PumpedHydroParams {
        &self.params
    }
}

impl Storage for PumpedHydro {
    /// Capacity is reported as *deliverable electric* energy.
    fn capacity(&self) -> Energy {
        Energy::from_kwh(self.potential_capacity_kwh * self.params.turbine_efficiency)
    }

    fn soc(&self) -> f64 {
        self.fill
    }

    fn min_soc(&self) -> f64 {
        0.0
    }

    fn update(&mut self, power: Power, dt: SimDuration) -> Power {
        if dt.is_zero() || power == Power::ZERO {
            return Power::ZERO;
        }
        let hours = dt.hours();
        let cap = self.potential_capacity_kwh;
        if power.kw() > 0.0 {
            let p = power.kw().min(self.params.pump_kw);
            let headroom = (1.0 - self.fill) * cap;
            let max_electric = headroom / self.params.pump_efficiency;
            let electric = (p * hours).min(max_electric);
            self.fill = (self.fill + electric * self.params.pump_efficiency / cap).min(1.0);
            self.charged += Energy::from_kwh(electric);
            Power::from_kw(electric / hours)
        } else {
            let p = (-power.kw()).min(self.params.turbine_kw);
            let stored = self.fill * cap;
            let max_electric = stored * self.params.turbine_efficiency;
            let electric = (p * hours).min(max_electric);
            self.fill = (self.fill - electric / self.params.turbine_efficiency / cap).max(0.0);
            self.discharged += Energy::from_kwh(electric);
            -Power::from_kw(electric / hours)
        }
    }

    fn charged_total(&self) -> Energy {
        self.charged
    }

    fn discharged_total(&self) -> Energy {
        self.discharged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration(3_600);

    #[test]
    fn capacity_from_physics() {
        let plant = PumpedHydro::new(PumpedHydroParams::default());
        // 20,000 m³ * 300 m * 9810 J/m³/m = 58.86 GJ = 16,350 kWh potential;
        // deliverable = * 0.89.
        let expected_potential: f64 = 1_000.0 * 9.81 * 20_000.0 * 300.0 / 3.6e6;
        assert!((expected_potential - 16_350.0).abs() < 1.0);
        assert!((plant.capacity().kwh() - expected_potential * 0.89).abs() < 1.0);
    }

    #[test]
    fn round_trip_efficiency_mid_seventies() {
        let plant = PumpedHydro::new(PumpedHydroParams::default());
        let rt = plant.round_trip_efficiency();
        assert!((0.70..0.85).contains(&rt), "rt {rt}");
    }

    #[test]
    fn pump_and_turbine_ratings_enforced() {
        let mut plant = PumpedHydro::new(PumpedHydroParams::default());
        assert_eq!(plant.update(Power::from_kw(10_000.0), DT).kw(), 2_000.0);
        assert_eq!(plant.update(Power::from_kw(-10_000.0), DT).kw(), -2_000.0);
    }

    #[test]
    fn full_cycle_energy_conservation() {
        let mut plant = PumpedHydro::new(PumpedHydroParams {
            initial_fill: 0.0,
            ..PumpedHydroParams::default()
        });
        loop {
            if plant.update(Power::from_kw(2_000.0), DT).kw() < 1e-9 {
                break;
            }
        }
        let charged = plant.charged_total().kwh();
        loop {
            if plant.update(Power::from_kw(-2_000.0), DT).kw().abs() < 1e-9 {
                break;
            }
        }
        let discharged = plant.discharged_total().kwh();
        let rt = discharged / charged;
        assert!(
            (rt - plant.round_trip_efficiency()).abs() < 1e-6,
            "measured {rt}"
        );
    }

    #[test]
    fn reservoir_never_overfills_or_undershoots() {
        let mut plant = PumpedHydro::new(PumpedHydroParams::default());
        for i in 0..500 {
            let p = if i % 3 == 0 { 3_000.0 } else { -2_500.0 };
            plant.update(Power::from_kw(p), DT);
            assert!((0.0..=1.0 + 1e-12).contains(&plant.soc()));
        }
    }

    #[test]
    #[should_panic]
    fn zero_reservoir_panics() {
        PumpedHydro::new(PumpedHydroParams {
            reservoir_m3: 0.0,
            ..PumpedHydroParams::default()
        });
    }
}

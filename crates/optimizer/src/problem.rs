//! The optimization problem abstraction.
//!
//! Search spaces are discrete and rectangular — each dimension is an index
//! into a finite choice list, exactly like Optuna's `suggest_categorical` /
//! `suggest_int` over the paper's composition grid. A genome is the vector
//! of per-dimension choice indices.
//!
//! Every search strategy funnels its cohorts through
//! [`Problem::evaluate_batch`], so a problem backed by a batched engine
//! (like `mgopt-core`'s `CompositionProblem` over the columnar microgrid
//! evaluator) accelerates NSGA-II, random, exhaustive and pruning searches
//! at once. The default implementation falls back to rayon-parallel scalar
//! evaluation, so closure-defined problems keep working unchanged.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A candidate solution: one choice index per dimension.
pub type Genome = Vec<u16>;

/// A multi-objective minimization problem over a discrete space.
///
/// Implementations must be `Sync`: trials are evaluated in parallel.
pub trait Problem: Sync {
    /// Number of choices in each dimension (all ≥ 1).
    fn dims(&self) -> &[usize];

    /// Number of objectives (all minimized).
    fn n_objectives(&self) -> usize;

    /// Evaluate a genome. Must be deterministic and pure.
    fn evaluate(&self, genome: &[u16]) -> Vec<f64>;

    /// Evaluate a cohort of genomes, returning objective vectors in input
    /// order.
    ///
    /// The default evaluates scalars in parallel; implementations backed
    /// by a batched engine should override this with a single batched
    /// pass. Results must equal per-genome [`Problem::evaluate`] calls.
    fn evaluate_batch(&self, genomes: &[Genome]) -> Vec<Vec<f64>> {
        genomes.par_iter().map(|g| self.evaluate(g)).collect()
    }

    /// Total number of points in the space.
    fn space_size(&self) -> usize {
        self.dims().iter().product()
    }

    /// The genome at flat index `i` (row-major).
    fn genome_at(&self, mut i: usize) -> Genome {
        let dims = self.dims();
        let mut g = vec![0u16; dims.len()];
        for d in (0..dims.len()).rev() {
            g[d] = (i % dims[d]) as u16;
            i /= dims[d];
        }
        g
    }

    /// Flat index of a genome (row-major).
    fn index_of(&self, genome: &[u16]) -> usize {
        let dims = self.dims();
        assert_eq!(genome.len(), dims.len());
        let mut i = 0usize;
        for (d, &g) in genome.iter().enumerate() {
            debug_assert!((g as usize) < dims[d], "gene out of range");
            i = i * dims[d] + g as usize;
        }
        i
    }
}

/// A problem defined by a closure (used heavily in tests and benches).
pub struct FnProblem<F: Fn(&[u16]) -> Vec<f64> + Sync> {
    dims: Vec<usize>,
    n_objectives: usize,
    f: F,
}

impl<F: Fn(&[u16]) -> Vec<f64> + Sync> FnProblem<F> {
    /// Create a problem from dimensions and an objective closure.
    pub fn new(dims: Vec<usize>, n_objectives: usize, f: F) -> Self {
        assert!(!dims.is_empty() && dims.iter().all(|&d| d >= 1));
        assert!(n_objectives >= 1);
        Self {
            dims,
            n_objectives,
            f,
        }
    }
}

impl<F: Fn(&[u16]) -> Vec<f64> + Sync> Problem for FnProblem<F> {
    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn n_objectives(&self) -> usize {
        self.n_objectives
    }

    fn evaluate(&self, genome: &[u16]) -> Vec<f64> {
        (self.f)(genome)
    }
}

/// One evaluated trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// The evaluated genome.
    pub genome: Genome,
    /// Its objective vector (minimized).
    pub objectives: Vec<f64>,
}

impl Trial {
    /// Create a trial.
    pub fn new(genome: Genome, objectives: Vec<f64>) -> Self {
        Self { genome, objectives }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> FnProblem<impl Fn(&[u16]) -> Vec<f64> + Sync> {
        FnProblem::new(vec![3, 4, 5], 2, |g| {
            vec![g[0] as f64, (g[1] + g[2]) as f64]
        })
    }

    #[test]
    fn space_size_is_product() {
        assert_eq!(problem().space_size(), 60);
    }

    #[test]
    fn genome_index_round_trip() {
        let p = problem();
        for i in 0..p.space_size() {
            let g = p.genome_at(i);
            assert_eq!(p.index_of(&g), i);
            for (d, &gene) in g.iter().enumerate() {
                assert!((gene as usize) < p.dims()[d]);
            }
        }
    }

    #[test]
    fn first_and_last_genomes() {
        let p = problem();
        assert_eq!(p.genome_at(0), vec![0, 0, 0]);
        assert_eq!(p.genome_at(59), vec![2, 3, 4]);
    }

    #[test]
    fn evaluation_through_closure() {
        let p = problem();
        assert_eq!(p.evaluate(&[2, 1, 3]), vec![2.0, 4.0]);
        assert_eq!(p.n_objectives(), 2);
    }

    #[test]
    #[should_panic]
    fn empty_dims_panics() {
        FnProblem::new(vec![], 1, |_| vec![0.0]);
    }
}

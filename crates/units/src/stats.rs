//! Small descriptive-statistics helpers shared across the workspace.
//!
//! These operate on plain `f64` slices so that the weather synthesizers,
//! workload calibration and the optimizer's objective post-processing can
//! share one implementation (and one set of tests).

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns `0.0` for slices with fewer than two items.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// Returns `NaN` on an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Lag-`k` autocorrelation coefficient (Pearson, population normalization).
///
/// Returns `0.0` when there are not enough samples or the series is constant.
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    if xs.len() <= k + 1 {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = xs.windows(k + 1).map(|w| (w[0] - m) * (w[k] - m)).sum();
    num / denom
}

/// Root-mean-square error between two equal-length slices.
///
/// # Panics
/// Panics when lengths differ.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let sq: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
    (sq / a.len() as f64).sqrt()
}

/// Min-max normalize `xs` into `[0, 1]` in place. A constant slice maps to
/// all zeros. Returns `(min, max)` used for the scaling.
pub fn normalize_in_place(xs: &mut [f64]) -> (f64, f64) {
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !lo.is_finite() || !hi.is_finite() || hi == lo {
        xs.iter_mut().for_each(|x| *x = 0.0);
        return (lo, hi);
    }
    let span = hi - lo;
    for x in xs.iter_mut() {
        *x = (*x - lo) / span;
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic_and_empty() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_and_std() {
        // population variance of [2,4,4,4,5,5,7,9] is 4
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let xs = [3.0, 1.0, 2.0, 5.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 30.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_of_constant_is_zero() {
        assert_eq!(autocorrelation(&[5.0; 16], 1), 0.0);
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let xs: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_detects_persistence() {
        // slowly varying series: high lag-1 autocorrelation
        let xs: Vec<f64> = (0..512).map(|i| (i as f64 * 0.02).sin()).collect();
        assert!(autocorrelation(&xs, 1) > 0.95);
        // alternating series: strongly negative
        let alt: Vec<f64> = (0..512)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&alt, 1) < -0.9);
    }

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rmse_length_mismatch_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn normalize_maps_to_unit_interval() {
        let mut xs = [10.0, 20.0, 15.0];
        let (lo, hi) = normalize_in_place(&mut xs);
        assert_eq!((lo, hi), (10.0, 20.0));
        assert_eq!(xs, [0.0, 1.0, 0.5]);
    }

    #[test]
    fn normalize_constant_slice() {
        let mut xs = [7.0, 7.0];
        normalize_in_place(&mut xs);
        assert_eq!(xs, [0.0, 0.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn mean_within_bounds(xs in prop::collection::vec(-1e9f64..1e9, 1..100)) {
            let m = mean(&xs);
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
        }

        #[test]
        fn variance_nonnegative(xs in prop::collection::vec(-1e6f64..1e6, 2..100)) {
            prop_assert!(variance(&xs) >= 0.0);
        }

        #[test]
        fn percentile_monotone(xs in prop::collection::vec(-1e6f64..1e6, 2..50),
                               p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
            let (a, b) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(percentile(&xs, a) <= percentile(&xs, b) + 1e-9);
        }

        #[test]
        fn normalized_values_in_unit_interval(mut xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
            normalize_in_place(&mut xs);
            for &x in &xs {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&x));
            }
        }

        #[test]
        fn autocorrelation_bounded(xs in prop::collection::vec(-1e3f64..1e3, 4..128), k in 0usize..4) {
            let r = autocorrelation(&xs, k);
            prop_assert!((-1.0 - 1e-6..=1.0 + 1e-6).contains(&r));
        }
    }
}

//! Numeric helpers for the stochastic weather generators: error function,
//! standard-normal CDF, and the Weibull quantile transform used to map
//! autocorrelated Gaussian noise onto wind-speed distributions.

/// Error function, Abramowitz & Stegun 7.1.26 (max abs error ~1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Weibull quantile (inverse CDF) with `scale` (lambda) and `shape` (k).
///
/// `p` is clamped into `(0, 1)` to keep the transform finite.
pub fn weibull_quantile(p: f64, scale: f64, shape: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    scale * (-(1.0 - p).ln()).powf(1.0 / shape)
}

/// Mean of a Weibull distribution: `scale * Γ(1 + 1/shape)`.
pub fn weibull_mean(scale: f64, shape: f64) -> f64 {
    scale * gamma(1.0 + 1.0 / shape)
}

/// Gamma function via Lanczos approximation (g = 7, n = 9).
pub fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // reflection formula
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// First-order autoregressive Gaussian process with unit marginal variance.
///
/// `x_{t+1} = rho * x_t + sqrt(1 - rho^2) * eps`, eps ~ N(0,1).
#[derive(Debug, Clone)]
pub struct Ar1 {
    rho: f64,
    innovation_scale: f64,
    state: f64,
}

impl Ar1 {
    /// Create a process with lag-1 correlation `rho` in `(-1, 1)`.
    pub fn new(rho: f64) -> Self {
        assert!(rho.abs() < 1.0, "AR(1) correlation must be in (-1, 1)");
        Self {
            rho,
            innovation_scale: (1.0 - rho * rho).sqrt(),
            state: 0.0,
        }
    }

    /// Advance one step with a standard-normal innovation `eps`.
    #[inline]
    pub fn step(&mut self, eps: f64) -> f64 {
        self.state = self.rho * self.state + self.innovation_scale * eps;
        self.state
    }

    /// Current state.
    #[inline]
    pub fn state(&self) -> f64 {
        self.state
    }

    /// Lag-1 correlation such that the process decorrelates to `1/e` after
    /// `tau_steps` steps: `rho = exp(-1 / tau)`.
    pub fn rho_for_decorrelation_steps(tau_steps: f64) -> f64 {
        (-1.0 / tau_steps.max(1e-9)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // The A&S coefficients sum to 1 - 1e-9, so erf(0) is ~1e-9, not 0.
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!(erf(6.0) > 0.999_999);
    }

    #[test]
    fn norm_cdf_symmetry_and_anchors() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-8);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
        for x in [-2.0, -0.5, 0.3, 1.7] {
            assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn weibull_quantile_anchors() {
        // median of Weibull(scale, k) = scale * ln(2)^(1/k)
        let med = weibull_quantile(0.5, 8.0, 2.0);
        assert!((med - 8.0 * (2f64.ln()).sqrt()).abs() < 1e-9);
        // p -> 0 gives ~0, p -> 1 grows
        assert!(weibull_quantile(1e-9, 8.0, 2.0) < 0.01);
        assert!(weibull_quantile(0.999, 8.0, 2.0) > 15.0);
    }

    #[test]
    fn weibull_mean_matches_gamma_formula() {
        // shape 2 (Rayleigh): mean = scale * sqrt(pi)/2
        let m = weibull_mean(8.0, 2.0);
        assert!((m - 8.0 * std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn weibull_quantile_monotone_in_p() {
        let mut last = 0.0;
        for i in 1..100 {
            let q = weibull_quantile(i as f64 / 100.0, 7.5, 2.1);
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn ar1_stationary_variance_about_one() {
        // Deterministic pseudo-noise: low-discrepancy-ish sequence mapped to
        // normal via inverse-ish transform is overkill; use a simple LCG +
        // Box-Muller for this statistical check.
        let mut lcg: u64 = 42;
        let mut next_u = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((lcg >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let mut ar = Ar1::new(0.9);
        let mut xs = Vec::with_capacity(20_000);
        for _ in 0..20_000 {
            let (u1, u2): (f64, f64) = (next_u().max(1e-12), next_u());
            let eps = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            xs.push(ar.step(eps));
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn ar1_rho_for_decorrelation() {
        let rho = Ar1::rho_for_decorrelation_steps(10.0);
        assert!((rho - (-0.1f64).exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be in (-1, 1)")]
    fn ar1_invalid_rho_panics() {
        Ar1::new(1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn erf_bounded(x in -50.0f64..50.0) {
            let y = erf(x);
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn norm_cdf_monotone(a in -8.0f64..8.0, d in 0.0f64..4.0) {
            prop_assert!(norm_cdf(a) <= norm_cdf(a + d) + 1e-12);
        }

        #[test]
        fn weibull_quantile_nonnegative(p in 0.0f64..1.0, scale in 0.1f64..30.0, shape in 0.5f64..5.0) {
            prop_assert!(weibull_quantile(p, scale, shape) >= 0.0);
        }

        #[test]
        fn gamma_recurrence(x in 0.5f64..20.0) {
            // Γ(x+1) = x·Γ(x)
            let lhs = gamma(x + 1.0);
            let rhs = x * gamma(x);
            prop_assert!((lhs - rhs).abs() <= 1e-8 * rhs.abs().max(1.0));
        }
    }
}

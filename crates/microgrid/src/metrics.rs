//! Annual sustainability and reliability metrics.
//!
//! These are the columns of the paper's Tables 1 and 2 (embodied tCO2,
//! operational tCO2/day, on-site coverage %, battery cycles) plus the
//! additional objectives of §4.3 (cost, degradation, resilience).

use serde::{Deserialize, Serialize};

use crate::composition::Composition;

/// Aggregate metrics of one simulated year.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnualMetrics {
    /// Total demand, MWh.
    pub demand_mwh: f64,
    /// Total on-site generation, MWh.
    pub production_mwh: f64,
    /// Grid imports, MWh.
    pub grid_import_mwh: f64,
    /// Grid exports (curtailed surplus sold/spilled), MWh.
    pub grid_export_mwh: f64,
    /// Demand served directly by concurrent on-site generation, MWh.
    pub direct_use_mwh: f64,
    /// Battery terminal charge throughput, MWh.
    pub battery_charge_mwh: f64,
    /// Battery terminal discharge throughput, MWh.
    pub battery_discharge_mwh: f64,
    /// Unserved demand (islanded operation only), MWh.
    pub unmet_mwh: f64,
    /// Operational emissions, tCO2 per day (the paper's headline metric).
    pub operational_t_per_day: f64,
    /// Operational emissions over the whole year, tCO2.
    pub operational_t_per_year: f64,
    /// One-time embodied emissions of the composition, tCO2.
    pub embodied_t: f64,
    /// On-site coverage: `1 − import/demand` (the paper's "Cov. %", 0..1).
    pub coverage: f64,
    /// Direct coverage excluding storage: `direct_use/demand` (Figure 4).
    pub direct_coverage: f64,
    /// Battery equivalent full cycles over the year (throughput-based).
    pub battery_cycles: f64,
    /// Fraction of steps with zero grid import (resilience proxy).
    pub self_sufficient_fraction: f64,
    /// Net electricity cost: imports at tariff minus exports at the
    /// configured export factor, USD.
    pub energy_cost_usd: f64,
}

impl AnnualMetrics {
    /// Every reported field as `(name, value)` pairs, in declaration
    /// order — the data-driven form the cross-engine agreement checks
    /// compare field by field.
    pub fn fields(&self) -> [(&'static str, f64); 16] {
        // Exhaustive destructuring (no `..`): adding a field to
        // AnnualMetrics without listing it here is a compile error, so a
        // new metric can never silently drop out of the agreement checks.
        let Self {
            demand_mwh,
            production_mwh,
            grid_import_mwh,
            grid_export_mwh,
            direct_use_mwh,
            battery_charge_mwh,
            battery_discharge_mwh,
            unmet_mwh,
            operational_t_per_day,
            operational_t_per_year,
            embodied_t,
            coverage,
            direct_coverage,
            battery_cycles,
            self_sufficient_fraction,
            energy_cost_usd,
        } = *self;
        [
            ("demand_mwh", demand_mwh),
            ("production_mwh", production_mwh),
            ("grid_import_mwh", grid_import_mwh),
            ("grid_export_mwh", grid_export_mwh),
            ("direct_use_mwh", direct_use_mwh),
            ("battery_charge_mwh", battery_charge_mwh),
            ("battery_discharge_mwh", battery_discharge_mwh),
            ("unmet_mwh", unmet_mwh),
            ("operational_t_per_day", operational_t_per_day),
            ("operational_t_per_year", operational_t_per_year),
            ("embodied_t", embodied_t),
            ("coverage", coverage),
            ("direct_coverage", direct_coverage),
            ("battery_cycles", battery_cycles),
            ("self_sufficient_fraction", self_sufficient_fraction),
            ("energy_cost_usd", energy_cost_usd),
        ]
    }

    /// Worst symmetric relative error across all fields against `other`,
    /// with the offending field's name — the one shared definition behind
    /// every engine-agreement check (see [`mgopt_units::rel_error`]).
    /// A NaN on either side reports as the worst field with a NaN error,
    /// so `max_rel_error(..).0 <= tol` can never pass silently.
    pub fn max_rel_error(&self, other: &Self) -> (f64, &'static str) {
        let mut worst = (0.0, "none");
        for ((name, x), (_, y)) in self.fields().into_iter().zip(other.fields()) {
            let e = mgopt_units::rel_error(x, y);
            if e.is_nan() || e > worst.0 {
                worst = (e, name);
            }
        }
        worst
    }

    /// Coverage as the percentage printed in the paper's tables.
    pub fn coverage_pct(&self) -> f64 {
        self.coverage * 100.0
    }

    /// Cumulative emissions after `years` of constant operation, tCO2
    /// (naive Figure-3 projection: embodied up front, no reinvestment).
    pub fn cumulative_t_after(&self, years: f64) -> f64 {
        self.embodied_t + self.operational_t_per_day * 365.0 * years
    }
}

/// The result of simulating one composition at one site for one year.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnualResult {
    /// The simulated composition.
    pub composition: Composition,
    /// Aggregate metrics.
    pub metrics: AnnualMetrics,
    /// Hourly state-of-charge trace (empty unless requested) for rainflow
    /// and degradation analysis.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub soc_trace_hourly: Vec<f64>,
}

impl AnnualResult {
    /// The two paper objectives, both minimized:
    /// `(operational tCO2/day, embodied tCO2)`.
    pub fn objectives(&self) -> [f64; 2] {
        [self.metrics.operational_t_per_day, self.metrics.embodied_t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> AnnualMetrics {
        AnnualMetrics {
            demand_mwh: 14_191.2,
            production_mwh: 10_000.0,
            grid_import_mwh: 4_105.0,
            grid_export_mwh: 800.0,
            direct_use_mwh: 8_000.0,
            battery_charge_mwh: 1_200.0,
            battery_discharge_mwh: 1_080.0,
            unmet_mwh: 0.0,
            operational_t_per_day: 5.88,
            operational_t_per_year: 5.88 * 365.0,
            embodied_t: 4_649.0,
            coverage: 1.0 - 4_105.0 / 14_191.2,
            direct_coverage: 8_000.0 / 14_191.2,
            battery_cycles: 153.0,
            self_sufficient_fraction: 0.6,
            energy_cost_usd: 200_000.0,
        }
    }

    #[test]
    fn coverage_pct_scales() {
        let m = metrics();
        assert!((m.coverage_pct() - m.coverage * 100.0).abs() < 1e-12);
        assert!((m.coverage_pct() - 71.07).abs() < 0.2);
    }

    #[test]
    fn cumulative_projection() {
        let m = metrics();
        assert_eq!(m.cumulative_t_after(0.0), 4_649.0);
        let at20 = m.cumulative_t_after(20.0);
        assert!((at20 - (4_649.0 + 5.88 * 365.0 * 20.0)).abs() < 1e-9);
    }

    #[test]
    fn max_rel_error_is_symmetric_and_names_worst_field() {
        let a = metrics();
        let mut b = metrics();
        b.grid_import_mwh *= 1.0 + 1e-6;
        let (err_ab, field_ab) = a.max_rel_error(&b);
        let (err_ba, field_ba) = b.max_rel_error(&a);
        assert_eq!(err_ab, err_ba, "symmetric under argument swap");
        assert_eq!(field_ab, "grid_import_mwh");
        assert_eq!(field_ba, "grid_import_mwh");
        assert!(err_ab > 1e-9 && err_ab < 1e-5);
        assert_eq!(a.max_rel_error(&a), (0.0, "none"));
    }

    #[test]
    fn max_rel_error_surfaces_nan() {
        let a = metrics();
        let mut b = metrics();
        b.coverage = f64::NAN;
        let (err, field) = a.max_rel_error(&b);
        assert!(err.is_nan(), "NaN must fail any tolerance check");
        assert_eq!(field, "coverage");
    }

    #[test]
    fn objectives_order() {
        let r = AnnualResult {
            composition: Composition::new(4, 0.0, 7_500.0),
            metrics: metrics(),
            soc_trace_hourly: vec![],
        };
        assert_eq!(r.objectives(), [5.88, 4_649.0]);
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # microgrid-opt
//!
//! A Rust reproduction of *"Optimizing Microgrid Composition for
//! Sustainable Data Centers"* (Irion, Wiesner, Bader, Kao — SC Workshops
//! '25): a computing/energy co-simulation stack plus a multi-objective
//! black-box optimizer that right-sizes wind / solar / battery microgrids
//! for data centers against the trade-off between operational and embodied
//! carbon emissions.
//!
//! This crate is the umbrella: it re-exports the workspace's layers.
//!
//! ```
//! use microgrid_opt::prelude::*;
//!
//! // One candidate composition at the paper's Houston site.
//! let scenario = ScenarioConfig::paper_houston().prepare();
//! let comp = Composition::new(4, 0.0, 7_500.0); // 12 MW wind + 7.5 MWh
//! let result = simulate_year(&scenario.data, &scenario.load, &comp,
//!                            &scenario.config.sim);
//! assert!(result.metrics.coverage > 0.5);
//! ```
//!
//! ## Layer map
//!
//! | Layer | Crate | Role |
//! |---|---|---|
//! | observability | [`telemetry`] | spans, counters, JSONL trace sink (`MGOPT_TRACE`) |
//! | quantities | [`units`] | typed kW/kWh/kgCO2, calendar, time series |
//! | weather | [`weather`] | synthetic NSRDB / WIND-Toolkit substitute |
//! | generation | [`sam`] | PVWatts + Windpower performance models |
//! | storage | [`storage`] | C/L/C battery, rainflow, degradation |
//! | grid | [`gridcarbon`] | carbon-intensity + price signals |
//! | load | [`workload`] | Perlmutter-like power traces |
//! | bus | [`cosim`] | Vessim-style co-simulation engine |
//! | domain | [`microgrid`] | compositions, policies, year simulators, 4-lane SIMD kernel (`MGOPT_SIMD`) |
//! | search | [`optimizer`] | NSGA-II, exhaustive, Pareto tooling |
//! | framework | [`core`] | scenarios, studies, paper experiments, wire format, prepared cache |
//! | service | [`server`] | optimization daemon: concurrent studies over the wire protocol |
//! | correctness tooling | [`analysis`] | `mgopt_lint` workspace invariant linter (CI gate) |
//!
//! ## Evaluation engines
//!
//! Three engines simulate the same physics and are pinned to agree
//! (`tests/engine_agreement.rs`):
//!
//! * **scalar** — [`microgrid::simulate_year`]: the reference tight loop,
//!   one composition per pass;
//! * **cosim** — [`microgrid::simulate_year_cosim`]: the actor/bus
//!   machinery, used by examples and as a cross-check;
//! * **batch** — [`microgrid::simulate_batch`] behind the
//!   [`microgrid::Evaluator`] abstraction: a time-major columnar pass over
//!   a whole cohort of compositions at once (monomorphized battery
//!   kernels, shared generation profiles, chunk-level parallelism).
//!
//! The batch and fleet engines walk chunks through the hand-rolled 4-lane
//! SIMD kernel in [`microgrid::simd`] by default. **Lanes are candidates,
//! never timesteps**: each lane advances a different composition through
//! the exact scalar arithmetic, so the lane walk is bit-identical to the
//! scalar chunk walk (pinned by `tests/engine_agreement.rs`, not merely
//! ≤1e-9). `MGOPT_SIMD=0` forces the scalar walk at runtime;
//! [`microgrid::BatchBackend`] forces either walk programmatically, which
//! is how the bench bins record their SIMD-vs-scalar A/B.
//!
//! Every search layer funnels cohorts through
//! `optimizer::Problem::evaluate_batch`, so NSGA-II generations,
//! exhaustive sweeps, random cohorts and successive-halving rungs all ride
//! the batch engine (`core::CompositionProblem` wires it up;
//! `core::sweep_all` is a thin wrapper over it).
//!
//! Multi-site studies ride [`microgrid::FleetEvaluator`]: one interleaved
//! time-major walk over several prepared sites, yielding per-site results
//! bit-identical to single-site batch runs plus fleet aggregates (fleet
//! tCO2/day, peak *concurrent* grid import). `core::FleetScenario` /
//! `core::fleet_sweep` are the configuration and sweep layers on top
//! (`tests/fleet_agreement.rs` pins the fleet engine to both the batch
//! engine and the cosim `Environment` oracle), and `core::FleetProblem`
//! exposes the cross-product plan space (one composition index per site)
//! to every sampler, with the peak concurrent-import cap as an optional
//! constraint under NSGA-II's constraint-dominance
//! (`tests/fleet_search_agreement.rs` pins the search against exhaustive
//! fleet sweeps).
//!
//! ## Observability
//!
//! The engines and search layers are instrumented through [`telemetry`]
//! (std-only, zero dependencies): scoped span timers over the hot stages
//! (`batch.prepare` / `batch.kernel` / `fleet.prepare` / `fleet.kernel`),
//! atomic counters (chunks, candidate-rows, memo-cache hits/misses), and
//! structured JSONL events — engine passes, NSGA-II generations (front
//! size, feasible count, 2-D hypervolume, best objectives),
//! successive-halving rungs. Tracing is off by default and costs one
//! relaxed atomic load per instrumented call; `MGOPT_TRACE=<path>` turns
//! it on and streams events to `path`, which the `trace_report` bench bin
//! summarizes. `tests/telemetry_determinism.rs` pins that an enabled
//! trace does not perturb results.
//!
//! ## Service layer
//!
//! [`server`] turns the batch research code into a long-lived service:
//! the `mgopt_serve` daemon holds prepared sites hot in a shared
//! `core::PreparedCache` (Arc-handout, LRU, `prep_cache.*` hit/miss
//! counters), accepts newline-delimited JSON study requests over TCP
//! (connections served concurrently, up to `MGOPT_ACCEPTORS` at once),
//! stdin/stdout, or an in-process pipe, and multiplexes concurrent
//! NSGA-II studies over the shared SIMD batch engine — streaming per
//! generation `Front` updates and a final `Done` frame per request. The
//! versioned wire format with strict-reject parsing lives in
//! `core::wire`; results depend only on `(fleet, budget, seed)`, never
//! on how studies interleave — or on how many connections they arrive
//! over, or whether a neighbouring study is cancelled mid-flight
//! (`tests/server_interleaving_props.rs` pins all three,
//! `tests/server_protocol.rs` drives the daemon through the real
//! wire format including fault injection, and `tests/wire_golden.rs`
//! pins the on-wire bytes against committed fixtures).
//!
//! A study's lifecycle: an optional `Queued` frame (sent only when the
//! **process-wide** in-flight cap `MGOPT_SERVER_CONCURRENCY` is
//! saturated across all connections; carries how many studies are
//! ahead), then `Accepted`, zero or more `Front` updates, and exactly
//! one terminal frame — `Done`, `Cancelled`, or `Error`. A `Cancel`
//! request names an in-flight study's id; the target stops
//! cooperatively at its next generation boundary and answers
//! `Cancelled` (with the generations/trials it completed — the prefix
//! it did run is bit-identical to an uncancelled run), never `Done`.
//! Client disconnect mid-study cancels every study in flight on that
//! connection. `Cancel` is an additive variant, so `WIRE_VERSION` is
//! unchanged — old frames still parse byte-identically.
//!
//! Every rejection maps to one of the wire protocol's error codes —
//! `MalformedFrame` (invalid JSON, unknown/missing/duplicate fields, bad
//! types, unknown variants), `UnsupportedVersion` (a `v` other than
//! `WIRE_VERSION`), `UnknownPreset` (a `FleetSpec::Preset` name the
//! server does not know), `InvalidRequest` (well-formed but semantically
//! impossible studies: empty fleets, mismatched step clocks, spaces
//! exceeding the u16 genome), `Oversized` (a request line longer than
//! `MGOPT_SERVER_MAX_FRAME`), `UnknownStudy` (a `Cancel` naming an id
//! that is not in flight on that connection — never seen, or already
//! terminal), and `Internal` (the study panicked or its worker died; the
//! connection survives). Each code is pinned byte-level by the golden
//! fixtures.
//!
//! ## Invariants as code
//!
//! The guarantees above are enforced mechanically by [`analysis`]'s
//! `mgopt_lint` binary, which CI runs over the whole workspace:
//!
//! | Rule | Contract |
//! |---|---|
//! | `determinism` | no `Instant::now`/`SystemTime::now`/`thread_rng`, no `HashMap`/`HashSet` import or call, in engine crates (`microgrid`, `optimizer`, `core`, `storage`, `weather`) |
//! | `panic_free` | no `unwrap`/`expect`/`panic!`-class macros/direct indexing in `core::wire` parsing or `server` connection handling |
//! | `env_registry` | every `MGOPT_*` read has a row in the bench env-var table, and vice versa |
//! | `schema_drift` | every wire `ErrorCode` variant appears in the golden fixtures and this spec; every telemetry event/field emitted matches `trace_report`'s schema |
//! | `unsafe_safety` | every `unsafe` carries a `// SAFETY:` comment and lands in a machine-readable inventory |
//!
//! Violations that are genuinely fine carry a justified suppression on
//! the line above: `// mgopt-lint: allow(<rule>) — <why this is sound>`.
//! An allow without a justification (or naming an unknown rule) is
//! itself a violation, so the lint gate cannot silently rot.

pub use mgopt_analysis as analysis;
pub use mgopt_core as core;
pub use mgopt_cosim as cosim;
pub use mgopt_gridcarbon as gridcarbon;
pub use mgopt_microgrid as microgrid;
pub use mgopt_optimizer as optimizer;
pub use mgopt_sam as sam;
pub use mgopt_server as server;
pub use mgopt_storage as storage;
pub use mgopt_telemetry as telemetry;
pub use mgopt_units as units;
pub use mgopt_weather as weather;
pub use mgopt_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use mgopt_core::experiments;
    pub use mgopt_core::{
        fleet_sweep, sweep_all, CompositionProblem, FleetAssignment, FleetProblem, FleetScenario,
        ObjectiveKind, ObjectiveSet, PreparedCache, PreparedFleet, PreparedScenario,
        ScenarioConfig, SitePreset, WorkloadConfig,
    };
    pub use mgopt_microgrid::{
        simulate_batch, simulate_year, simulate_year_cosim, BatchBackend, BatchEvaluator,
        Composition, CompositionSpace, DispatchPolicy, EmbodiedDb, Evaluator, FleetEvaluator,
        FleetResult, FleetSite, SimConfig, Site,
    };
    pub use mgopt_optimizer::{Nsga2Config, Sampler, Study};
    pub use mgopt_server::{Server, ServerConfig};
    pub use mgopt_units::{
        CarbonIntensity, Emissions, Energy, Power, SimDuration, SimTime, TimeSeries,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_exposes_core_types() {
        use crate::prelude::*;
        let c = Composition::new(1, 1_000.0, 0.0);
        assert_eq!(c.wind_mw(), 3.0);
        let db = EmbodiedDb::paper();
        assert_eq!(db.total_t(&c), 1_046.0 + 630.0);
    }
}

//! Derive macros for the workspace-local `serde` stand-in.
//!
//! Supports the shapes present in this workspace: named-field structs,
//! single-field tuple structs, and enums with unit / newtype / tuple /
//! struct variants — plus the attributes `#[serde(transparent)]`,
//! `#[serde(default)]` and `#[serde(skip_serializing_if = "path")]`.
//! Generated values follow serde's externally-tagged JSON conventions.
//!
//! Implemented directly on `proc_macro::TokenTree` (the offline build
//! environment has no `syn`/`quote`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    default: bool,
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    transparent: bool,
    shape: Shape,
}

/// Parse a `#[...]` attribute group's string form, updating attrs.
fn apply_attr(text: &str, transparent: &mut bool, attrs: &mut FieldAttrs) {
    let text = text.trim();
    if !text.starts_with("serde") {
        return;
    }
    if text.contains("transparent") {
        *transparent = true;
    }
    if text.contains("default") {
        attrs.default = true;
    }
    if let Some(pos) = text.find("skip_serializing_if") {
        let rest = &text[pos..];
        if let Some(start) = rest.find('"') {
            if let Some(end) = rest[start + 1..].find('"') {
                attrs.skip_serializing_if = Some(rest[start + 1..start + 1 + end].to_string());
            }
        }
    }
}

/// Split a brace/paren group's tokens into comma-separated entries,
/// tracking `<`/`>` nesting so generic type arguments stay intact.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse one named field entry: leading attrs, optional `pub`, name, `:`, type.
fn parse_field(entry: &[TokenTree]) -> Option<Field> {
    let mut attrs = FieldAttrs::default();
    let mut ignored = false;
    let mut i = 0;
    while i < entry.len() {
        match &entry[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = entry.get(i + 1) {
                    apply_attr(&g.stream().to_string(), &mut ignored, &mut attrs);
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = entry.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(id) => {
                // Field name must be followed by ':'.
                if matches!(entry.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
                    return Some(Field {
                        name: id.to_string(),
                        attrs,
                    });
                }
                return None;
            }
            _ => return None,
        }
    }
    None
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<Field> {
    split_top_level(group_tokens)
        .iter()
        .filter_map(|entry| parse_field(entry))
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut transparent = false;
    let mut container_attrs = FieldAttrs::default();
    let mut i = 0;
    let mut is_enum = false;

    // Container attributes, visibility, `struct` / `enum` keyword.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    apply_attr(
                        &g.stream().to_string(),
                        &mut transparent,
                        &mut container_attrs,
                    );
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: could not find struct/enum keyword"),
        }
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub does not support generic types (on `{name}`)");
    }

    let shape = if is_enum {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        };
        let body_tokens: Vec<TokenTree> = body.into_iter().collect();
        let mut variants = Vec::new();
        for entry in split_top_level(&body_tokens) {
            let mut j = 0;
            // Skip attrs (doc comments).
            while matches!(entry.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
                j += 2;
            }
            let vname = match entry.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => continue,
            };
            let kind = match entry.get(j + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantKind::Struct(parse_named_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantKind::Tuple(split_top_level(&inner).len())
                }
                _ => VariantKind::Unit,
            };
            variants.push(Variant { name: vname, kind });
        }
        Shape::Enum(variants)
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::NamedStruct(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::TupleStruct(split_top_level(&inner).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: expected struct body, found {other:?}"),
        }
    };

    Item {
        name,
        transparent,
        shape,
    }
}

fn serialize_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let mut code = String::from("{ let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        let access = format!("{access_prefix}{}", f.name);
        let push = format!(
            "__m.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&{access})));\n",
            n = f.name
        );
        if let Some(skip) = &f.attrs.skip_serializing_if {
            code.push_str(&format!("if !({skip}(&{access})) {{ {push} }}\n"));
        } else {
            code.push_str(&push);
        }
    }
    code.push_str("::serde::Value::Map(__m) }");
    code
}

fn deserialize_named_fields(fields: &[Field], source: &str) -> String {
    // Produces `field: <expr>, ...` initializer fragments.
    let mut code = String::new();
    for f in fields {
        if f.attrs.default {
            code.push_str(&format!(
                "{n}: match ::serde::__private::field_opt({source}, \"{n}\") {{ \
                 Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                 None => ::std::default::Default::default() }},\n",
                n = f.name
            ));
        } else {
            code.push_str(&format!(
                "{n}: ::serde::Deserialize::from_value(::serde::__private::field({source}, \"{n}\")?)?,\n",
                n = f.name
            ));
        }
    }
    code
}

/// Derive `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            if item.transparent && fields.len() == 1 {
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                serialize_named_fields(fields, "self.")
            }
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = serialize_named_fields(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    code.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derive `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            if item.transparent && fields.len() == 1 {
                format!(
                    "Ok({name} {{ {}: ::serde::Deserialize::from_value(__v)? }})",
                    fields[0].name
                )
            } else {
                let inits = deserialize_named_fields(fields, "__v");
                format!(
                    "if __v.as_map().is_none() {{ \
                     return Err(::serde::DeError::custom(\"expected map for {name}\")); }}\n\
                     Ok({name} {{\n{inits}}})"
                )
            }
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::from_value(__s.get({k}).ok_or_else(|| ::serde::DeError::custom(\"tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        str_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => {
                        map_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::from_value(__s.get({k}).ok_or_else(|| ::serde::DeError::custom(\"tuple variant too short\"))?)?"
                                )
                            })
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __s = __inner.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected array for {name}::{vn}\"))?; Ok({name}::{vn}({})) }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits = deserialize_named_fields(fields, "__inner");
                        map_arms
                            .push_str(&format!("\"{vn}\" => Ok({name}::{vn} {{\n{inits}}}),\n"));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{str_arms}\
                 __other => Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __inner) = &__m[0];\n\
                 match __k.as_str() {{\n{map_arms}\
                 __other => Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` for {name}\"))),\n}}\n}},\n\
                 _ => Err(::serde::DeError::custom(\"expected string or single-key map for {name}\")),\n}}"
            )
        }
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    );
    code.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

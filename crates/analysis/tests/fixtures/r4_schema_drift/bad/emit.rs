pub fn emit_all(handle: &Handle) {
    Event::new("study_start").u64("sites", 1).emit(handle);
    Event::new("mystery").u64("sites", 1).emit(handle);
}

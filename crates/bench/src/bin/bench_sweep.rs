//! Emit `BENCH_sweep.json`: wall-clock of the full 1,089-candidate
//! exhaustive sweep through the scalar rayon engine and the batched
//! columnar engine, plus the agreement check between them.
//!
//! ```text
//! cargo run --release -p mgopt-bench --bin bench_sweep
//! ```
//!
//! Writes the artifact to the repository root (next to `ROADMAP.md`), and
//! prints the same numbers to stdout. `MGOPT_FAST=1` shrinks the space for
//! smoke runs (the artifact then records the reduced size).

use std::path::PathBuf;
use std::time::Instant;

use mgopt_bench::ThreadScaling;
use mgopt_core::{sweep_all, sweep_all_scalar, sweep_all_with_backend};
use mgopt_microgrid::BatchBackend;
use serde::Serialize;

/// The artifact schema.
#[derive(Debug, Serialize)]
struct SweepBench {
    site: String,
    compositions: usize,
    steps_per_year: usize,
    samples: usize,
    scalar_ms_median: f64,
    batched_ms_median: f64,
    speedup: f64,
    max_rel_error: f64,
    threads: usize,
    /// Whether the default batched timing above ran the SIMD chunk walk
    /// (the `MGOPT_SIMD` toggle at bench time).
    simd: bool,
    /// Forced-SIMD batched sweep, median ms.
    simd_ms_median: f64,
    /// Forced-scalar batched sweep, median ms.
    scalar_batch_ms_median: f64,
    /// `scalar_batch_ms_median / simd_ms_median` — the lane kernel's gain
    /// over the scalar chunk walk, like-for-like.
    simd_speedup: f64,
    /// Agreement between the forced walks. The lanes-are-candidates design
    /// makes this exactly `0.0`, not merely ≤1e-9; `bench_guard` rejects
    /// anything else.
    simd_max_rel_error: f64,
    /// Full batched sweep re-timed at each `MGOPT_THREADS` pool size.
    scaling: Vec<ThreadScaling>,
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

fn main() {
    let scenario = mgopt_bench::houston();
    let compositions = scenario.config.space.len();
    let samples = 5usize;

    // Warm-up + agreement check: the shared symmetric tolerance over
    // every metrics field (not an argument-order-dependent subset).
    let scalar_results = sweep_all_scalar(&scenario);
    let batched_results = sweep_all(&scenario);
    let mut max_rel_error = 0.0f64;
    for (s, b) in scalar_results.iter().zip(&batched_results) {
        assert_eq!(s.composition, b.composition);
        let err = s.metrics.max_rel_error(&b.metrics).0;
        // Propagate NaN explicitly — f64::max would silently drop it and
        // let a broken engine record perfect agreement.
        if err.is_nan() || err > max_rel_error {
            max_rel_error = err;
        }
    }
    assert!(
        max_rel_error <= 1e-9,
        "engines disagree: max relative error {max_rel_error:e}"
    );

    let mut scalar_ms = Vec::with_capacity(samples);
    let mut batched_ms = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(sweep_all_scalar(&scenario));
        scalar_ms.push(t0.elapsed().as_secs_f64() * 1e3);

        let t0 = Instant::now();
        std::hint::black_box(sweep_all(&scenario));
        batched_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }

    // SIMD vs scalar chunk walk, like-for-like: both timings use the
    // batched engine with the backend forced, alternating A/B like the
    // main loop. The walks are pinned bit-identical, so the agreement
    // check demands exact equality.
    let simd_results = sweep_all_with_backend(&scenario, BatchBackend::Simd);
    let scalar_walk_results = sweep_all_with_backend(&scenario, BatchBackend::Scalar);
    let mut simd_max_rel_error = 0.0f64;
    for (a, b) in simd_results.iter().zip(&scalar_walk_results) {
        let err = a.metrics.max_rel_error(&b.metrics).0;
        if err.is_nan() || err > simd_max_rel_error {
            simd_max_rel_error = err;
        }
    }
    assert_eq!(
        simd_max_rel_error, 0.0,
        "SIMD walk must be bit-identical to the scalar walk"
    );
    let mut simd_ms = Vec::with_capacity(samples);
    let mut scalar_walk_ms = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(sweep_all_with_backend(&scenario, BatchBackend::Simd));
        simd_ms.push(t0.elapsed().as_secs_f64() * 1e3);

        let t0 = Instant::now();
        std::hint::black_box(sweep_all_with_backend(&scenario, BatchBackend::Scalar));
        scalar_walk_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let simd_med = median_ms(&mut simd_ms);
    let scalar_walk_med = median_ms(&mut scalar_walk_ms);

    // Multi-thread scaling of the default batched sweep.
    let scaling = mgopt_bench::scaling_sweep(&mgopt_bench::thread_counts(), 3, || {
        std::hint::black_box(sweep_all(&scenario));
    });

    let scalar_med = median_ms(&mut scalar_ms);
    let batched_med = median_ms(&mut batched_ms);
    let bench = SweepBench {
        site: scenario.site_name().to_string(),
        compositions,
        steps_per_year: scenario.data.len(),
        samples,
        scalar_ms_median: scalar_med,
        batched_ms_median: batched_med,
        speedup: scalar_med / batched_med,
        max_rel_error,
        // The pool size parallel calls actually use — `unwrap_or(1)` over
        // core detection used to mislabel entries on multi-core hosts
        // whenever detection failed.
        threads: rayon::current_num_threads(),
        simd: mgopt_microgrid::simd_enabled(),
        simd_ms_median: simd_med,
        scalar_batch_ms_median: scalar_walk_med,
        simd_speedup: scalar_walk_med / simd_med,
        simd_max_rel_error,
        scaling,
    };

    println!(
        "sweep of {} compositions ({} steps): scalar {:.1} ms, batched {:.1} ms, speedup {:.2}x",
        bench.compositions, bench.steps_per_year, scalar_med, batched_med, bench.speedup
    );
    println!(
        "simd walk {:.1} ms vs scalar walk {:.1} ms: {:.2}x, max rel err {:e}",
        simd_med, scalar_walk_med, bench.simd_speedup, simd_max_rel_error
    );
    for p in &bench.scaling {
        println!(
            "threads {} (effective {}): {:.1} ms",
            p.threads_requested, p.threads_effective, p.ms_min
        );
    }

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench artifact");
    std::fs::write(&path, json + "\n").expect("write BENCH_sweep.json");
    println!("[artifact] {}", path.display());
}

//! Pareto-dominance tooling: non-dominated sorting (plain and
//! constraint-aware), crowding distance, quality indicators (hypervolume,
//! IGD), and recovery metrics.

use crate::problem::Trial;

/// `true` when `a` Pareto-dominates `b` (minimization): no worse in every
/// objective and strictly better in at least one.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Deb's constraint-dominance (NSGA-II, 2002): `a` constraint-dominates
/// `b` when `a` is feasible and `b` is not, when both are infeasible and
/// `a` violates less, or when both are feasible and `a` Pareto-dominates
/// `b`. Violations are total magnitudes (`0.0` = feasible).
pub fn constrained_dominates(a: &[f64], a_violation: f64, b: &[f64], b_violation: f64) -> bool {
    match (a_violation > 0.0, b_violation > 0.0) {
        (false, true) => true,
        (true, false) => false,
        (true, true) => a_violation < b_violation,
        (false, false) => dominates(a, b),
    }
}

/// [`fast_non_dominated_sort`] under constraint-dominance: all feasible
/// fronts precede every infeasible point, and infeasible points layer by
/// total violation. `violations[i]` is point `i`'s total magnitude.
pub fn constrained_non_dominated_sort(points: &[Vec<f64>], violations: &[f64]) -> Vec<Vec<usize>> {
    assert_eq!(points.len(), violations.len());
    sort_by_dominance(points.len(), |i, j| {
        constrained_dominates(&points[i], violations[i], &points[j], violations[j])
    })
}

/// Indices of the non-dominated points (the Pareto front).
pub fn non_dominated_indices(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other, &points[i]))
        })
        .collect()
}

/// NSGA-II fast non-dominated sort: partitions indices into fronts
/// (front 0 = Pareto-optimal, front 1 = optimal after removing front 0, …).
pub fn fast_non_dominated_sort(points: &[Vec<f64>]) -> Vec<Vec<usize>> {
    sort_by_dominance(points.len(), |i, j| dominates(&points[i], &points[j]))
}

/// The fast non-dominated sort skeleton over an arbitrary (strict, acyclic)
/// dominance relation.
fn sort_by_dominance(n: usize, dom: impl Fn(usize, usize) -> bool) -> Vec<Vec<usize>> {
    let mut domination_count = vec![0usize; n];
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n];

    for i in 0..n {
        for j in (i + 1)..n {
            if dom(i, j) {
                dominated_by[i].push(j);
                domination_count[j] += 1;
            } else if dom(j, i) {
                dominated_by[j].push(i);
                domination_count[i] += 1;
            }
        }
    }

    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// NSGA-II crowding distance for the members of one front.
///
/// Returns one distance per front member (same order as `front`); boundary
/// points get `f64::INFINITY`.
pub fn crowding_distance(points: &[Vec<f64>], front: &[usize]) -> Vec<f64> {
    let m = front.len();
    if m == 0 {
        return Vec::new();
    }
    if m <= 2 {
        return vec![f64::INFINITY; m];
    }
    let n_obj = points[front[0]].len();
    let mut distance = vec![0.0f64; m];

    // Indexing is clearer than an iterator here: `obj` selects a column
    // across `points` through two levels of indirection.
    #[allow(clippy::needless_range_loop)]
    for obj in 0..n_obj {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            points[front[a]][obj]
                .partial_cmp(&points[front[b]][obj])
                .expect("NaN objective")
        });
        let lo = points[front[order[0]]][obj];
        let hi = points[front[order[m - 1]]][obj];
        distance[order[0]] = f64::INFINITY;
        distance[order[m - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        for k in 1..(m - 1) {
            let prev = points[front[order[k - 1]]][obj];
            let next = points[front[order[k + 1]]][obj];
            distance[order[k]] += (next - prev) / span;
        }
    }
    distance
}

/// Exact hypervolume of a 2-objective front w.r.t. a reference point
/// (minimization; points beyond the reference are clipped out).
pub fn hypervolume_2d(points: &[Vec<f64>], reference: &[f64; 2]) -> f64 {
    let front = non_dominated_indices(points);
    let mut pts: Vec<(f64, f64)> = front
        .iter()
        .map(|&i| (points[i][0], points[i][1]))
        .filter(|&(x, y)| x < reference[0] && y < reference[1])
        .collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN objective"));

    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for &(x, y) in &pts {
        // On a clean 2-D front sorted by x ascending, y is descending.
        hv += (reference[0] - x) * (prev_y - y);
        prev_y = y;
    }
    hv
}

/// Inverted generational distance: mean Euclidean distance from each truth
/// point to its nearest found point, in normalized objective space.
///
/// Returns 0 for a perfect match; `NaN` when either set is empty.
pub fn igd(found: &[Vec<f64>], truth: &[Vec<f64>]) -> f64 {
    if found.is_empty() || truth.is_empty() {
        return f64::NAN;
    }
    let n_obj = truth[0].len();
    // Normalize by the truth extent per objective.
    let mut lo = vec![f64::INFINITY; n_obj];
    let mut hi = vec![f64::NEG_INFINITY; n_obj];
    for p in truth {
        for (d, &v) in p.iter().enumerate() {
            lo[d] = lo[d].min(v);
            hi[d] = hi[d].max(v);
        }
    }
    let span: Vec<f64> = lo
        .iter()
        .zip(&hi)
        .map(|(&l, &h)| if h > l { h - l } else { 1.0 })
        .collect();

    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .zip(&span)
            .map(|((&x, &y), &s)| ((x - y) / s).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    truth
        .iter()
        .map(|t| {
            found
                .iter()
                .map(|f| dist(t, f))
                .fold(f64::INFINITY, f64::min)
        })
        .sum::<f64>()
        / truth.len() as f64
}

/// Fraction of the true Pareto-optimal genomes recovered by a search —
/// the paper's §4.4 metric ("recovers around 80 % of all Pareto-optimal
/// solutions").
pub fn recovery_fraction(found: &[Trial], truth: &[Trial]) -> f64 {
    if truth.is_empty() {
        return f64::NAN;
    }
    let found_front = non_dominated_trials(found);
    let hit = truth
        .iter()
        .filter(|t| found_front.iter().any(|f| f.genome == t.genome))
        .count();
    hit as f64 / truth.len() as f64
}

/// The non-dominated subset of a trial list (deduplicated by genome),
/// under constraint-dominance: any feasible trial beats every infeasible
/// one, so the front of a constrained history only contains infeasible
/// trials when *nothing* sampled was feasible. Unconstrained trials (empty
/// violations) reduce to plain Pareto dominance.
pub fn non_dominated_trials(trials: &[Trial]) -> Vec<Trial> {
    let mut unique: Vec<&Trial> = Vec::new();
    for t in trials {
        if !unique.iter().any(|u| u.genome == t.genome) {
            unique.push(t);
        }
    }
    let viol: Vec<f64> = unique.iter().map(|t| t.total_violation()).collect();
    (0..unique.len())
        .filter(|&i| {
            !(0..unique.len()).any(|j| {
                j != i
                    && constrained_dominates(
                        &unique[j].objectives,
                        viol[j],
                        &unique[i].objectives,
                        viol[i],
                    )
            })
        })
        .map(|i| unique[i].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]), "incomparable");
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]), "equal is not strict");
    }

    #[test]
    fn non_dominated_of_textbook_set() {
        let pts = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![4.0, 1.0],
            vec![3.0, 4.0], // dominated by (2,3)
            vec![5.0, 5.0], // dominated by everything
        ];
        let front = non_dominated_indices(&pts);
        assert_eq!(front, vec![0, 1, 2]);
    }

    #[test]
    fn sort_produces_layered_fronts() {
        let pts = vec![
            vec![1.0, 4.0], // F0
            vec![4.0, 1.0], // F0
            vec![2.0, 5.0], // F1
            vec![5.0, 2.0], // F1
            vec![6.0, 6.0], // F2
        ];
        let fronts = fast_non_dominated_sort(&pts);
        assert_eq!(fronts.len(), 3);
        assert_eq!(fronts[0], vec![0, 1]);
        assert_eq!(fronts[1], vec![2, 3]);
        assert_eq!(fronts[2], vec![4]);
    }

    #[test]
    fn sort_partitions_all_points() {
        let pts: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let fronts = fast_non_dominated_sort(&pts);
        let total: usize = fronts.iter().map(|f| f.len()).sum();
        assert_eq!(total, 25);
        // Front 0 of the grid is the single point (0,0).
        assert_eq!(fronts[0], vec![0]);
    }

    #[test]
    fn crowding_boundary_infinite_interior_finite() {
        let pts = vec![
            vec![0.0, 10.0],
            vec![2.0, 6.0],
            vec![5.0, 3.0],
            vec![10.0, 0.0],
        ];
        let front = vec![0, 1, 2, 3];
        let d = crowding_distance(&pts, &front);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn crowding_small_fronts_all_infinite() {
        let pts = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let d = crowding_distance(&pts, &[0, 1]);
        assert!(d.iter().all(|&x| x == f64::INFINITY));
        assert!(crowding_distance(&pts, &[]).is_empty());
    }

    #[test]
    fn crowding_rewards_isolation() {
        // Middle points: one in a dense cluster, one isolated.
        let pts = vec![
            vec![0.0, 10.0],
            vec![1.0, 8.9],
            vec![1.2, 8.8], // crowded
            vec![6.0, 2.0], // isolated
            vec![10.0, 0.0],
        ];
        let front = vec![0, 1, 2, 3, 4];
        let d = crowding_distance(&pts, &front);
        assert!(d[3] > d[2], "isolated point should score higher: {d:?}");
    }

    #[test]
    fn hypervolume_single_point() {
        let pts = vec![vec![2.0, 3.0]];
        let hv = hypervolume_2d(&pts, &[10.0, 10.0]);
        assert!((hv - 8.0 * 7.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_staircase() {
        let pts = vec![vec![1.0, 4.0], vec![2.0, 2.0], vec![4.0, 1.0]];
        // Rectangles: (5-1)*(5-4)=4, (5-2)*(4-2)=6, (5-4)*(2-1)=1 => 11
        let hv = hypervolume_2d(&pts, &[5.0, 5.0]);
        assert!((hv - 11.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_ignores_dominated_and_out_of_range() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![3.0, 3.0], // dominated
            vec![9.0, 0.5], // beyond reference in x? no: 9 > 5 -> clipped
        ];
        let hv = hypervolume_2d(&pts, &[5.0, 5.0]);
        assert!((hv - 11.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_monotone_under_additions() {
        let mut pts = vec![vec![3.0, 3.0]];
        let hv1 = hypervolume_2d(&pts, &[10.0, 10.0]);
        pts.push(vec![1.0, 6.0]);
        let hv2 = hypervolume_2d(&pts, &[10.0, 10.0]);
        assert!(hv2 >= hv1);
    }

    #[test]
    fn igd_zero_for_identical_sets() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 0.5]];
        assert!(igd(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn igd_grows_with_distance() {
        let truth = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let near = vec![vec![0.1, 1.0], vec![1.0, 0.1]];
        let far = vec![vec![0.8, 1.0], vec![1.0, 0.8]];
        assert!(igd(&near, &truth) < igd(&far, &truth));
        assert!(igd(&[], &truth).is_nan());
    }

    fn t(g: Vec<u16>, o: Vec<f64>) -> Trial {
        Trial::new(g, o)
    }

    #[test]
    fn recovery_counts_genome_matches() {
        let truth = vec![
            t(vec![0], vec![1.0, 4.0]),
            t(vec![1], vec![2.0, 2.0]),
            t(vec![2], vec![4.0, 1.0]),
        ];
        let found = vec![
            t(vec![0], vec![1.0, 4.0]),
            t(vec![2], vec![4.0, 1.0]),
            t(vec![9], vec![9.0, 9.0]), // dominated noise
        ];
        let r = recovery_fraction(&found, &truth);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn constrained_dominance_rules() {
        // Feasible beats infeasible regardless of objectives.
        assert!(constrained_dominates(&[9.0, 9.0], 0.0, &[1.0, 1.0], 0.1));
        assert!(!constrained_dominates(&[1.0, 1.0], 0.1, &[9.0, 9.0], 0.0));
        // Both infeasible: ordered by violation, objectives ignored.
        assert!(constrained_dominates(&[9.0, 9.0], 0.1, &[1.0, 1.0], 0.2));
        assert!(!constrained_dominates(&[1.0, 1.0], 0.2, &[9.0, 9.0], 0.1));
        assert!(!constrained_dominates(&[1.0, 1.0], 0.2, &[9.0, 9.0], 0.2));
        // Both feasible: plain Pareto dominance.
        assert!(constrained_dominates(&[1.0, 1.0], 0.0, &[2.0, 2.0], 0.0));
        assert!(!constrained_dominates(&[1.0, 3.0], 0.0, &[3.0, 1.0], 0.0));
    }

    #[test]
    fn constrained_sort_layers_feasible_before_infeasible() {
        let pts = vec![
            vec![1.0, 4.0], // feasible, front 0
            vec![4.0, 1.0], // feasible, front 0
            vec![2.0, 5.0], // feasible, front 1
            vec![0.0, 0.0], // infeasible (best objectives!), violation 0.3
            vec![0.0, 0.0], // infeasible, violation 0.1
        ];
        let viol = vec![0.0, 0.0, 0.0, 0.3, 0.1];
        let fronts = constrained_non_dominated_sort(&pts, &viol);
        assert_eq!(fronts[0], vec![0, 1]);
        assert_eq!(fronts[1], vec![2]);
        // Infeasible points layer by violation behind every feasible front.
        assert_eq!(fronts[2], vec![4]);
        assert_eq!(fronts[3], vec![3]);
    }

    #[test]
    fn constrained_sort_with_zero_violations_matches_plain_sort() {
        let pts: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let zeros = vec![0.0; pts.len()];
        assert_eq!(
            constrained_non_dominated_sort(&pts, &zeros),
            fast_non_dominated_sort(&pts)
        );
    }

    #[test]
    fn front_of_constrained_trials_prefers_feasible() {
        let mut infeasible = t(vec![0], vec![0.0, 0.0]);
        infeasible.violations = vec![5.0];
        let trials = vec![
            infeasible.clone(),
            t(vec![1], vec![1.0, 2.0]),
            t(vec![2], vec![2.0, 1.0]),
        ];
        let front = non_dominated_trials(&trials);
        assert_eq!(front.len(), 2);
        assert!(front.iter().all(|x| x.is_feasible()));
        // All-infeasible history: least-violating trial forms the front.
        let mut worse = t(vec![3], vec![0.0, 0.0]);
        worse.violations = vec![7.0];
        let front = non_dominated_trials(&[infeasible.clone(), worse]);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].genome, vec![0]);
    }

    #[test]
    fn non_dominated_trials_dedups() {
        let trials = vec![
            t(vec![0], vec![1.0, 4.0]),
            t(vec![0], vec![1.0, 4.0]), // duplicate genome
            t(vec![1], vec![0.5, 5.0]),
            t(vec![2], vec![2.0, 5.0]), // dominated
        ];
        let front = non_dominated_trials(&trials);
        assert_eq!(front.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
        prop::collection::vec(
            prop::collection::vec(0.0f64..100.0, 2..=3).prop_map(|v| v),
            1..40,
        )
        .prop_filter("same dims", |pts| {
            let d = pts[0].len();
            pts.iter().all(|p| p.len() == d)
        })
    }

    proptest! {
        #[test]
        fn front_members_mutually_non_dominated(pts in points_strategy()) {
            let front = non_dominated_indices(&pts);
            for &i in &front {
                for &j in &front {
                    if i != j {
                        prop_assert!(!dominates(&pts[i], &pts[j]));
                    }
                }
            }
        }

        #[test]
        fn every_dominated_point_has_a_dominator_in_front(pts in points_strategy()) {
            let front = non_dominated_indices(&pts);
            for i in 0..pts.len() {
                if !front.contains(&i) {
                    prop_assert!(front.iter().any(|&j| dominates(&pts[j], &pts[i])));
                }
            }
        }

        #[test]
        fn fronts_partition_and_order(pts in points_strategy()) {
            let fronts = fast_non_dominated_sort(&pts);
            let total: usize = fronts.iter().map(|f| f.len()).sum();
            prop_assert_eq!(total, pts.len());
            // First front equals the non-dominated set.
            let mut f0 = fronts[0].clone();
            f0.sort_unstable();
            let mut nd = non_dominated_indices(&pts);
            nd.sort_unstable();
            prop_assert_eq!(f0, nd);
        }

        #[test]
        fn hypervolume_nonnegative(pts in points_strategy()) {
            let two_d: Vec<Vec<f64>> = pts.iter().map(|p| vec![p[0], p[1 % p.len()]]).collect();
            let hv = hypervolume_2d(&two_d, &[200.0, 200.0]);
            prop_assert!(hv >= 0.0);
            prop_assert!(hv <= 200.0 * 200.0);
        }
    }
}

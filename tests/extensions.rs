//! Integration tests for the extension features: alternative storage
//! technologies on the cosim bus, weather/CI file I/O feeding the models,
//! and the multi-fidelity pruned search.

use microgrid_opt::cosim::{Actor, MemoryMonitor, Microgrid, SelfConsumption, SignalActor};
use microgrid_opt::gridcarbon;
use microgrid_opt::prelude::*;
use microgrid_opt::sam::{GenerationModel, PvSystem, WindFarm};
use microgrid_opt::storage::{HydrogenStorage, PumpedHydro, PumpedHydroParams, Storage};
use microgrid_opt::units::Energy;
use microgrid_opt::weather;

fn scenario() -> PreparedScenario {
    ScenarioConfig {
        space: CompositionSpace::tiny(),
        ..ScenarioConfig::paper_houston()
    }
    .prepare()
}

fn run_microgrid_with_storage(
    s: &PreparedScenario,
    storage: Box<dyn Storage + Send>,
    days: i64,
) -> (f64, f64) {
    let actors: Vec<Box<dyn Actor>> = vec![
        Box::new(SignalActor::producer(
            "wind",
            s.data.wind_unit_kw.scaled(4.0),
        )),
        Box::new(SignalActor::consumer("dc", s.load.clone())),
    ];
    let mut mg = Microgrid::new(actors, storage, Box::new(SelfConsumption::default()));
    let mut mon = MemoryMonitor::new();
    mg.run(
        SimTime::START,
        SimDuration::from_days(days),
        s.data.step(),
        &mut [&mut mon],
    );
    let h = s.data.step().hours();
    let import: f64 = mon.records().iter().map(|r| r.grid_import().kw() * h).sum();
    let export: f64 = mon.records().iter().map(|r| r.grid_export().kw() * h).sum();
    (import, export)
}

#[test]
fn hydrogen_and_pumped_hydro_reduce_imports_on_the_bus() {
    let s = scenario();
    let (import_none, export_none) =
        run_microgrid_with_storage(&s, Box::new(microgrid_opt::storage::NullStorage::new()), 60);
    let (import_h2, export_h2) = run_microgrid_with_storage(
        &s,
        Box::new(HydrogenStorage::with_defaults(Energy::from_mwh(40.0))),
        60,
    );
    let (import_ph, export_ph) = run_microgrid_with_storage(
        &s,
        Box::new(PumpedHydro::new(PumpedHydroParams {
            initial_fill: 0.5,
            ..PumpedHydroParams::default()
        })),
        60,
    );
    // Any store must cut both imports and exports vs no storage.
    assert!(import_h2 < import_none, "{import_h2} vs {import_none}");
    assert!(export_h2 < export_none);
    assert!(import_ph < import_none);
    assert!(export_ph < export_none);
    // Pumped hydro (rt ~0.78) converts surplus to served load more
    // efficiently than hydrogen (rt ~0.36) at comparable power ratings.
    let served_ph = import_none - import_ph;
    let spent_ph = export_none - export_ph;
    let served_h2 = import_none - import_h2;
    let spent_h2 = export_none - export_h2;
    let eff_ph = served_ph / spent_ph;
    let eff_h2 = served_h2 / spent_h2;
    assert!(
        eff_ph > eff_h2,
        "pumped hydro effective rt {eff_ph:.2} should beat hydrogen {eff_h2:.2}"
    );
}

#[test]
fn exported_weather_file_reproduces_generation_profiles() {
    let s = scenario();
    // Export the site's weather, re-import it, and rebuild the unit
    // profiles: they must match the originals exactly.
    let mut buf = Vec::new();
    weather::io::write_csv(&s.data.weather, &mut buf).unwrap();
    let imported = weather::io::read_csv(buf.as_slice()).unwrap();

    let pv = PvSystem::with_capacity_kw(1_000.0, imported.location.latitude_deg);
    let rebuilt_pv = pv.simulate(&imported).scaled(1.0 / 1_000.0);
    assert_eq!(rebuilt_pv, s.data.pv_unit_kw);

    let wind = WindFarm::with_turbines(1);
    let rebuilt_wind = wind.simulate(&imported);
    assert_eq!(rebuilt_wind, s.data.wind_unit_kw);
}

#[test]
fn exported_ci_trace_round_trips_through_accounting() {
    let s = scenario();
    let mut buf = Vec::new();
    gridcarbon::io::write_csv(&s.data.ci_g_per_kwh, &mut buf).unwrap();
    let imported = gridcarbon::io::read_csv(buf.as_slice()).unwrap();
    assert_eq!(imported, s.data.ci_g_per_kwh);

    let flat_import = TimeSeries::constant_year(s.data.step(), 1_620.0);
    let a = gridcarbon::accounting::daily_operational_emissions_t(&flat_import, &imported);
    let b =
        gridcarbon::accounting::daily_operational_emissions_t(&flat_import, &s.data.ci_g_per_kwh);
    assert_eq!(a, b);
    assert!((a - 15.54).abs() < 0.05, "houston baseline via file {a}");
}

#[test]
fn partial_period_simulation_normalizes_rates() {
    let s = scenario();
    let comp = Composition::new(4, 8_000.0, 22_500.0);
    let full = simulate_year(&s.data, &s.load, &comp, &s.config.sim);
    let quarter = microgrid_opt::microgrid::simulate_period(
        &s.data,
        &s.load,
        &comp,
        &s.config.sim,
        s.data.len() / 4,
    );
    // Q1 is winter-heavy, so rates differ — but must be the same order of
    // magnitude and internally consistent.
    assert!(quarter.metrics.demand_mwh < 0.3 * full.metrics.demand_mwh);
    let ratio =
        quarter.metrics.operational_t_per_day / full.metrics.operational_t_per_day.max(1e-9);
    assert!(
        (0.2..5.0).contains(&ratio),
        "per-day rate should be period-normalized, ratio {ratio}"
    );
}

#[test]
fn multi_fidelity_problem_converges_to_full_fidelity() {
    let s = scenario();
    let problem = CompositionProblem::new(&s, ObjectiveSet::paper());
    use microgrid_opt::optimizer::MultiFidelityProblem;
    use microgrid_opt::optimizer::Problem;
    let genome = vec![1u16, 1, 1];
    let full = problem.evaluate(&genome);
    let at_one = problem.evaluate_at_fidelity(&genome, 1.0);
    assert_eq!(full, at_one, "fidelity 1.0 must equal the plain evaluation");
    // Lower fidelity: same embodied, different (noisy) operational.
    let low = problem.evaluate_at_fidelity(&genome, 0.25);
    assert_eq!(low[1], full[1], "embodied independent of fidelity");
    assert!(low[0].is_finite());
}

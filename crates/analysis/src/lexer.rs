//! A lightweight Rust tokenizer: line/comment/string-aware, no parser.
//!
//! The rules in [`crate::rules`] and [`crate::registry`] need exactly
//! four things a plain text scan cannot give them: which bytes are
//! *code* vs *comment* vs *string literal*, the cooked contents of
//! string literals (env-var names ride inside them), per-line comment
//! text (suppressions and `SAFETY:` markers live there), and which
//! lines belong to `#[cfg(test)]` regions. This module produces all
//! four from one pass; it deliberately stops short of a grammar — no
//! AST, no type information, no macro expansion.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A string literal's cooked content (escapes resolved best-effort;
    /// raw and byte strings keep their bytes as-is).
    Str(String),
    /// A character literal (content irrelevant to every rule).
    Char,
    /// A lifetime (`'a`).
    Lifetime,
    /// A numeric literal (value irrelevant to every rule).
    Num,
    /// A single punctuation byte (`::` arrives as two `:` tokens).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line of the token's first byte.
    pub line: u32,
}

/// One comment (line or block) with its cooked text.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equals `line` for `//`).
    pub end_line: u32,
    /// Comment text without the `//` / `/* */` delimiters.
    pub text: String,
    /// Doc comment (`///`, `//!`, `/**`, `/*!`). Suppression directives
    /// only count in plain comments, so docs can *show* the syntax.
    pub doc: bool,
}

/// The output of [`lex`]: code tokens plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (doc comments included).
    pub comments: Vec<Comment>,
}

/// Tokenize Rust source. Never panics: unterminated strings/comments
/// simply end the stream at EOF (the linter must survive any input).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while let Some(&b) = self.bytes.get(self.pos) {
            let line = self.line;
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    let s = self.cooked_string();
                    self.push(Tok::Str(s), line);
                }
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_string_ahead() => {
                    let s = self.raw_or_byte_string();
                    self.push(Tok::Str(s), line);
                }
                _ if b.is_ascii_alphabetic() || b == b'_' => {
                    let ident = self.ident();
                    self.push(Tok::Ident(ident), line);
                }
                _ if b.is_ascii_digit() => {
                    self.number();
                    self.push(Tok::Num, line);
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                _ => {
                    self.pos += 1;
                    // Multi-byte UTF-8 in code position: skip continuation
                    // bytes so `line`/token boundaries stay consistent.
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&c| c & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    if b.is_ascii() {
                        self.out.tokens.push(Token {
                            tok: Tok::Punct(b as char),
                            line,
                        });
                    }
                }
            }
        }
        self.out
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.tokens.push(Token { tok, line });
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        self.pos += 2;
        // `///` and `//!` doc markers are part of the delimiter.
        let doc = matches!(self.peek(0), Some(b'/') | Some(b'!'));
        while self.peek(0) == Some(b'/') || self.peek(0) == Some(b'!') {
            self.pos += 1;
        }
        let start = self.pos;
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            line: start_line,
            end_line: start_line,
            text: String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned(),
            doc,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        self.pos += 2;
        let doc = matches!(self.peek(0), Some(b'*') | Some(b'!'));
        let start = self.pos;
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek(0) {
                None => break,
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'/') if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                Some(b'*') if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                Some(_) => self.pos += 1,
            }
        }
        let end = self.pos.saturating_sub(2).max(start);
        self.out.comments.push(Comment {
            line: start_line,
            end_line: self.line,
            text: String::from_utf8_lossy(&self.bytes[start..end]).into_owned(),
            doc,
        });
    }

    /// A `"..."` string with escapes cooked (unknown escapes kept verbatim).
    fn cooked_string(&mut self) -> String {
        self.pos += 1;
        let mut out = String::new();
        while let Some(b) = self.peek(0) {
            match b {
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\\' => {
                    match self.peek(1) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'"') => out.push('"'),
                        Some(b'\'') => out.push('\''),
                        Some(b'0') => out.push('\0'),
                        Some(other) => {
                            // \u{...} and friends: keep bytes, rules only
                            // ever match ASCII-exact contents.
                            out.push('\\');
                            out.push(other as char);
                        }
                        None => {}
                    }
                    self.pos += 2;
                }
                b'\n' => {
                    self.line += 1;
                    out.push('\n');
                    self.pos += 1;
                }
                _ => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
        out
    }

    /// Is a raw/byte string starting at `pos` (`r"`, `r#"`, `b"`, `br#"`, …)?
    fn raw_or_byte_string_ahead(&self) -> bool {
        let mut i = 1; // past the leading r/b
        if (self.peek(0) == Some(b'b') && self.peek(1) == Some(b'r'))
            || (self.peek(0) == Some(b'r') && self.peek(1) == Some(b'b'))
        {
            i = 2;
        }
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    fn raw_or_byte_string(&mut self) -> String {
        // Skip the r/b/br prefix.
        while matches!(self.peek(0), Some(b'r') | Some(b'b')) {
            self.pos += 1;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        let start = self.pos;
        loop {
            match self.peek(0) {
                None => {
                    let text = &self.bytes[start..self.pos];
                    return String::from_utf8_lossy(text).into_owned();
                }
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    let mut matched = 0usize;
                    while matched < hashes && self.peek(1 + matched) == Some(b'#') {
                        matched += 1;
                    }
                    if matched == hashes {
                        let text = &self.bytes[start..self.pos];
                        self.pos += 1 + hashes;
                        return String::from_utf8_lossy(text).into_owned();
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Disambiguate `'a'` / `'\n'` (char literal) from `'a` (lifetime).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: skip to the closing quote.
                self.pos += 2; // past '\
                self.pos += 1; // past the escaped byte (covers \', \\, \n…)
                while self.peek(0).is_some_and(|b| b != b'\'' && b != b'\n') {
                    self.pos += 1;
                }
                self.pos += 1;
                self.push(Tok::Char, line);
            }
            Some(c) if c != b'\'' => {
                if self.peek(2) == Some(b'\'') && !ident_byte(c) {
                    // 'x' where x is not an ident char: must be a char.
                    self.pos += 3;
                    self.push(Tok::Char, line);
                } else if self.peek(2) == Some(b'\'')
                    && ident_byte(c)
                    && !ident_byte_opt(self.peek(3))
                {
                    // 'x' followed by a non-ident byte: char literal
                    // ('a',). A lifetime is never followed by a quote.
                    self.pos += 3;
                    self.push(Tok::Char, line);
                } else {
                    // Lifetime: consume ident chars.
                    self.pos += 1;
                    while self.peek(0).is_some_and(ident_byte) {
                        self.pos += 1;
                    }
                    self.push(Tok::Lifetime, line);
                }
            }
            _ => {
                // Lone quote or `''` — treat as punct and move on.
                self.pos += 1;
                self.push(Tok::Punct('\''), line);
            }
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while self.peek(0).is_some_and(ident_byte) {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn number(&mut self) {
        // Digits, letters (hex/suffixes), underscores; a dot only when a
        // digit follows, so `0..9` stays three tokens.
        while let Some(b) = self.peek(0) {
            let continues = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !continues {
                break;
            }
            self.pos += 1;
        }
    }
}

fn ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn ident_byte_opt(b: Option<u8>) -> bool {
    b.is_some_and(ident_byte)
}

/// 1-based line ranges (inclusive) covered by `#[cfg(test)]` items and
/// `#[test]` functions: the code in them may unwrap, index, and hash
/// freely — the invariants guard production paths.
pub fn test_regions(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(attr_end) = test_attr_end(toks, i) {
            // The guarded item runs to its closing brace (or to `;` for
            // brace-less items like `#[cfg(test)] use …;`).
            let start_line = toks[i].line;
            let mut j = attr_end;
            let mut end_line = start_line;
            let mut depth = 0usize;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end_line = toks[j].line;
                            break;
                        }
                    }
                    Tok::Punct(';') if depth == 0 => {
                        end_line = toks[j].line;
                        break;
                    }
                    _ => {}
                }
                end_line = toks[j].line;
                j += 1;
            }
            regions.push((start_line, end_line));
            i = j.max(attr_end);
        }
        i += 1;
    }
    regions
}

/// If tokens at `i` start a `#[cfg(test)]` or `#[test]` attribute,
/// return the index just past its closing `]`.
fn test_attr_end(toks: &[Token], i: usize) -> Option<usize> {
    if !matches!(toks.get(i)?.tok, Tok::Punct('#')) {
        return None;
    }
    if !matches!(toks.get(i + 1)?.tok, Tok::Punct('[')) {
        return None;
    }
    match &toks.get(i + 2)?.tok {
        Tok::Ident(name) if name == "test" => {
            matches!(toks.get(i + 3)?.tok, Tok::Punct(']')).then_some(i + 4)
        }
        Tok::Ident(name) if name == "cfg" => {
            // #[cfg(test)] exactly: cfg ( test ) ]
            let is = matches!(toks.get(i + 3)?.tok, Tok::Punct('('))
                && matches!(&toks.get(i + 4)?.tok, Tok::Ident(n) if n == "test")
                && matches!(toks.get(i + 5)?.tok, Tok::Punct(')'))
                && matches!(toks.get(i + 6)?.tok, Tok::Punct(']'));
            is.then_some(i + 7)
        }
        _ => None,
    }
}

/// Is `line` inside any of `regions` (inclusive bounds)?
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| (a..=b).contains(&line))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_leave_the_code_stream() {
        let src = r##"
// a comment with unwrap() inside
fn f() {
    let s = "panic! in a string";
    let r = r#"unwrap() in a raw string"#;
    /* block with HashMap */
    s.len() + r.len()
}
"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap" || i == "HashMap"));
        assert!(ids.iter().any(|i| i == "len"));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap()"));
    }

    #[test]
    fn string_contents_are_captured() {
        let lexed = lex(r#"let v = std::env::var("MGOPT_FAST");"#);
        let strings: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strings, ["MGOPT_FAST"]);
    }

    #[test]
    fn lifetimes_do_not_eat_the_rest_of_the_line() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.iter().any(|i| i == "str"));
        let ids = idents("let c = 'x'; let esc = '\\n'; let q = '\\''; foo(c)");
        assert!(ids.iter().any(|i| i == "foo"));
    }

    #[test]
    fn nested_block_comments_and_ranges() {
        let ids = idents("/* outer /* inner */ still comment */ fn g() { for i in 0..9 { } }");
        assert_eq!(ids, ["fn", "g", "for", "i", "in"]);
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap() }\n}\nfn tail() {}\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed);
        assert_eq!(regions.len(), 1);
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 1));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn lexer_survives_unterminated_input() {
        for src in ["\"unterminated", "/* open", "r#\"open", "'", "b\"x"] {
            let _ = lex(src);
        }
    }
}

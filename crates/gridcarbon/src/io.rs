//! Carbon-intensity trace I/O (Electricity-Maps-style CSV).
//!
//! Electricity Maps distributes hourly region CSVs with a timestamp column
//! and a `carbon_intensity_gco2eq_per_kwh`-style value column. This module
//! reads/writes the equivalent so users can swap the synthetic traces for
//! purchased data, exactly like the paper does.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use mgopt_units::{SimDuration, TimeSeries};

/// Errors when reading a carbon-intensity file.
#[derive(Debug)]
pub enum CiFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file.
    Format(String),
}

impl fmt::Display for CiFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CiFileError::Io(e) => write!(f, "carbon-intensity file I/O error: {e}"),
            CiFileError::Format(m) => write!(f, "carbon-intensity file format error: {m}"),
        }
    }
}

impl std::error::Error for CiFileError {}

impl From<std::io::Error> for CiFileError {
    fn from(e: std::io::Error) -> Self {
        CiFileError::Io(e)
    }
}

/// Write a CI series as `hour,ci_g_per_kwh` CSV.
pub fn write_csv(ci: &TimeSeries, mut w: impl Write) -> Result<(), CiFileError> {
    writeln!(w, "# step_s={}", ci.step().secs())?;
    writeln!(w, "index,carbon_intensity_g_per_kwh")?;
    for (i, &v) in ci.values().iter().enumerate() {
        writeln!(w, "{i},{v}")?;
    }
    Ok(())
}

/// Read a CI series from CSV. Rows must be in index order; the `step_s`
/// metadata defaults to hourly.
pub fn read_csv(r: impl Read) -> Result<TimeSeries, CiFileError> {
    let reader = BufReader::new(r);
    let mut step_s: i64 = 3_600;
    let mut values = Vec::new();
    let mut saw_header = false;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some((k, v)) = rest.trim().split_once('=') {
                if k.trim() == "step_s" {
                    step_s = v
                        .trim()
                        .parse()
                        .map_err(|e| CiFileError::Format(format!("metadata step_s: {e}")))?;
                }
            }
            continue;
        }
        if !saw_header {
            if !line.starts_with("index") {
                return Err(CiFileError::Format(format!(
                    "line {}: expected header, got {line:?}",
                    lineno + 1
                )));
            }
            saw_header = true;
            continue;
        }
        let (idx, val) = line.split_once(',').ok_or_else(|| {
            CiFileError::Format(format!("line {}: expected two fields", lineno + 1))
        })?;
        let idx: usize = idx
            .trim()
            .parse()
            .map_err(|e| CiFileError::Format(format!("line {}: bad index: {e}", lineno + 1)))?;
        if idx != values.len() {
            return Err(CiFileError::Format(format!(
                "line {}: index {idx} out of order (expected {})",
                lineno + 1,
                values.len()
            )));
        }
        let v: f64 = val
            .trim()
            .parse()
            .map_err(|e| CiFileError::Format(format!("line {}: bad value: {e}", lineno + 1)))?;
        if v < 0.0 {
            return Err(CiFileError::Format(format!(
                "line {}: negative carbon intensity {v}",
                lineno + 1
            )));
        }
        values.push(v);
    }
    if values.is_empty() {
        return Err(CiFileError::Format("no data rows".into()));
    }
    if step_s <= 0 {
        return Err(CiFileError::Format("step_s must be positive".into()));
    }
    Ok(TimeSeries::new(SimDuration::from_secs(step_s), values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::{CarbonIntensityModel, GridRegion};

    #[test]
    fn round_trip_exact() {
        let ci = CarbonIntensityModel::for_region(GridRegion::Ercot)
            .generate(SimDuration::from_hours(1.0), 42);
        let mut buf = Vec::new();
        write_csv(&ci, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, ci);
    }

    #[test]
    fn hand_written_file() {
        let text = "index,carbon_intensity_g_per_kwh\n0,400.5\n1,380.0\n2,390.25\n";
        let ci = read_csv(text.as_bytes()).unwrap();
        assert_eq!(ci.len(), 3);
        assert_eq!(ci.values()[0], 400.5);
        assert_eq!(ci.step().secs(), 3_600);
    }

    #[test]
    fn out_of_order_rejected() {
        let text = "index,carbon_intensity_g_per_kwh\n0,400\n2,380\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of order"));
    }

    #[test]
    fn negative_ci_rejected() {
        let text = "index,carbon_intensity_g_per_kwh\n0,-5\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("negative"));
    }

    #[test]
    fn custom_step_honored() {
        let text = "# step_s=900\nindex,carbon_intensity_g_per_kwh\n0,100\n1,110\n";
        let ci = read_csv(text.as_bytes()).unwrap();
        assert_eq!(ci.step().secs(), 900);
    }

    #[test]
    fn garbage_rejected() {
        assert!(read_csv("not a csv".as_bytes()).is_err());
        assert!(read_csv("".as_bytes()).is_err());
    }
}
